"""Differential tests: vectorised agglomerative path vs the reference.

The production :func:`repro.heuristics.upgma.agglomerative_tree` is a
vectorised rewrite of :func:`agglomerative_tree_reference` (the original
pure-Python loop, kept as the oracle).  On matrices in *generic position*
(continuous distances, no tied pairs) both must merge the same clusters
in the same order and therefore produce trees of identical cost for
every linkage.  On matrices with ties the two may legally break ties
differently, so those cases assert the structural invariants instead.
"""

import numpy as np
import pytest

from repro.heuristics.upgma import (
    _average_linkage,
    _maximum_linkage,
    _minimum_linkage,
    agglomerative_tree,
    agglomerative_tree_reference,
    single_linkage,
    upgma,
    upgmm,
)
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree

LINKAGES = {
    "upgma": _average_linkage,
    "upgmm": _maximum_linkage,
    "single": _minimum_linkage,
}


def _generic_matrix(n, seed):
    """A random metric matrix with continuous (tie-free) distances."""
    return random_metric_matrix(n, seed=seed, integer=False)


class TestDifferentialCost:
    @pytest.mark.parametrize("linkage", sorted(LINKAGES))
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_cost(self, linkage, seed):
        m = _generic_matrix(6 + (seed % 9), seed)
        fast = agglomerative_tree(m, LINKAGES[linkage])
        ref = agglomerative_tree_reference(m, LINKAGES[linkage])
        assert fast.cost() == pytest.approx(ref.cost(), abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_topology(self, seed):
        """Tie-free inputs: identical induced distances, not just cost."""
        m = _generic_matrix(10, seed)
        fast = upgmm(m).distance_matrix(m.labels)
        ref = agglomerative_tree_reference(
            m, _maximum_linkage
        ).distance_matrix(m.labels)
        assert np.allclose(fast.values, ref.values, atol=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_custom_scalar_linkage_fallback(self, seed):
        """Unknown linkages take the element-wise path; still differential."""
        m = _generic_matrix(9, seed)
        mid = lambda a, b, sa, sb: 0.5 * (a + b)  # noqa: E731
        fast = agglomerative_tree(m, mid)
        ref = agglomerative_tree_reference(m, mid)
        assert fast.cost() == pytest.approx(ref.cost(), abs=1e-9)

    def test_ultrametric_input_recovered_by_both(self):
        m = random_ultrametric_matrix(12, seed=3)
        for build in (agglomerative_tree, agglomerative_tree_reference):
            induced = build(m, _maximum_linkage).distance_matrix(m.labels)
            assert np.allclose(induced.values, m.values, atol=1e-9)


class TestInvariantsUnderTies:
    """Integer matrices tie frequently; both paths stay feasible/valid."""

    @pytest.mark.parametrize("seed", range(5))
    def test_both_dominate_on_integer_matrices(self, seed):
        m = random_metric_matrix(12, seed=seed)
        for build in (agglomerative_tree, agglomerative_tree_reference):
            tree = build(m, _maximum_linkage)
            assert is_valid_ultrametric_tree(tree)
            assert dominates_matrix(tree, m)

    @pytest.mark.parametrize("seed", range(5))
    def test_cost_ladder_preserved(self, seed):
        m = _generic_matrix(11, seed)
        assert single_linkage(m).cost() <= upgma(m).cost() + 1e-9
        assert upgma(m).cost() <= upgmm(m).cost() + 1e-9


class TestEdgeCases:
    def test_two_species(self):
        m = DistanceMatrix([[0, 6], [6, 0]], labels=["x", "y"])
        assert agglomerative_tree(m, _maximum_linkage).cost() == 6.0
        assert agglomerative_tree_reference(m, _maximum_linkage).cost() == 6.0

    def test_reference_rejects_empty(self):
        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        with pytest.raises(ValueError):
            agglomerative_tree_reference(m, _maximum_linkage)
        with pytest.raises(ValueError):
            agglomerative_tree(m, _maximum_linkage)

    def test_all_labels_present_fast_path(self):
        m = _generic_matrix(20, 1)
        tree = upgmm(m)
        assert sorted(tree.leaf_labels) == sorted(m.labels)
