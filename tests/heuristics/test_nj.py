"""Tests for the Neighbor-Joining baseline."""

import pytest

from repro.heuristics.nj import neighbor_joining
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix


def additive_matrix():
    """The distance matrix of a known additive tree.

    Tree: a and b hang off node u (lengths 2, 3); c and d hang off node
    v (lengths 4, 5); u-v edge length 6.
    """
    return DistanceMatrix(
        [
            [0, 5, 12, 13],
            [5, 0, 13, 14],
            [12, 13, 0, 9],
            [13, 14, 9, 0],
        ],
        labels=["a", "b", "c", "d"],
    )


class TestNeighborJoining:
    def test_recovers_additive_distances(self):
        m = additive_matrix()
        tree = neighbor_joining(m)
        for a in m.labels:
            for b in m.labels:
                if a != b:
                    assert tree.distance(a, b) == pytest.approx(m[a, b])

    def test_total_cost_of_known_tree(self):
        tree = neighbor_joining(additive_matrix())
        assert tree.cost() == pytest.approx(2 + 3 + 4 + 5 + 6)

    def test_leaves(self):
        tree = neighbor_joining(additive_matrix())
        assert tree.leaves == ["a", "b", "c", "d"]

    def test_three_species(self):
        m = DistanceMatrix(
            [[0, 4, 6], [4, 0, 8], [6, 8, 0]], labels=["a", "b", "c"]
        )
        tree = neighbor_joining(m)
        assert tree.distance("a", "b") == pytest.approx(4.0)
        assert tree.distance("a", "c") == pytest.approx(6.0)
        assert tree.distance("b", "c") == pytest.approx(8.0)

    def test_two_species(self):
        m = DistanceMatrix([[0, 7], [7, 0]], labels=["a", "b"])
        tree = neighbor_joining(m)
        assert tree.distance("a", "b") == pytest.approx(7.0)

    def test_single_species(self):
        m = DistanceMatrix([[0.0]], labels=["a"])
        tree = neighbor_joining(m)
        assert tree.nodes == ["a"]

    def test_newick_parses(self):
        tree = neighbor_joining(additive_matrix())
        s = tree.newick()
        assert s.endswith(";")
        for name in ("a", "b", "c", "d"):
            assert name in s

    @pytest.mark.parametrize("seed", range(4))
    def test_random_matrix_smoke(self, seed):
        m = random_metric_matrix(10, seed=seed)
        tree = neighbor_joining(m)
        assert len(tree.leaves) == 10
        assert tree.cost() > 0

    def test_nj_cost_below_upgmm_cost(self):
        """NJ's additive tree is cheaper than the ultrametric UPGMM tree
        on additive data (it does not pay the clock constraint)."""
        from repro.heuristics.upgma import upgmm

        m = additive_matrix()
        assert neighbor_joining(m).cost() <= upgmm(m).cost()
