"""Tests for UPGMA / UPGMM agglomerative construction."""

import pytest

from repro.heuristics.upgma import agglomerative_tree, single_linkage, upgma, upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


class TestUpgmm:
    def test_valid_tree(self, square5):
        assert is_valid_ultrametric_tree(upgmm(square5))

    def test_dominates_matrix(self, square5):
        """The core UPGMM guarantee: a feasible MUT upper bound."""
        assert dominates_matrix(upgmm(square5), square5)

    @pytest.mark.parametrize("seed", range(6))
    def test_dominates_random_matrices(self, seed):
        m = random_metric_matrix(10, seed=seed)
        assert dominates_matrix(upgmm(m), m)

    def test_exact_on_ultrametric_input(self):
        """On an ultrametric matrix UPGMM recovers the matrix exactly."""
        m = random_ultrametric_matrix(9, seed=4)
        tree = upgmm(m)
        induced = tree.distance_matrix(m.labels)
        for i, j, d in m.pairs():
            assert induced.values[i, j] == pytest.approx(d)

    def test_merges_closest_clusters_first(self, square5):
        tree = upgmm(square5)
        assert tree.distance("a", "b") == pytest.approx(2.0)

    def test_two_species(self):
        m = DistanceMatrix([[0, 6], [6, 0]], labels=["x", "y"])
        tree = upgmm(m)
        assert tree.height() == 3.0
        assert tree.cost() == 6.0

    def test_single_species(self):
        m = DistanceMatrix([[0.0]], labels=["x"])
        assert upgmm(m).n_leaves == 1

    def test_zero_species_rejected(self):
        import numpy as np

        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        with pytest.raises(ValueError):
            upgmm(m)


class TestUpgma:
    def test_valid_tree(self, square5):
        assert is_valid_ultrametric_tree(upgma(square5))

    def test_average_below_maximum(self, square5):
        """UPGMA heights never exceed UPGMM heights."""
        assert upgma(square5).cost() <= upgmm(square5).cost() + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_cost_ordering_random(self, seed):
        m = random_metric_matrix(9, seed=seed)
        assert single_linkage(m).cost() <= upgma(m).cost() + 1e-9
        assert upgma(m).cost() <= upgmm(m).cost() + 1e-9

    def test_upgma_can_underestimate(self):
        """UPGMA trees are not feasible MUT candidates in general."""
        found_violation = False
        for seed in range(12):
            m = random_metric_matrix(8, seed=seed)
            if not dominates_matrix(upgma(m), m):
                found_violation = True
                break
        assert found_violation


class TestSingleLinkage:
    def test_valid_tree(self, square5):
        assert is_valid_ultrametric_tree(single_linkage(square5))

    def test_subdominant_property(self, square5):
        """Single-linkage distances never exceed the matrix distances."""
        tree = single_linkage(square5)
        induced = tree.distance_matrix(square5.labels)
        assert (induced.values <= square5.values + 1e-9).all()


class TestAgglomerative:
    def test_custom_linkage(self, square5):
        tree = agglomerative_tree(square5, lambda a, b, sa, sb: max(a, b))
        assert tree.cost() == pytest.approx(upgmm(square5).cost())

    def test_leaf_count(self, square5):
        assert upgmm(square5).n_leaves == 5

    def test_all_labels_present(self, square5):
        assert set(upgmm(square5).leaf_labels) == set(square5.labels)
