"""Tests for the greedy sequential-addition heuristic."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.heuristics.greedy import greedy_insertion
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


class TestGreedyInsertion:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_and_feasible(self, seed):
        m = random_metric_matrix(10, seed=seed)
        tree = greedy_insertion(m)
        assert is_valid_ultrametric_tree(tree)
        assert dominates_matrix(tree, m)

    @pytest.mark.parametrize("seed", range(5))
    def test_never_below_optimum(self, seed):
        m = random_metric_matrix(8, seed=seed)
        assert greedy_insertion(m).cost() >= exact_mut(m).cost - 1e-9

    def test_often_beats_upgmm(self):
        """Greedy usually improves on the UPGMM bound on random data."""
        wins = 0
        for seed in range(10):
            m = random_metric_matrix(10, seed=seed)
            if greedy_insertion(m).cost() <= upgmm(m).cost() + 1e-9:
                wins += 1
        assert wins >= 7

    def test_exact_on_ultrametric_input(self):
        m = random_ultrametric_matrix(9, seed=3)
        assert greedy_insertion(m).cost() == pytest.approx(exact_mut(m).cost)

    def test_can_be_suboptimal(self):
        """Greedy is a heuristic: some instance must beat it strictly."""
        beaten = False
        for seed in range(15):
            m = random_metric_matrix(9, seed=seed)
            if greedy_insertion(m).cost() > exact_mut(m).cost + 1e-9:
                beaten = True
                break
        assert beaten

    def test_small_inputs(self):
        one = DistanceMatrix([[0.0]], labels=["x"])
        assert greedy_insertion(one).leaf_labels == ["x"]
        two = DistanceMatrix([[0, 6], [6, 0]], labels=["x", "y"])
        assert greedy_insertion(two).cost() == pytest.approx(6.0)

    def test_zero_species_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            greedy_insertion(DistanceMatrix(np.zeros((0, 0)), labels=[]))

    def test_labels_preserved(self, square5):
        tree = greedy_insertion(square5)
        assert set(tree.leaf_labels) == set(square5.labels)

    def test_maxmin_flag(self):
        m = random_metric_matrix(8, seed=7)
        with_mm = greedy_insertion(m, use_maxmin=True)
        without = greedy_insertion(m, use_maxmin=False)
        for tree in (with_mm, without):
            assert dominates_matrix(tree, m)

    def test_api_method(self):
        from repro.core.api import construct_tree

        m = random_metric_matrix(8, seed=8)
        result = construct_tree(m, "greedy")
        assert result.cost == pytest.approx(greedy_insertion(m).cost())
