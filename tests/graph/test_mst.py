"""Tests for MST construction."""

import numpy as np
import pytest

from repro.graph.mst import kruskal_mst, mst_is_unique, mst_weight, prim_mst
from repro.graph.union_find import UnionFind
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix


def _is_spanning_tree(edges, n):
    if len(edges) != n - 1:
        return False
    uf = UnionFind(n)
    for i, j, _ in edges:
        if not uf.union(i, j):
            return False
    return uf.count == 1


class TestKruskal:
    def test_spanning_tree(self, square5):
        edges = kruskal_mst(square5)
        assert _is_spanning_tree(edges, square5.n)

    def test_edges_in_nondecreasing_order(self, square5):
        weights = [w for _, _, w in kruskal_mst(square5)]
        assert weights == sorted(weights)

    def test_known_mst(self, square5):
        edges = {(i, j) for i, j, _ in kruskal_mst(square5)}
        # a-b (2), c-d (3), then the two 4-weight links around e, then
        # one 10-weight bridge.
        assert (0, 1) in edges
        assert (2, 3) in edges

    def test_matches_prim_weight(self):
        for seed in range(6):
            m = random_metric_matrix(9, seed=seed, integer=False)
            assert mst_weight(kruskal_mst(m)) == pytest.approx(
                mst_weight(prim_mst(m))
            )

    def test_two_vertices(self):
        m = DistanceMatrix([[0, 7], [7, 0]])
        assert kruskal_mst(m) == [(0, 1, 7.0)]

    def test_single_vertex(self):
        m = DistanceMatrix([[0.0]])
        assert kruskal_mst(m) == []


class TestPrim:
    def test_spanning_tree(self, square5):
        assert _is_spanning_tree(prim_mst(square5), square5.n)

    def test_start_vertex_irrelevant_for_weight(self, square5):
        weights = {
            round(mst_weight(prim_mst(square5, start=s)), 9)
            for s in range(square5.n)
        }
        assert len(weights) == 1

    def test_empty(self):
        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        assert prim_mst(m) == []


class TestUniqueness:
    def test_distinct_weights_unique(self, paper_example):
        assert mst_is_unique(paper_example)

    def test_ties_detected(self):
        # Figure 7 situation: a 3-cycle of equal weights has two MSTs.
        m = DistanceMatrix([[0, 1, 1], [1, 0, 1], [1, 1, 0]])
        assert not mst_is_unique(m)

    def test_square_with_tie(self):
        m = DistanceMatrix(
            [
                [0, 1, 2, 2],
                [1, 0, 2, 2],
                [2, 2, 0, 1],
                [2, 2, 1, 0],
            ]
        )
        assert not mst_is_unique(m)
