"""The paper's Figures 1-7 worked example, end to end.

The matrix in ``conftest.PAPER_EXAMPLE_VALUES`` reconstructs the
six-vertex graph of Figure 3 (exact weights are not recoverable from the
scan; these reproduce every structural fact the paper states).
"""

import pytest

from repro.core.reduction import reduce_matrix
from repro.graph.compact_sets import find_compact_sets
from repro.graph.hierarchy import CompactSetHierarchy
from repro.graph.mst import kruskal_mst, mst_is_unique


def _named(matrix, sets):
    return [tuple(sorted(matrix.labels[i] for i in s)) for s in sets]


class TestFigure4Mst:
    def test_mst_edge_order(self, paper_example):
        """Kruskal accepts (1,3), (4,6), (1,2), (3,5), (5,6) in order."""
        edges = [
            (paper_example.labels[i], paper_example.labels[j])
            for i, j, _ in kruskal_mst(paper_example)
        ]
        assert edges == [
            ("1", "3"), ("4", "6"), ("1", "2"), ("3", "5"), ("5", "6")
        ]

    def test_mst_unique(self, paper_example):
        """With distinct weights the Figure 7 ambiguity cannot arise."""
        assert mst_is_unique(paper_example)


class TestFigure5CompactSets:
    def test_all_compact_sets(self, paper_example):
        """The paper lists (1,3), (4,6), (1,2,3) and (1,2,3,5)."""
        named = set(_named(paper_example, find_compact_sets(paper_example)))
        assert named == {
            ("1", "3"),
            ("4", "6"),
            ("1", "2", "3"),
            ("1", "2", "3", "5"),
        }

    def test_merge_order_matches_narrative(self, paper_example):
        """(1,3) and (4,6) found first, then (1,2,3), then (1,2,3,5)."""
        named = _named(paper_example, find_compact_sets(paper_example))
        assert named[0] == ("1", "3")
        assert named[1] == ("4", "6")
        assert named[2] == ("1", "2", "3")
        assert named[3] == ("1", "2", "3", "5")


class TestHierarchy:
    def test_hierarchy_structure(self, paper_example):
        h = CompactSetHierarchy.from_matrix(paper_example)
        # Root = all six species; children: {1,2,3,5} and {4,6}.
        top = sorted(
            tuple(sorted(c.members)) for c in h.root.children
        )
        assert top == [(0, 1, 2, 4), (3, 5)]

    def test_max_subproblem_size(self, paper_example):
        h = CompactSetHierarchy.from_matrix(paper_example)
        # No reduced matrix exceeds 3 elements for this example.
        assert h.max_subproblem_size() <= 3


class TestFigure6MaximumMatrix:
    def test_maximum_matrix_of_c4(self, paper_example):
        """The maximum matrix of C4 = {C3, 5} with C3 = {1, 2, 3}.

        Its single entry is the largest distance between species 5 and
        any member of C3 (the paper's Figure 6 reads 6 for its weights;
        for the reconstructed weights it is max(4.5, 4.6, 4.0) = 4.6).
        """
        c3 = [0, 1, 2]  # species 1, 2, 3
        reduced = reduce_matrix(
            paper_example, [c3, [4]], ["C3", "5"], mode="maximum"
        )
        assert reduced["C3", "5"] == pytest.approx(4.6)

    def test_minimum_and_average_variants(self, paper_example):
        c3 = [0, 1, 2]
        low = reduce_matrix(paper_example, [c3, [4]], ["C3", "5"], mode="minimum")
        avg = reduce_matrix(paper_example, [c3, [4]], ["C3", "5"], mode="average")
        assert low["C3", "5"] == pytest.approx(4.0)
        assert avg["C3", "5"] == pytest.approx((4.5 + 4.6 + 4.0) / 3)
