"""Tests for compact-set discovery (Lemmas 1-4 of the paper)."""

import pytest

from repro.graph.compact_sets import (
    compact_sets_brute_force,
    find_compact_sets,
    is_compact,
    laminar_violations,
    max_internal_distance,
    min_outgoing_distance,
)
from repro.graph.mst import kruskal_mst
from repro.graph.union_find import UnionFind
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    clustered_matrix,
    hierarchical_matrix,
    random_metric_matrix,
)


class TestLemma2Primitives:
    def test_max_internal(self, square5):
        assert max_internal_distance(square5, [0, 1]) == 2.0
        assert max_internal_distance(square5, [2, 3, 4]) == 4.0

    def test_max_internal_singleton(self, square5):
        assert max_internal_distance(square5, [3]) == 0.0

    def test_min_outgoing(self, square5):
        assert min_outgoing_distance(square5, [0, 1]) == 10.0

    def test_min_outgoing_universe_is_inf(self, square5):
        assert min_outgoing_distance(square5, list(range(5))) == float("inf")

    def test_is_compact_true(self, square5):
        assert is_compact(square5, [0, 1])
        assert is_compact(square5, [2, 3, 4])

    def test_is_compact_false(self, square5):
        assert not is_compact(square5, [0, 2])
        assert not is_compact(square5, [1, 2, 3])

    def test_singleton_is_compact(self, square5):
        assert is_compact(square5, [3])

    def test_universe_is_compact(self, square5):
        assert is_compact(square5, range(5))

    def test_empty_subset_not_compact(self, square5):
        assert not is_compact(square5, [])

    def test_out_of_range_rejected(self, square5):
        with pytest.raises(ValueError):
            is_compact(square5, [0, 99])


class TestScanVsBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_matrices(self, seed):
        m = random_metric_matrix(8, seed=seed)
        assert set(find_compact_sets(m)) == set(compact_sets_brute_force(m))

    @pytest.mark.parametrize("seed", range(4))
    def test_clustered_matrices(self, seed):
        m = clustered_matrix([3, 2, 3], seed=seed)
        assert set(find_compact_sets(m)) == set(compact_sets_brute_force(m))

    @pytest.mark.parametrize("seed", range(4))
    def test_hierarchical_matrices(self, seed):
        m = hierarchical_matrix([[2, 2], [3]], seed=seed)
        assert set(find_compact_sets(m)) == set(compact_sets_brute_force(m))

    def test_include_flags(self, square5):
        plain = find_compact_sets(square5)
        with_singletons = find_compact_sets(square5, include_singletons=True)
        with_universe = find_compact_sets(square5, include_universe=True)
        assert len(with_singletons) == len(plain) + 5
        assert frozenset(range(5)) in with_universe
        assert frozenset(range(5)) not in plain


class TestLemma3Laminarity:
    @pytest.mark.parametrize("seed", range(6))
    def test_compact_sets_never_cross(self, seed):
        m = random_metric_matrix(10, seed=seed)
        sets = find_compact_sets(
            m, include_singletons=True, include_universe=True
        )
        assert laminar_violations(sets) == []

    def test_violation_detector_works(self):
        a = frozenset({0, 1})
        b = frozenset({1, 2})
        assert laminar_violations([a, b]) == [(a, b)]


class TestLemma4MstSubtree:
    @pytest.mark.parametrize("seed", range(5))
    def test_compact_set_induces_mst_subtree(self, seed):
        """Every compact set is connected within the MST (Lemma 4)."""
        m = random_metric_matrix(10, seed=seed, integer=False)
        tree = kruskal_mst(m)
        for cs in find_compact_sets(m):
            uf = UnionFind(m.n)
            for i, j, _ in tree:
                if i in cs and j in cs:
                    uf.union(i, j)
            roots = {uf.find(v) for v in cs}
            assert len(roots) == 1, f"compact set {sorted(cs)} disconnected"


class TestStructuredInputs:
    def test_two_cluster_matrix(self, square5):
        sets = {frozenset(s) for s in find_compact_sets(square5)}
        assert frozenset({0, 1}) in sets
        assert frozenset({2, 3, 4}) in sets

    def test_ultrametric_matrix_has_rich_structure(self):
        from repro.matrix.generators import random_ultrametric_matrix

        m = random_ultrametric_matrix(10, seed=3)
        # Every merge of the generating process with distinct heights is
        # compact, so there should be plenty of compact sets.
        assert len(find_compact_sets(m)) >= 3

    def test_uniform_matrix_has_none(self):
        # All distances equal: no strict inequality can hold.
        m = DistanceMatrix(
            [[0, 5, 5, 5], [5, 0, 5, 5], [5, 5, 0, 5], [5, 5, 5, 0]]
        )
        assert find_compact_sets(m) == []

    def test_discovery_order_nondecreasing_diameter(self, paper_example):
        sets = find_compact_sets(paper_example)
        diameters = [max_internal_distance(paper_example, sorted(s)) for s in sets]
        assert diameters == sorted(diameters)
