"""Tests for the O(n^2) compact-set algorithm."""

import pytest

from repro.graph.compact_linear import find_compact_sets_fast
from repro.graph.compact_sets import compact_sets_brute_force, find_compact_sets
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    clustered_matrix,
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)


class TestEquivalenceWithScan:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_matrices(self, seed):
        m = random_metric_matrix(10, seed=seed)
        assert find_compact_sets_fast(m) == find_compact_sets(m)

    @pytest.mark.parametrize("seed", range(5))
    def test_clustered_matrices(self, seed):
        m = clustered_matrix([3, 4, 3], seed=seed)
        assert find_compact_sets_fast(m) == find_compact_sets(m)

    @pytest.mark.parametrize("seed", range(5))
    def test_hierarchical_matrices(self, seed):
        m = hierarchical_matrix([[3, 2], [4]], seed=seed)
        assert find_compact_sets_fast(m) == find_compact_sets(m)

    @pytest.mark.parametrize("seed", range(5))
    def test_ultrametric_matrices(self, seed):
        m = random_ultrametric_matrix(9, seed=seed)
        assert find_compact_sets_fast(m) == find_compact_sets(m)

    @pytest.mark.parametrize("seed", range(6))
    def test_vs_brute_force(self, seed):
        m = random_metric_matrix(8, seed=100 + seed)
        assert set(find_compact_sets_fast(m)) == set(
            compact_sets_brute_force(m)
        )

    def test_tied_weights(self):
        """The cut-property argument must survive equal edge weights."""
        m = DistanceMatrix(
            [
                [0, 1, 1, 5, 5],
                [1, 0, 1, 5, 5],
                [1, 1, 0, 5, 5],
                [5, 5, 5, 0, 1],
                [5, 5, 5, 1, 0],
            ]
        )
        assert set(find_compact_sets_fast(m)) == set(find_compact_sets(m))

    def test_discovery_order_matches(self, paper_example):
        assert find_compact_sets_fast(paper_example) == find_compact_sets(
            paper_example
        )


class TestFlags:
    def test_include_singletons(self, square5):
        fast = find_compact_sets_fast(square5, include_singletons=True)
        scan = find_compact_sets(square5, include_singletons=True)
        assert fast == scan

    def test_include_universe(self, square5):
        fast = find_compact_sets_fast(square5, include_universe=True)
        assert frozenset(range(5)) in fast

    def test_two_species(self):
        m = DistanceMatrix([[0, 3], [3, 0]])
        assert find_compact_sets_fast(m) == []
        assert find_compact_sets_fast(m, include_universe=True) == [
            frozenset({0, 1})
        ]

    def test_single_species(self):
        m = DistanceMatrix([[0.0]])
        assert find_compact_sets_fast(m) == []
        assert find_compact_sets_fast(m, include_singletons=True) == [
            frozenset({0})
        ]


class TestScaling:
    def test_larger_instance_agrees(self):
        m = hierarchical_matrix([[6, 6], [6, 6]], seed=3, jitter=0.25)
        assert find_compact_sets_fast(m) == find_compact_sets(m)

    def test_faster_on_big_inputs(self):
        """The point of the O(n^2) version: beat the O(n^3) rescans."""
        import time

        m = random_metric_matrix(60, seed=1)
        t0 = time.perf_counter()
        fast = find_compact_sets_fast(m)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = find_compact_sets(m)
        t_slow = time.perf_counter() - t0
        assert fast == slow
        # Generous factor: timing noise should never flake this.
        assert t_fast < t_slow * 2.0
