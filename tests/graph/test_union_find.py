"""Tests for the disjoint-set forest."""

import pytest

from repro.graph.union_find import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert uf.count == 4
        assert all(uf.find(i) == i for i in range(4))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.count == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.count == 3

    def test_transitive_connectivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_group_members(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 4)
        assert sorted(uf.group(4)) == [0, 1, 4]
        assert uf.group(2) == [2]

    def test_group_returns_copy(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        members = uf.group(0)
        members.append(99)
        assert sorted(uf.group(0)) == [0, 1]

    def test_group_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 2)
        assert uf.group_size(3) == 4
        assert uf.group_size(4) == 1

    def test_groups_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(tuple(sorted(g)) for g in uf.groups())
        assert groups == [(0, 1), (2, 3), (4,), (5,)]

    def test_everything_merges_to_one(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.count == 1
        assert sorted(uf.group(0)) == list(range(10))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_size(self):
        uf = UnionFind(0)
        assert uf.count == 0
