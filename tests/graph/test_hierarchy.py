"""Tests for the compact-set hierarchy (laminar tree)."""

import pytest

from repro.graph.hierarchy import CompactSetHierarchy, HierarchyNode
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
)


class TestFromSets:
    def test_empty_family(self):
        h = CompactSetHierarchy.from_sets([], 4)
        assert h.root.members == frozenset(range(4))
        assert all(c.is_leaf for c in h.root.children)
        assert h.root.arity == 4

    def test_single_set(self):
        h = CompactSetHierarchy.from_sets([frozenset({0, 1})], 4)
        sizes = sorted(c.size for c in h.root.children)
        assert sizes == [1, 1, 2]

    def test_nested_sets(self):
        sets = [frozenset({0, 1}), frozenset({0, 1, 2})]
        h = CompactSetHierarchy.from_sets(sets, 5)
        outer = next(c for c in h.root.children if c.size == 3)
        inner = next(c for c in outer.children if c.size == 2)
        assert inner.members == frozenset({0, 1})

    def test_crossing_sets_rejected(self):
        sets = [frozenset({0, 1}), frozenset({1, 2})]
        with pytest.raises(ValueError, match="cross"):
            CompactSetHierarchy.from_sets(sets, 4)

    def test_duplicates_collapsed(self):
        sets = [frozenset({0, 1}), frozenset({0, 1})]
        h = CompactSetHierarchy.from_sets(sets, 3)
        assert len(h.compact_sets()) == 1

    def test_universe_and_singletons_ignored(self):
        sets = [frozenset({0}), frozenset(range(4))]
        h = CompactSetHierarchy.from_sets(sets, 4)
        assert h.compact_sets() == []

    def test_insertion_order_independent(self):
        sets_a = [frozenset({0, 1}), frozenset({0, 1, 2}), frozenset({4, 5})]
        sets_b = list(reversed(sets_a))
        ha = CompactSetHierarchy.from_sets(sets_a, 6)
        hb = CompactSetHierarchy.from_sets(sets_b, 6)
        assert set(ha.compact_sets()) == set(hb.compact_sets())
        assert ha.max_subproblem_size() == hb.max_subproblem_size()


class TestNodeApi:
    def test_walk_preorder(self):
        h = CompactSetHierarchy.from_sets([frozenset({0, 1})], 3)
        nodes = list(h.root.walk())
        assert nodes[0] is h.root
        assert len(nodes) == 5  # root + {0,1} + three singletons

    def test_leaves_are_singletons(self):
        h = CompactSetHierarchy.from_sets([frozenset({0, 1})], 3)
        for node in h.nodes():
            assert node.is_leaf == (node.size == 1)

    def test_children_partition_members(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=1)
        h = CompactSetHierarchy.from_matrix(m)
        for node in h.internal_nodes():
            union = frozenset().union(*[c.members for c in node.children])
            assert union == node.members
            total = sum(c.size for c in node.children)
            assert total == node.size  # disjoint

    def test_repr_smoke(self):
        node = HierarchyNode(frozenset({0}))
        assert "leaf" in repr(node)


class TestFromMatrix:
    def test_hierarchical_matrix_recovers_spec(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=0)
        h = CompactSetHierarchy.from_matrix(m)
        sets = set(h.compact_sets())
        assert frozenset({0, 1, 2}) in sets
        assert frozenset({3, 4}) in sets
        assert frozenset({5, 6, 7, 8}) in sets
        assert frozenset({0, 1, 2, 3, 4}) in sets

    def test_max_subproblem_small_for_clustered(self):
        m = hierarchical_matrix([[3, 3], [3, 3]], seed=2)
        h = CompactSetHierarchy.from_matrix(m)
        assert h.max_subproblem_size() <= 4
        assert h.max_subproblem_size() < m.n

    def test_unstructured_matrix_degenerates(self):
        # With few/no compact sets the root keeps most species: the
        # decomposition honestly reports a big subproblem.
        for seed in range(5):
            m = random_metric_matrix(8, seed=seed)
            h = CompactSetHierarchy.from_matrix(m)
            assert 1 <= h.max_subproblem_size() <= 8

    def test_depth_positive(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=0)
        h = CompactSetHierarchy.from_matrix(m)
        assert h.depth() >= 2

    def test_repr_smoke(self):
        m = hierarchical_matrix([2, 3], seed=0)
        assert "CompactSetHierarchy" in repr(CompactSetHierarchy.from_matrix(m))


class TestAlgorithmSelection:
    def test_fast_and_scan_agree(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=4)
        fast = CompactSetHierarchy.from_matrix(m, algorithm="fast")
        scan = CompactSetHierarchy.from_matrix(m, algorithm="scan")
        assert set(fast.compact_sets()) == set(scan.compact_sets())
        assert fast.max_subproblem_size() == scan.max_subproblem_size()

    def test_unknown_algorithm_rejected(self):
        import pytest as _pytest

        m = hierarchical_matrix([2, 2], seed=5)
        with _pytest.raises(ValueError, match="algorithm"):
            CompactSetHierarchy.from_matrix(m, algorithm="magic")
