"""End-to-end integration tests across subsystem boundaries.

Each test drives a complete user workflow through the public API only,
the way the examples do -- catching wiring bugs no unit test would.
"""


import pytest

from repro import (
    ClusterConfig,
    CompactSetTreeBuilder,
    construct_tree,
    distance_matrix_from_sequences,
    exact_mut,
    generate_hmdna_dataset,
    hierarchical_matrix,
    matrix_summary,
    parse_newick,
    random_metric_matrix,
    read_phylip,
    to_newick,
    upgmm,
    validate_tree,
    write_phylip,
)
from repro.sequences.bootstrap import bootstrap_support
from repro.sequences.fasta import read_fasta, write_fasta
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree
from repro.tree.compare import normalized_robinson_foulds


class TestSequenceToTreeWorkflow:
    def test_fasta_round_trip_to_validated_tree(self, tmp_path):
        """FASTA -> matrix -> compact tree -> Newick -> re-parse -> validate."""
        dataset = generate_hmdna_dataset(12, seed=3, sequence_length=400)
        fasta_path = tmp_path / "seqs.fasta"
        write_fasta(dataset.sequences, fasta_path)

        sequences = read_fasta(fasta_path)
        matrix = distance_matrix_from_sequences(sequences, method="p-count")
        result = construct_tree(matrix, method="compact", max_exact_size=14)

        newick = to_newick(result.tree, precision=12)
        reparsed = parse_newick(newick)
        assert reparsed.cost() == pytest.approx(result.cost)

        report = validate_tree(reparsed, matrix)
        assert report.ok

    def test_bootstrap_closes_the_loop(self):
        dataset = generate_hmdna_dataset(8, seed=9, sequence_length=400)
        result = construct_tree(dataset.matrix, method="compact")
        support = bootstrap_support(
            result.tree, dataset.sequences, n_replicates=8, seed=9
        )
        assert support
        assert all(0.0 <= value <= 1.0 for value in support.values())

    def test_inferred_tree_close_to_truth(self):
        """Long sequences: the pipeline recovers (most of) the true tree."""
        dataset = generate_hmdna_dataset(10, seed=4, sequence_length=3000)
        result = construct_tree(dataset.matrix, method="compact")
        distance = normalized_robinson_foulds(result.tree, dataset.true_tree)
        assert distance <= 0.5


class TestMatrixFileWorkflow:
    def test_phylip_round_trip_preserves_solution(self, tmp_path):
        matrix = hierarchical_matrix([[3, 2], [4]], seed=5)
        path = tmp_path / "matrix.phy"
        write_phylip(matrix, path)
        loaded = read_phylip(path)
        assert exact_mut(loaded).cost == pytest.approx(exact_mut(matrix).cost)

    def test_summary_predicts_decomposition(self):
        structured = hierarchical_matrix([[3, 3], [3, 3]], seed=6)
        summary = matrix_summary(structured)
        result = CompactSetTreeBuilder().build(structured)
        assert result.max_subproblem_size == summary.max_subproblem_size


class TestSolverAgreement:
    """All exact engines must agree; all feasible engines must dominate."""

    @pytest.mark.parametrize("seed", [3, 17])
    def test_three_exact_engines_agree(self, seed):
        from repro import ParallelBranchAndBound, multiprocess_mut

        matrix = random_metric_matrix(9, seed=seed)
        sequential = exact_mut(matrix)
        simulated = ParallelBranchAndBound(
            ClusterConfig(n_workers=4)
        ).solve(matrix)
        processes = multiprocess_mut(matrix, n_workers=2)
        assert simulated.cost == pytest.approx(sequential.cost)
        assert processes.cost == pytest.approx(sequential.cost)

    def test_feasible_methods_dominate_everywhere(self):
        matrix = hierarchical_matrix([[3, 2], [3]], seed=7)
        for method in ("bnb", "compact", "upgmm", "greedy"):
            result = construct_tree(matrix, method)
            assert dominates_matrix(result.tree, matrix), method
            assert is_valid_ultrametric_tree(result.tree), method

    def test_compact_parallel_equals_compact(self):
        matrix = hierarchical_matrix([[4, 3], [4]], seed=8)
        a = construct_tree(matrix, "compact")
        b = construct_tree(
            matrix, "compact-parallel", cluster=ClusterConfig(n_workers=8)
        )
        assert a.cost == pytest.approx(b.cost)


class TestScaleWorkflow:
    def test_thirty_eight_species_end_to_end(self):
        """The scaled HPCAsia headline as a single library call."""
        matrix = hierarchical_matrix(
            [[7, 6], [6, 6], [7, 6]], seed=38, jitter=0.3
        )
        assert matrix.n == 38
        result = construct_tree(matrix, method="compact", max_exact_size=16)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, matrix)
        assert result.cost <= upgmm(matrix).cost() + 1e-9

    def test_anytime_behaviour_on_a_budget(self):
        matrix = random_metric_matrix(14, seed=42)
        budget = construct_tree(matrix, "bnb", node_limit=50)
        full = construct_tree(matrix, "bnb")
        assert budget.details.stats.node_limit_hit
        assert budget.cost >= full.cost - 1e-9
        assert dominates_matrix(budget.tree, matrix)
