"""Tests for networkx interop -- including networkx as an MST oracle."""

import networkx as nx
import pytest

from repro.graph.mst import kruskal_mst, mst_weight
from repro.heuristics.upgma import upgmm
from repro.interop.networkx_graph import (
    matrix_to_graph,
    mst_graph,
    tree_to_digraph,
)
from repro.matrix.generators import random_metric_matrix


class TestMatrixToGraph:
    def test_complete_graph(self, square5):
        graph = matrix_to_graph(square5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 10
        assert graph["a"]["b"]["weight"] == 2.0

    def test_labels_are_nodes(self, square5):
        assert set(matrix_to_graph(square5).nodes) == set(square5.labels)


class TestMstOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_kruskal_matches_networkx_weight(self, seed):
        """Independent oracle: our MST weight equals networkx's."""
        m = random_metric_matrix(12, seed=seed, integer=False)
        ours = mst_weight(kruskal_mst(m))
        theirs = nx.minimum_spanning_tree(matrix_to_graph(m)).size(
            weight="weight"
        )
        assert ours == pytest.approx(theirs)

    def test_mst_graph_is_spanning_tree(self, square5):
        tree = mst_graph(square5)
        assert nx.is_tree(tree)
        assert tree.number_of_nodes() == 5

    def test_mst_graph_weight(self, square5):
        assert mst_graph(square5).size(weight="weight") == pytest.approx(
            mst_weight(kruskal_mst(square5))
        )


class TestTreeToDigraph:
    def test_structure(self, square5):
        tree = upgmm(square5)
        digraph, root = tree_to_digraph(tree)
        assert nx.is_arborescence(digraph)
        assert digraph.out_degree(root) == 2
        # 5 leaves + 4 internal nodes for a binary tree.
        assert digraph.number_of_nodes() == 9

    def test_leaves_carry_labels(self, square5):
        tree = upgmm(square5)
        digraph, _ = tree_to_digraph(tree)
        leaf_labels = {
            data["label"]
            for node, data in digraph.nodes(data=True)
            if digraph.out_degree(node) == 0
        }
        assert leaf_labels == set(square5.labels)

    def test_edge_weights_are_branch_lengths(self, square5):
        tree = upgmm(square5)
        digraph, root = tree_to_digraph(tree)
        # Path length from root to any leaf equals the root height.
        for node in digraph.nodes:
            if digraph.out_degree(node) == 0:
                length = nx.shortest_path_length(
                    digraph, root, node, weight="weight"
                )
                assert length == pytest.approx(tree.height())

    def test_total_weight_is_tree_cost(self, square5):
        tree = upgmm(square5)
        digraph, _ = tree_to_digraph(tree)
        total = sum(w for _, _, w in digraph.edges(data="weight"))
        assert total == pytest.approx(tree.cost())
