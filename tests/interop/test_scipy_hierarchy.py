"""Tests for scipy linkage interop -- including using scipy as an
independent oracle for UPGMA/UPGMM."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import cophenet, is_valid_linkage, linkage
from scipy.spatial.distance import squareform

from repro.heuristics.upgma import upgma, upgmm
from repro.interop.scipy_hierarchy import linkage_to_tree, tree_to_linkage
from repro.matrix.generators import random_metric_matrix
from repro.tree.checks import is_valid_ultrametric_tree
from repro.tree.ultrametric import TreeNode, UltrametricTree


def small_tree():
    inner = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="b")])
    return UltrametricTree(TreeNode(4.0, [inner, TreeNode(label="c")]))


class TestTreeToLinkage:
    def test_shape_and_validity(self):
        z, labels = tree_to_linkage(small_tree())
        assert z.shape == (2, 4)
        assert labels == ["a", "b", "c"]
        assert is_valid_linkage(z)

    def test_distances_are_cophenetic(self):
        tree = small_tree()
        z, labels = tree_to_linkage(tree)
        coph = squareform(cophenet(z))
        for i, a in enumerate(labels):
            for j, b in enumerate(labels):
                if i < j:
                    assert coph[i, j] == pytest.approx(tree.distance(a, b))

    def test_random_trees_valid(self):
        for seed in range(4):
            tree = upgmm(random_metric_matrix(9, seed=seed))
            z, _ = tree_to_linkage(tree)
            assert is_valid_linkage(z)

    def test_single_leaf_rejected(self):
        with pytest.raises(ValueError):
            tree_to_linkage(UltrametricTree.leaf("x"))

    def test_nonbinary_rejected(self):
        root = TreeNode(
            2.0,
            [TreeNode(label="a"), TreeNode(label="b"), TreeNode(label="c")],
        )
        with pytest.raises(ValueError, match="binary"):
            tree_to_linkage(UltrametricTree(root))


class TestLinkageToTree:
    def test_round_trip(self):
        tree = upgmm(random_metric_matrix(8, seed=1))
        z, labels = tree_to_linkage(tree)
        back = linkage_to_tree(z, labels)
        assert is_valid_ultrametric_tree(back)
        for a in labels[:4]:
            for b in labels[4:]:
                assert back.distance(a, b) == pytest.approx(tree.distance(a, b))

    def test_default_labels(self):
        z, _ = tree_to_linkage(small_tree())
        back = linkage_to_tree(z)
        assert set(back.leaf_labels) == {"s0", "s1", "s2"}

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="linkage must be"):
            linkage_to_tree(np.zeros((3, 3)))

    def test_label_count_checked(self):
        z, _ = tree_to_linkage(small_tree())
        with pytest.raises(ValueError, match="labels"):
            linkage_to_tree(z, ["only", "two"])

    def test_bad_cluster_reference_rejected(self):
        z = np.array([[0.0, 9.0, 2.0, 2.0]])
        with pytest.raises(ValueError, match="bad clusters"):
            linkage_to_tree(z)

    def test_wrong_size_field_rejected(self):
        z = np.array([[0.0, 1.0, 2.0, 5.0]])
        with pytest.raises(ValueError, match="size"):
            linkage_to_tree(z)


class TestScipyAsOracle:
    """Our agglomerative builders must match scipy's linkage exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_upgma_matches_scipy_average(self, seed):
        m = random_metric_matrix(10, seed=seed, integer=False)
        condensed = squareform(m.values)
        z = linkage(condensed, method="average")
        scipy_coph = squareform(cophenet(z))
        ours = upgma(m).distance_matrix(m.labels).values
        assert np.allclose(ours, scipy_coph, atol=1e-8)

    @pytest.mark.parametrize("seed", range(5))
    def test_upgmm_matches_scipy_complete(self, seed):
        m = random_metric_matrix(10, seed=seed, integer=False)
        condensed = squareform(m.values)
        z = linkage(condensed, method="complete")
        scipy_coph = squareform(cophenet(z))
        ours = upgmm(m).distance_matrix(m.labels).values
        assert np.allclose(ours, scipy_coph, atol=1e-8)

    def test_scipy_linkage_converts_to_feasible_tree(self):
        """A scipy complete-linkage clustering, imported, passes this
        repository's feasibility check -- the UPGMM guarantee."""
        from repro.tree.checks import dominates_matrix

        m = random_metric_matrix(9, seed=7, integer=False)
        z = linkage(squareform(m.values), method="complete")
        tree = linkage_to_tree(z, m.labels)
        assert dominates_matrix(tree, m)
