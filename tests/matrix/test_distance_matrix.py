"""Tests for the DistanceMatrix container and its predicates."""

import numpy as np
import pytest

from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError


class TestConstruction:
    def test_basic_construction(self):
        m = DistanceMatrix([[0, 1], [1, 0]])
        assert m.n == 2
        assert len(m) == 2

    def test_default_labels(self):
        m = DistanceMatrix([[0, 1], [1, 0]])
        assert m.labels == ["s0", "s1"]

    def test_explicit_labels(self):
        m = DistanceMatrix([[0, 1], [1, 0]], labels=["x", "y"])
        assert m.labels == ["x", "y"]

    def test_values_are_copied(self):
        raw = np.array([[0.0, 1.0], [1.0, 0.0]])
        m = DistanceMatrix(raw)
        raw[0, 1] = 99.0
        assert m[0, 1] == 1.0

    def test_stored_values_are_immutable(self):
        # Identity-keyed caches (bnb.bounds.search_context,
        # matrix.maxmin.apply_maxmin) assume a matrix never changes after
        # construction; in-place writes must fail loudly.
        m = DistanceMatrix([[0, 1], [1, 0]])
        with pytest.raises(ValueError, match="read-only"):
            m.values[0, 1] = 99.0
        with pytest.raises(ValueError, match="read-only"):
            m.values[:] = 0.0
        assert m[0, 1] == 1.0

    def test_derived_matrices_are_immutable_too(self):
        m = DistanceMatrix([[0, 1, 2], [1, 0, 2], [2, 2, 0]])
        for derived in (m.submatrix([0, 1]), m.relabeled([2, 1, 0]),
                        m.with_labels(["a", "b", "c"])):
            with pytest.raises(ValueError, match="read-only"):
                derived.values[0, 0] = 1.0

    def test_non_square_rejected(self):
        with pytest.raises(MatrixValidationError, match="square"):
            DistanceMatrix([[0, 1, 2], [1, 0, 2]])

    def test_wrong_label_count_rejected(self):
        with pytest.raises(MatrixValidationError, match="labels"):
            DistanceMatrix([[0, 1], [1, 0]], labels=["only-one"])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(MatrixValidationError, match="unique"):
            DistanceMatrix([[0, 1], [1, 0]], labels=["x", "x"])

    def test_asymmetric_rejected(self):
        with pytest.raises(MatrixValidationError, match="symmetric"):
            DistanceMatrix([[0, 1], [2, 0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(MatrixValidationError, match="diagonal"):
            DistanceMatrix([[1, 1], [1, 0]])

    def test_negative_entry_rejected(self):
        with pytest.raises(MatrixValidationError, match="non-negative"):
            DistanceMatrix([[0, -1], [-1, 0]])

    def test_non_finite_rejected(self):
        with pytest.raises(MatrixValidationError, match="finite"):
            DistanceMatrix([[0, float("nan")], [float("nan"), 0]])

    def test_validate_false_skips_checks(self):
        m = DistanceMatrix([[0, 1], [2, 0]], validate=False)
        assert m.n == 2

    def test_single_species(self):
        m = DistanceMatrix([[0.0]])
        assert m.n == 1


class TestAccess:
    def test_getitem_by_index(self, tiny_matrix):
        assert tiny_matrix[0, 2] == 8.0

    def test_getitem_by_label(self, tiny_matrix):
        assert tiny_matrix["a", "c"] == 8.0

    def test_getitem_mixed(self, tiny_matrix):
        assert tiny_matrix["a", 1] == 2.0

    def test_unknown_label_raises(self, tiny_matrix):
        with pytest.raises(KeyError, match="zzz"):
            tiny_matrix["zzz", "a"]

    def test_index_of(self, tiny_matrix):
        assert tiny_matrix.index_of("b") == 1
        assert tiny_matrix.index_of(2) == 2

    def test_equality(self, tiny_matrix):
        same = DistanceMatrix(
            [[0, 2, 8], [2, 0, 8], [8, 8, 0]], labels=["a", "b", "c"]
        )
        assert tiny_matrix == same

    def test_inequality_on_labels(self, tiny_matrix):
        other = DistanceMatrix(
            [[0, 2, 8], [2, 0, 8], [8, 8, 0]], labels=["x", "y", "z"]
        )
        assert tiny_matrix != other

    def test_pairs_iteration(self, tiny_matrix):
        pairs = list(tiny_matrix.pairs())
        assert pairs == [(0, 1, 2.0), (0, 2, 8.0), (1, 2, 8.0)]


class TestPredicates:
    def test_metric_true(self, tiny_matrix):
        assert tiny_matrix.is_metric()

    def test_metric_false(self):
        m = DistanceMatrix(
            [[0, 1, 10], [1, 0, 1], [10, 1, 0]]
        )
        assert not m.is_metric()

    def test_require_metric_passes(self, tiny_matrix):
        assert tiny_matrix.require_metric() is tiny_matrix

    def test_require_metric_raises(self):
        m = DistanceMatrix([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        with pytest.raises(MatrixValidationError, match="triangle"):
            m.require_metric()

    def test_ultrametric_true(self, tiny_matrix):
        # Distances 2, 8, 8: two largest equal -> ultrametric.
        assert tiny_matrix.is_ultrametric()

    def test_ultrametric_false(self):
        m = DistanceMatrix([[0, 2, 3], [2, 0, 4], [3, 4, 0]])
        assert not m.is_ultrametric()

    def test_ultrametric_implies_metric(self, tiny_matrix):
        assert tiny_matrix.is_ultrametric() and tiny_matrix.is_metric()


class TestDerivedMatrices:
    def test_submatrix_by_index(self, square5):
        sub = square5.submatrix([2, 3, 4])
        assert sub.labels == ["c", "d", "e"]
        assert sub["c", "d"] == 3.0

    def test_submatrix_by_label(self, square5):
        sub = square5.submatrix(["a", "e"])
        assert sub[0, 1] == 12.0

    def test_submatrix_preserves_order(self, square5):
        sub = square5.submatrix(["e", "a"])
        assert sub.labels == ["e", "a"]

    def test_relabeled(self, tiny_matrix):
        re = tiny_matrix.relabeled([2, 0, 1])
        assert re.labels == ["c", "a", "b"]
        assert re["c", "a"] == 8.0

    def test_relabeled_rejects_non_permutation(self, tiny_matrix):
        with pytest.raises(MatrixValidationError, match="permutation"):
            tiny_matrix.relabeled([0, 0, 1])

    def test_with_labels(self, tiny_matrix):
        renamed = tiny_matrix.with_labels(["x", "y", "z"])
        assert renamed.labels == ["x", "y", "z"]
        assert renamed["x", "z"] == 8.0


class TestQueries:
    def test_max_pair(self, square5):
        i, j, d = square5.max_pair()
        assert d == 12.0
        assert {square5.labels[i], square5.labels[j]} <= {"a", "b", "e"}

    def test_min_pair(self, square5):
        i, j, d = square5.min_pair()
        assert (i, j, d) == (0, 1, 2.0)

    def test_max_distance(self, square5):
        assert square5.max_distance() == 12.0

    def test_min_link(self, square5):
        assert square5.min_link("a") == 2.0
        assert square5.min_link("e") == 4.0

    def test_min_link_single_species(self):
        m = DistanceMatrix([[0.0]])
        assert m.min_link(0) == 0.0

    def test_max_pair_requires_two(self):
        m = DistanceMatrix([[0.0]])
        with pytest.raises(MatrixValidationError):
            m.max_pair()
