"""Tests for matrix statistics and structure probes."""

import pytest

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.matrix.stats import (
    matrix_summary,
    structure_score,
    ultrametricity_defect,
)


class TestUltrametricityDefect:
    def test_zero_for_ultrametric(self):
        m = random_ultrametric_matrix(8, seed=1)
        assert ultrametricity_defect(m) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_random(self):
        m = random_metric_matrix(8, seed=2)
        assert ultrametricity_defect(m) > 0.05

    def test_small_matrices(self):
        assert ultrametricity_defect(DistanceMatrix([[0, 3], [3, 0]])) == 0.0

    def test_in_unit_interval(self):
        for seed in range(4):
            m = random_metric_matrix(7, seed=seed)
            assert 0.0 <= ultrametricity_defect(m) <= 1.0


class TestStructureScore:
    def test_high_for_clustered(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=3)
        assert structure_score(m) >= 0.5

    def test_low_for_uniform(self):
        m = DistanceMatrix(
            [[0, 5, 5, 5], [5, 0, 5, 5], [5, 5, 0, 5], [5, 5, 5, 0]]
        )
        assert structure_score(m) == pytest.approx(0.0)

    def test_trivial_sizes(self):
        assert structure_score(DistanceMatrix([[0.0]])) == 1.0
        assert structure_score(DistanceMatrix([[0, 2], [2, 0]])) == 1.0

    def test_bounded(self):
        for seed in range(4):
            m = random_metric_matrix(9, seed=seed)
            assert 0.0 <= structure_score(m) <= 1.0


class TestMatrixSummary:
    def test_fields(self, square5):
        summary = matrix_summary(square5)
        assert summary.n == 5
        assert summary.min_distance == 2.0
        assert summary.max_distance == 12.0
        assert summary.is_metric
        assert summary.compact_sets == len(
            __import__("repro.graph", fromlist=["find_compact_sets"])
            .find_compact_sets(square5)
        )

    def test_structure_consistency(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=4)
        summary = matrix_summary(m)
        assert summary.structure_score == pytest.approx(structure_score(m))

    def test_describe_recommends_decomposition(self):
        m = hierarchical_matrix([[3, 3], [3, 3]], seed=5)
        assert "pay off" in matrix_summary(m).describe()

    def test_describe_warns_on_unstructured(self):
        m = DistanceMatrix(
            [[0, 5, 5, 5], [5, 0, 5, 5], [5, 5, 0, 5], [5, 5, 5, 0]]
        )
        assert "little compact structure" in matrix_summary(m).describe()

    def test_single_species(self):
        summary = matrix_summary(DistanceMatrix([[0.0]]))
        assert summary.n == 1
        assert summary.structure_score == 1.0

    def test_empty_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            matrix_summary(DistanceMatrix(np.zeros((0, 0)), labels=[]))

    def test_ultrametric_flagged(self):
        m = random_ultrametric_matrix(7, seed=6)
        summary = matrix_summary(m)
        assert summary.is_ultrametric
        assert summary.ultrametricity_defect == pytest.approx(0.0, abs=1e-9)
