"""Tests for metric repair (shortest-path closure)."""

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import is_triangle_violating, metric_closure


class TestMetricClosure:
    def test_closure_is_metric(self):
        m = DistanceMatrix([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        closed = metric_closure(m)
        assert closed.is_metric()

    def test_closure_uses_shortest_path(self):
        m = DistanceMatrix([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        closed = metric_closure(m)
        assert closed[0, 2] == 2.0  # via species 1

    def test_closure_dominated_by_input(self):
        rng = np.random.default_rng(0)
        raw = rng.integers(1, 100, size=(8, 8)).astype(float)
        raw = np.triu(raw, 1)
        raw = raw + raw.T
        m = DistanceMatrix(raw, validate=False)
        closed = metric_closure(m)
        assert (closed.values <= m.values + 1e-9).all()

    def test_metric_input_unchanged(self, tiny_matrix):
        closed = metric_closure(tiny_matrix)
        assert np.allclose(closed.values, tiny_matrix.values)

    def test_preserves_labels(self, tiny_matrix):
        assert metric_closure(tiny_matrix).labels == tiny_matrix.labels

    def test_diagonal_stays_zero(self):
        m = DistanceMatrix([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        assert np.all(np.diagonal(metric_closure(m).values) == 0.0)

    def test_closure_is_largest_dominated_metric_on_small_case(self):
        # For a 3-point set the closure must clamp the long side to the
        # sum of the other two -- not lower.
        m = DistanceMatrix([[0, 3, 100], [3, 0, 4], [100, 4, 0]])
        closed = metric_closure(m)
        assert closed[0, 2] == 7.0


class TestTriangleViolating:
    def test_detects_violation(self):
        m = DistanceMatrix([[0, 1, 10], [1, 0, 1], [10, 1, 0]])
        assert is_triangle_violating(m)

    def test_metric_passes(self, tiny_matrix):
        assert not is_triangle_violating(tiny_matrix)
