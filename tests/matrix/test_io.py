"""Tests for PHYLIP and CSV matrix I/O."""

import io

import numpy as np
import pytest

from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError
from repro.matrix.io import (
    read_csv_matrix,
    read_phylip,
    write_csv_matrix,
    write_phylip,
)


class TestPhylip:
    def test_round_trip_via_buffer(self, square5):
        buffer = io.StringIO()
        write_phylip(square5, buffer)
        parsed = read_phylip(io.StringIO(buffer.getvalue()))
        assert parsed.labels == square5.labels
        assert np.allclose(parsed.values, square5.values)

    def test_round_trip_via_file(self, square5, tmp_path):
        path = tmp_path / "m.phy"
        write_phylip(square5, path)
        parsed = read_phylip(path)
        assert np.allclose(parsed.values, square5.values)

    def test_parse_handcrafted(self):
        text = "2\nfoo 0.0 1.5\nbar 1.5 0.0\n"
        m = read_phylip(io.StringIO(text))
        assert m.labels == ["foo", "bar"]
        assert m["foo", "bar"] == 1.5

    def test_rejects_empty(self):
        with pytest.raises(MatrixValidationError, match="empty"):
            read_phylip(io.StringIO(""))

    def test_rejects_bad_header(self):
        with pytest.raises(MatrixValidationError, match="species count"):
            read_phylip(io.StringIO("species\nfoo 0"))

    def test_rejects_truncated_rows(self):
        with pytest.raises(MatrixValidationError, match="promises"):
            read_phylip(io.StringIO("3\nfoo 0 1 2\n"))

    def test_rejects_short_row(self):
        with pytest.raises(MatrixValidationError, match="distances"):
            read_phylip(io.StringIO("2\nfoo 0.0\nbar 0.0 1.0"))

    def test_rejects_extra_rows(self):
        # A wrong header must not silently truncate the matrix.
        text = "2\nfoo 0 1\nbar 1 0\nbaz 1 1\n"
        with pytest.raises(MatrixValidationError, match="extra data"):
            read_phylip(io.StringIO(text))

    def test_rejects_non_numeric_distance(self):
        text = "2\nfoo 0.0 oops\nbar 1.0 0.0\n"
        with pytest.raises(MatrixValidationError, match="non-numeric"):
            read_phylip(io.StringIO(text))

    def test_write_rejects_whitespace_label(self):
        # "big cat" would be split into two tokens on read, shifting the
        # whole row; refuse to write instead of corrupting silently.
        m = DistanceMatrix([[0, 1], [1, 0]], labels=["big cat", "dog"])
        with pytest.raises(MatrixValidationError, match="whitespace"):
            write_phylip(m, io.StringIO())

    def test_write_rejects_tab_and_empty_labels(self):
        for labels in (["a\tb", "c"], ["", "c"]):
            m = DistanceMatrix([[0, 1], [1, 0]], labels=labels)
            with pytest.raises(MatrixValidationError):
                write_phylip(m, io.StringIO())

    def test_safe_labels_still_round_trip(self):
        m = DistanceMatrix([[0, 1], [1, 0]], labels=["big_cat", "dog"])
        buffer = io.StringIO()
        write_phylip(m, buffer)
        parsed = read_phylip(io.StringIO(buffer.getvalue()))
        assert parsed.labels == ["big_cat", "dog"]
        assert np.allclose(parsed.values, m.values)


class TestCsv:
    def test_round_trip(self, square5):
        buffer = io.StringIO()
        write_csv_matrix(square5, buffer)
        parsed = read_csv_matrix(io.StringIO(buffer.getvalue()))
        assert parsed.labels == square5.labels
        assert np.allclose(parsed.values, square5.values)

    def test_round_trip_via_file(self, tiny_matrix, tmp_path):
        path = tmp_path / "m.csv"
        write_csv_matrix(tiny_matrix, path)
        parsed = read_csv_matrix(path)
        assert np.allclose(parsed.values, tiny_matrix.values)

    def test_rejects_empty(self):
        with pytest.raises(MatrixValidationError):
            read_csv_matrix(io.StringIO(""))

    def test_rejects_mismatched_labels(self):
        text = ",a,b\na,0,1\nc,1,0\n"
        with pytest.raises(MatrixValidationError, match="match the header"):
            read_csv_matrix(io.StringIO(text))

    def test_rejects_wrong_row_count(self):
        text = ",a,b\na,0,1\n"
        with pytest.raises(MatrixValidationError, match="rows"):
            read_csv_matrix(io.StringIO(text))

    def test_rejects_short_row(self):
        text = ",a,b\na,0\nb,1,0\n"
        with pytest.raises(MatrixValidationError, match="values"):
            read_csv_matrix(io.StringIO(text))
