"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.graph.compact_sets import is_compact
from repro.matrix.generators import (
    clustered_matrix,
    hierarchical_matrix,
    perturbed_ultrametric_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)


class TestRandomMetricMatrix:
    def test_is_metric(self):
        for seed in range(4):
            assert random_metric_matrix(10, seed=seed).is_metric()

    def test_deterministic_given_seed(self):
        a = random_metric_matrix(8, seed=3)
        b = random_metric_matrix(8, seed=3)
        assert np.allclose(a.values, b.values)

    def test_different_seeds_differ(self):
        a = random_metric_matrix(8, seed=3)
        b = random_metric_matrix(8, seed=4)
        assert not np.allclose(a.values, b.values)

    def test_range_respected(self):
        m = random_metric_matrix(10, seed=1, low=5, high=50)
        off_diag = m.values[~np.eye(10, dtype=bool)]
        assert off_diag.max() <= 50.0
        assert off_diag.min() >= 1.0  # closure can only lower, floor > 0

    def test_positive_off_diagonal(self):
        m = random_metric_matrix(10, seed=2)
        off_diag = m.values[~np.eye(10, dtype=bool)]
        assert (off_diag > 0).all()

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            random_metric_matrix(0)

    def test_float_mode(self):
        m = random_metric_matrix(6, seed=1, integer=False)
        assert m.is_metric()


class TestClusteredMatrix:
    def test_blocks_are_compact(self):
        m = clustered_matrix([3, 4, 3], seed=0)
        assert is_compact(m, [0, 1, 2])
        assert is_compact(m, [3, 4, 5, 6])
        assert is_compact(m, [7, 8, 9])

    def test_is_metric(self):
        assert clustered_matrix([3, 3, 2], seed=1).is_metric()

    def test_rejects_overlapping_bands(self):
        with pytest.raises(ValueError, match="compactness"):
            clustered_matrix([2, 2], within=(10, 50), between=(40, 60))

    def test_rejects_non_metric_between(self):
        with pytest.raises(ValueError, match="metricity"):
            clustered_matrix([2, 2], within=(1, 2), between=(10, 30))

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError, match="positive"):
            clustered_matrix([3, 0], seed=1)

    def test_total_size(self):
        assert clustered_matrix([2, 3, 4], seed=0).n == 9


class TestHierarchicalMatrix:
    def test_groups_are_compact(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=0)
        # Innermost groups.
        assert is_compact(m, [0, 1, 2])
        assert is_compact(m, [3, 4])
        assert is_compact(m, [5, 6, 7, 8])
        # The super-group from the nesting.
        assert is_compact(m, [0, 1, 2, 3, 4])

    def test_is_metric(self):
        assert hierarchical_matrix([[2, 2], [3]], seed=5).is_metric()

    def test_size_matches_spec(self):
        assert hierarchical_matrix([[3, 2], [4], [2, 2]], seed=0).n == 13

    def test_rejects_small_gap(self):
        with pytest.raises(ValueError, match="gap"):
            hierarchical_matrix([2, 2], gap=1.0)

    def test_rejects_large_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            hierarchical_matrix([2, 2], gap=2.0, jitter=0.5)

    def test_rejects_empty_spec(self):
        with pytest.raises(ValueError):
            hierarchical_matrix([], seed=0)

    def test_deterministic(self):
        a = hierarchical_matrix([[3, 2], [4]], seed=9)
        b = hierarchical_matrix([[3, 2], [4]], seed=9)
        assert np.allclose(a.values, b.values)


class TestUltrametricGenerators:
    def test_random_ultrametric_is_ultrametric(self):
        for seed in range(4):
            m = random_ultrametric_matrix(9, seed=seed)
            assert m.is_ultrametric()

    def test_random_ultrametric_is_metric(self):
        assert random_ultrametric_matrix(9, seed=1).is_metric()

    def test_perturbed_is_metric_but_not_ultrametric(self):
        m = perturbed_ultrametric_matrix(10, seed=2, noise=0.3)
        assert m.is_metric()
        # With this much noise ultrametricity should break.
        assert not m.is_ultrametric()

    def test_perturbation_shrinks_only(self):
        rng = np.random.default_rng(7)
        clean = random_ultrametric_matrix(8, seed=7)
        noisy = perturbed_ultrametric_matrix(8, seed=7, noise=0.2)
        # Same seed stream differs, so only check the global scale.
        assert noisy.values.max() <= clean.values.max() * 1.2

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            perturbed_ultrametric_matrix(5, noise=1.5)

    def test_zero_noise_stays_ultrametric(self):
        m = perturbed_ultrametric_matrix(8, seed=3, noise=0.0)
        assert m.is_ultrametric()
