"""Tests for max-min permutations."""

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix
from repro.matrix.maxmin import (
    apply_maxmin,
    is_maxmin_permutation,
    maxmin_permutation,
)


class TestMaxminPermutation:
    def test_starts_with_farthest_pair(self, square5):
        order = maxmin_permutation(square5)
        d = square5.values
        assert d[order[0], order[1]] == square5.max_distance()

    def test_is_a_permutation(self, square5):
        order = maxmin_permutation(square5)
        assert sorted(order) == list(range(square5.n))

    def test_greedy_choice_maximises_min_distance(self, square5):
        order = maxmin_permutation(square5)
        v = square5.values
        for k in range(2, square5.n):
            prefix = order[:k]
            chosen_min = min(v[order[k], i] for i in prefix)
            for other in order[k + 1:]:
                other_min = min(v[other, i] for i in prefix)
                assert chosen_min >= other_min - 1e-12

    def test_empty_matrix(self):
        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        assert maxmin_permutation(m) == []

    def test_single_species(self):
        m = DistanceMatrix([[0.0]])
        assert maxmin_permutation(m) == [0]

    def test_two_species(self):
        m = DistanceMatrix([[0, 5], [5, 0]])
        assert sorted(maxmin_permutation(m)) == [0, 1]

    def test_deterministic(self, square5):
        assert maxmin_permutation(square5) == maxmin_permutation(square5)


class TestApplyMaxmin:
    def test_result_is_maxmin_ordered(self, square5):
        ordered, _ = apply_maxmin(square5)
        assert is_maxmin_permutation(ordered)

    def test_permutation_maps_back(self, square5):
        ordered, perm = apply_maxmin(square5)
        for p in range(square5.n):
            assert ordered.labels[p] == square5.labels[perm[p]]

    def test_preserves_distances(self, square5):
        ordered, _ = apply_maxmin(square5)
        for a in square5.labels:
            for b in square5.labels:
                assert ordered[a, b] == square5[a, b]


class TestIsMaxmin:
    def test_random_matrices_after_apply(self):
        for seed in range(5):
            m = random_metric_matrix(9, seed=seed)
            ordered, _ = apply_maxmin(m)
            assert is_maxmin_permutation(ordered)

    def test_detects_bad_start(self):
        # Identity order does not start with the farthest pair.
        m = DistanceMatrix(
            [[0, 1, 5], [1, 0, 5], [5, 5, 0]]
        )
        assert not is_maxmin_permutation(m)

    def test_small_matrices_trivially_maxmin(self):
        assert is_maxmin_permutation(DistanceMatrix([[0.0]]))
        assert is_maxmin_permutation(DistanceMatrix([[0, 3], [3, 0]]))
