"""Tests for FASTA I/O."""

import io

import pytest

from repro.sequences.fasta import FastaError, read_fasta, write_fasta
from repro.sequences.hmdna import generate_hmdna_dataset


class TestReadFasta:
    def test_basic(self):
        text = ">a\nACGT\n>b\nTTTT\n"
        assert read_fasta(io.StringIO(text)) == {"a": "ACGT", "b": "TTTT"}

    def test_multiline_sequences(self):
        text = ">a\nACG\nTAC\nGT\n"
        assert read_fasta(io.StringIO(text)) == {"a": "ACGTACGT"}

    def test_header_token_only(self):
        text = ">seq1 Homo sapiens mitochondrion\nACGT\n"
        assert list(read_fasta(io.StringIO(text))) == ["seq1"]

    def test_lowercase_normalised(self):
        assert read_fasta(io.StringIO(">a\nacgt\n")) == {"a": "ACGT"}

    def test_blank_lines_ignored(self):
        text = "\n>a\n\nACGT\n\n>b\nGGGG\n"
        assert len(read_fasta(io.StringIO(text))) == 2

    def test_validation_rejects_bad_symbols(self):
        with pytest.raises(ValueError, match="non-DNA"):
            read_fasta(io.StringIO(">a\nACGX\n"))

    def test_validation_can_be_disabled(self):
        result = read_fasta(io.StringIO(">a\nACGX\n"), validate=False)
        assert result == {"a": "ACGX"}

    def test_empty_input_rejected(self):
        with pytest.raises(FastaError, match="no FASTA records"):
            read_fasta(io.StringIO(""))

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError, match="before any header"):
            read_fasta(io.StringIO("ACGT\n>a\nACGT\n"))

    def test_empty_header_rejected(self):
        with pytest.raises(FastaError, match="empty FASTA header"):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_duplicate_record_rejected(self):
        with pytest.raises(FastaError, match="duplicate"):
            read_fasta(io.StringIO(">a\nAC\n>a\nGT\n"))

    def test_record_without_sequence_rejected(self):
        with pytest.raises(FastaError, match="no sequence"):
            read_fasta(io.StringIO(">a\n>b\nACGT\n"))


class TestWriteFasta:
    def test_round_trip(self):
        seqs = {"x": "ACGT" * 30, "y": "TTTT"}
        buffer = io.StringIO()
        write_fasta(seqs, buffer)
        assert read_fasta(io.StringIO(buffer.getvalue())) == seqs

    def test_line_wrapping(self):
        buffer = io.StringIO()
        write_fasta({"x": "A" * 100}, buffer, line_width=30)
        lines = buffer.getvalue().splitlines()
        assert max(len(line) for line in lines[1:]) == 30

    def test_file_round_trip(self, tmp_path):
        dataset = generate_hmdna_dataset(6, seed=1, sequence_length=80)
        path = tmp_path / "seqs.fasta"
        write_fasta(dataset.sequences, path)
        assert read_fasta(path) == dataset.sequences

    def test_bad_line_width(self):
        with pytest.raises(ValueError):
            write_fasta({"a": "ACGT"}, io.StringIO(), line_width=0)
