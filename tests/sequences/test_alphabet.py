"""Tests for the DNA alphabet helpers."""

import pytest

from repro.sequences.alphabet import DNA_ALPHABET, random_sequence, validate_sequence


class TestAlphabet:
    def test_alphabet(self):
        assert DNA_ALPHABET == "ACGT"

    def test_random_sequence_length(self):
        assert len(random_sequence(100, seed=0)) == 100

    def test_random_sequence_alphabet(self):
        assert set(random_sequence(500, seed=1)) <= set("ACGT")

    def test_random_sequence_deterministic(self):
        assert random_sequence(50, seed=2) == random_sequence(50, seed=2)

    def test_random_sequence_varies_with_seed(self):
        assert random_sequence(50, seed=2) != random_sequence(50, seed=3)

    def test_empty_sequence(self):
        assert random_sequence(0) == ""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(-1)

    def test_validate_uppercases(self):
        assert validate_sequence("acgt") == "ACGT"

    def test_validate_rejects_bad_symbols(self):
        with pytest.raises(ValueError, match="non-DNA"):
            validate_sequence("ACGX")

    def test_all_bases_appear_in_long_sequence(self):
        assert set(random_sequence(1000, seed=4)) == set("ACGT")
