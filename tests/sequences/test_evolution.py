"""Tests for sequence evolution along species trees."""

import pytest

from repro.sequences.distance import p_distance
from repro.sequences.evolution import evolve_sequences, random_species_tree
from repro.tree.checks import is_valid_ultrametric_tree


class TestRandomSpeciesTree:
    def test_leaf_count(self):
        tree = random_species_tree(12, seed=0)
        assert tree.n_leaves == 12

    def test_is_valid_ultrametric(self):
        for seed in range(4):
            tree = random_species_tree(8, seed=seed)
            assert is_valid_ultrametric_tree(tree)

    def test_depth_respected(self):
        tree = random_species_tree(8, seed=1, depth=0.5)
        assert tree.height() == pytest.approx(0.5)

    def test_custom_labels(self):
        labels = [f"sp{i}" for i in range(6)]
        tree = random_species_tree(6, seed=2, labels=labels)
        assert set(tree.leaf_labels) == set(labels)

    def test_single_species(self):
        tree = random_species_tree(1, seed=3)
        assert tree.n_leaves == 1

    def test_deterministic(self):
        a = random_species_tree(7, seed=4)
        b = random_species_tree(7, seed=4)
        assert a.distance_matrix().values.tolist() == b.distance_matrix().values.tolist()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_species_tree(0)
        with pytest.raises(ValueError):
            random_species_tree(5, depth=-1)
        with pytest.raises(ValueError):
            random_species_tree(5, balance=0.0)
        with pytest.raises(ValueError):
            random_species_tree(5, labels=["too", "few"])


class TestEvolveSequences:
    def test_all_leaves_get_sequences(self):
        tree = random_species_tree(10, seed=5)
        seqs = evolve_sequences(tree, length=200, seed=5)
        assert set(seqs) == set(tree.leaf_labels)

    def test_sequence_lengths(self):
        tree = random_species_tree(6, seed=6)
        seqs = evolve_sequences(tree, length=333, seed=6)
        assert all(len(s) == 333 for s in seqs.values())

    def test_alphabet(self):
        tree = random_species_tree(6, seed=7)
        seqs = evolve_sequences(tree, length=100, seed=7)
        for s in seqs.values():
            assert set(s) <= set("ACGT")

    def test_deterministic(self):
        tree = random_species_tree(5, seed=8)
        assert evolve_sequences(tree, length=50, seed=9) == evolve_sequences(
            tree, length=50, seed=9
        )

    def test_closer_species_have_more_similar_sequences(self):
        """The molecular clock signal: sequence divergence tracks tree
        distance on average."""
        tree = random_species_tree(8, seed=10, depth=0.4)
        seqs = evolve_sequences(tree, length=2000, seed=10)
        labels = tree.leaf_labels
        # Compare the closest and the farthest pair in the true tree.
        pairs = [
            (a, b, tree.distance(a, b))
            for i, a in enumerate(labels)
            for b in labels[i + 1:]
        ]
        closest = min(pairs, key=lambda p: p[2])
        farthest = max(pairs, key=lambda p: p[2])
        if farthest[2] > 2 * closest[2]:
            assert p_distance(seqs[closest[0]], seqs[closest[1]]) <= p_distance(
                seqs[farthest[0]], seqs[farthest[1]]
            )

    def test_zero_length_rejected(self):
        tree = random_species_tree(4, seed=11)
        with pytest.raises(ValueError):
            evolve_sequences(tree, length=0)

    def test_single_leaf_tree(self):
        from repro.tree.ultrametric import UltrametricTree

        seqs = evolve_sequences(UltrametricTree.leaf("x"), length=30, seed=12)
        assert set(seqs) == {"x"}
        assert len(seqs["x"]) == 30
