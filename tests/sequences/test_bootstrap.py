"""Tests for bootstrap resampling and clade support."""

import pytest

from repro.core.pipeline import CompactSetTreeBuilder
from repro.sequences.bootstrap import (
    bootstrap_matrices,
    bootstrap_sequences,
    bootstrap_support,
)
from repro.sequences.hmdna import generate_hmdna_dataset
from repro.tree.compare import clades


@pytest.fixture
def dataset():
    return generate_hmdna_dataset(8, seed=11, sequence_length=300)


class TestBootstrapSequences:
    def test_preserves_names_and_length(self, dataset):
        replicate = bootstrap_sequences(dataset.sequences, seed=1)
        assert set(replicate) == set(dataset.sequences)
        for name in replicate:
            assert len(replicate[name]) == len(dataset.sequences[name])

    def test_columns_resampled_consistently(self):
        seqs = {"a": "AC", "b": "GT"}
        replicate = bootstrap_sequences(seqs, seed=2)
        # Column pairs must come from the original columns (A,G) or (C,T).
        for pos in range(2):
            assert (replicate["a"][pos], replicate["b"][pos]) in {
                ("A", "G"),
                ("C", "T"),
            }

    def test_deterministic_per_seed(self, dataset):
        assert bootstrap_sequences(dataset.sequences, seed=3) == (
            bootstrap_sequences(dataset.sequences, seed=3)
        )

    def test_replicates_differ(self, dataset):
        a = bootstrap_sequences(dataset.sequences, seed=4)
        b = bootstrap_sequences(dataset.sequences, seed=5)
        assert a != b

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            bootstrap_sequences({"a": "ACGT", "b": "ACG"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_sequences({})
        with pytest.raises(ValueError):
            bootstrap_sequences({"a": "", "b": ""})


class TestBootstrapMatrices:
    def test_count_and_labels(self, dataset):
        matrices = bootstrap_matrices(dataset.sequences, 3, seed=6)
        assert len(matrices) == 3
        for matrix in matrices:
            assert set(matrix.labels) == set(dataset.sequences)
            assert matrix.is_metric()

    def test_replicates_differ(self, dataset):
        a, b = bootstrap_matrices(dataset.sequences, 2, seed=7)
        assert not (a.values == b.values).all()

    def test_invalid_count(self, dataset):
        with pytest.raises(ValueError):
            bootstrap_matrices(dataset.sequences, 0)


class TestBootstrapSupport:
    def test_support_in_unit_interval(self, dataset):
        tree = CompactSetTreeBuilder(max_exact_size=12).build(dataset.matrix).tree
        support = bootstrap_support(
            tree, dataset.sequences, n_replicates=10, seed=8
        )
        assert set(support) == clades(tree)
        assert all(0.0 <= v <= 1.0 for v in support.values())

    def test_strong_signal_gets_strong_support(self):
        """With long sequences and deep splits, top clades are stable."""
        data = generate_hmdna_dataset(6, seed=13, sequence_length=2000)
        tree = CompactSetTreeBuilder(max_exact_size=12).build(data.matrix).tree
        support = bootstrap_support(
            tree, data.sequences, n_replicates=10, seed=9
        )
        assert support, "tree should have non-trivial clades"
        assert max(support.values()) >= 0.8

    def test_custom_builder(self, dataset):
        from repro.heuristics.upgma import upgmm

        tree = upgmm(dataset.matrix)
        support = bootstrap_support(
            tree, dataset.sequences, n_replicates=5, seed=10, builder=upgmm
        )
        assert set(support) == clades(tree)

    def test_leaf_mismatch_rejected(self, dataset):
        from repro.tree.ultrametric import UltrametricTree

        wrong = UltrametricTree.join(
            UltrametricTree.leaf("x"), UltrametricTree.leaf("y"), 1.0
        )
        with pytest.raises(ValueError):
            bootstrap_support(wrong, dataset.sequences, n_replicates=2)
