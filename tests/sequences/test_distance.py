"""Tests for pairwise sequence distances."""

import math

import pytest

from repro.sequences.distance import (
    distance_matrix_from_sequences,
    edit_distance,
    jukes_cantor_distance,
    p_distance,
)


class TestPDistance:
    def test_identical(self):
        assert p_distance("ACGT", "ACGT") == 0.0

    def test_all_different(self):
        assert p_distance("AAAA", "CCCC") == 1.0

    def test_fraction(self):
        assert p_distance("AACC", "AACG") == 0.25

    def test_count_mode(self):
        assert p_distance("AACC", "AACG", normalized=False) == 1.0

    def test_empty(self):
        assert p_distance("", "") == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            p_distance("ACG", "AC")

    def test_symmetry(self):
        assert p_distance("ACGT", "TGCA") == p_distance("TGCA", "ACGT")

    def test_triangle_inequality(self):
        a, b, c = "AAAA", "AACC", "CCCC"
        assert p_distance(a, c) <= p_distance(a, b) + p_distance(b, c)


class TestJukesCantor:
    def test_zero_for_identical(self):
        assert jukes_cantor_distance("ACGT", "ACGT") == 0.0

    def test_exceeds_p_distance(self):
        # Correction inflates distances (multiple hits).
        a, b = "AAAAAAAA", "AACCAAAA"
        assert jukes_cantor_distance(a, b) > p_distance(a, b)

    def test_known_value(self):
        # p = 0.25 -> d = -3/4 ln(1 - 1/3).
        a, b = "AAAA", "AAAC"
        assert jukes_cantor_distance(a, b) == pytest.approx(
            -0.75 * math.log(1 - 4 * 0.25 / 3)
        )

    def test_saturation_clamped(self):
        # p = 1 would diverge; clamp keeps it finite.
        assert math.isfinite(jukes_cantor_distance("AAAA", "CCCC"))


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("ACGT", "ACGT") == 0

    def test_single_substitution(self):
        assert edit_distance("ACGT", "ACCT") == 1

    def test_insertion(self):
        assert edit_distance("ACGT", "ACGGT") == 1

    def test_deletion(self):
        assert edit_distance("ACGT", "ACT") == 1

    def test_empty_vs_sequence(self):
        assert edit_distance("", "ACGT") == 4
        assert edit_distance("ACGT", "") == 4

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_banded_matches_full_when_band_sufficient(self):
        a, b = "ACGTACGTAC", "ACGTCCGTAA"
        full = edit_distance(a, b)
        assert edit_distance(a, b, band=5) == full

    def test_band_auto_widens_for_length_gap(self):
        assert edit_distance("AAAA", "AAAAAAAA", band=1) == 4

    def test_symmetry(self):
        assert edit_distance("ACGGT", "AGGT") == edit_distance("AGGT", "ACGGT")


class TestDistanceMatrixFromSequences:
    SEQS = {
        "a": "AAAAAAAAAA",
        "b": "AAAAAAAACC",
        "c": "CCCCCCCCCC",
    }

    def test_p_count_default(self):
        m = distance_matrix_from_sequences(self.SEQS)
        assert m["a", "b"] == 2.0
        assert m["a", "c"] == 10.0

    def test_metric_guaranteed(self):
        m = distance_matrix_from_sequences(self.SEQS, method="jukes-cantor")
        assert m.is_metric()

    def test_scale(self):
        m = distance_matrix_from_sequences(self.SEQS, method="p", scale=100)
        assert m["a", "b"] == pytest.approx(20.0)

    def test_order_respected(self):
        m = distance_matrix_from_sequences(self.SEQS, order=["c", "a", "b"])
        assert m.labels == ["c", "a", "b"]

    def test_default_order_sorted(self):
        m = distance_matrix_from_sequences(self.SEQS)
        assert m.labels == ["a", "b", "c"]

    def test_edit_method(self):
        m = distance_matrix_from_sequences(
            {"a": "ACGT", "b": "ACG"}, method="edit"
        )
        assert m["a", "b"] == 1.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            distance_matrix_from_sequences(self.SEQS, method="hamming2")

    def test_missing_sequence_rejected(self):
        with pytest.raises(KeyError):
            distance_matrix_from_sequences(self.SEQS, order=["a", "zzz"])
