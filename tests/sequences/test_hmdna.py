"""Tests for the synthetic HMDNA datasets."""


from repro.graph.compact_sets import find_compact_sets
from repro.sequences.hmdna import generate_hmdna_dataset, hmdna_matrices
from repro.tree.checks import is_valid_ultrametric_tree


class TestGenerateHmdna:
    def test_species_count(self):
        d = generate_hmdna_dataset(12, seed=0)
        assert d.n_species == 12
        assert d.matrix.n == 12

    def test_sequences_match_labels(self):
        d = generate_hmdna_dataset(10, seed=1)
        assert set(d.sequences) == set(d.matrix.labels)

    def test_matrix_is_metric(self):
        for seed in range(3):
            d = generate_hmdna_dataset(10, seed=seed)
            assert d.matrix.is_metric()

    def test_true_tree_valid(self):
        d = generate_hmdna_dataset(10, seed=2)
        assert is_valid_ultrametric_tree(d.true_tree)
        assert set(d.true_tree.leaf_labels) == set(d.matrix.labels)

    def test_deterministic(self):
        a = generate_hmdna_dataset(8, seed=3)
        b = generate_hmdna_dataset(8, seed=3)
        assert (a.matrix.values == b.matrix.values).all()

    def test_haplogroup_structure_present(self):
        """The cluster signal that makes compact sets useful on HMDNA."""
        with_structure = 0
        for seed in range(5):
            d = generate_hmdna_dataset(16, seed=seed)
            if len(find_compact_sets(d.matrix)) >= 2:
                with_structure += 1
        assert with_structure >= 3

    def test_sequence_length_option(self):
        d = generate_hmdna_dataset(6, seed=4, sequence_length=123)
        assert all(len(s) == 123 for s in d.sequences.values())

    def test_distance_method_option(self):
        d = generate_hmdna_dataset(6, seed=5, method="jukes-cantor")
        assert d.matrix.is_metric()

    def test_name(self):
        d = generate_hmdna_dataset(6, seed=6, name="xyz")
        assert d.name == "xyz"


class TestHmdnaMatrices:
    def test_batch_counts(self):
        batch = hmdna_matrices(8, 4, seed=0)
        assert len(batch) == 4
        assert all(d.n_species == 8 for d in batch)

    def test_batch_instances_differ(self):
        batch = hmdna_matrices(8, 2, seed=1)
        assert not (batch[0].matrix.values == batch[1].matrix.values).all()

    def test_batch_deterministic(self):
        a = hmdna_matrices(6, 2, seed=2)
        b = hmdna_matrices(6, 2, seed=2)
        assert (a[0].matrix.values == b[0].matrix.values).all()
        assert (a[1].matrix.values == b[1].matrix.values).all()

    def test_names_enumerated(self):
        batch = hmdna_matrices(6, 3, seed=3)
        assert batch[0].name != batch[1].name != batch[2].name
