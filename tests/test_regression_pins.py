"""Regression pins: exact values for fixed seeds.

These tests freeze concrete numbers produced by the current
implementation on seeded workloads.  They are deliberately brittle: any
change to a generator, a bound, the search order, or the simulator's
cost model that alters results will trip one of them, forcing the
change to be conscious.

The optimal-*cost* pins (seed-42 matrices, the fig. 8 matrix, the HMDNA
workload) now live as data in ``tests/data/seed_campaign.json`` and are
enforced by ``tests/campaign/test_seed_campaign.py``, which diffs a
fresh campaign of the builtin ``pins`` suite against that checked-in
export.  What remains here are the pins campaigns don't carry: search
effort under ablated bounds, simulator makespans, and compact-set
structure.
"""

import pytest

from repro.bnb.sequential import exact_mut
from repro.graph.compact_sets import find_compact_sets
from repro.matrix.generators import hierarchical_matrix, random_metric_matrix
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound


class TestSearchEffortPins:
    def test_node_counts_seed42(self):
        # 12: 287 -> 258 when the vectorised UPGMM (PR 1) changed its
        # deterministic tie-break and found a cheaper seed upper bound.
        expected = {12: 258, 14: 2635, 16: 5203}
        for n, nodes in expected.items():
            m = random_metric_matrix(n, seed=42)
            assert exact_mut(m).stats.nodes_expanded == nodes, n

    def test_bound_ablation_counts(self):
        m = random_metric_matrix(11, seed=42)
        assert exact_mut(m, lower_bound="trivial").stats.nodes_expanded == 6487
        assert exact_mut(m, lower_bound="minlink").stats.nodes_expanded == 374
        assert exact_mut(m, lower_bound="minfront").stats.nodes_expanded == 212


class TestSimulatorPins:
    def test_makespans_seed42_n16(self):
        m = random_metric_matrix(16, seed=42)
        # 16: 73564 -> 76705 when the master pre-branch switched to a
        # heap (PR 1); tie order among equal lower bounds changed.
        expected = {1: 1053770.0, 2: 513893.0, 16: 76705.0}
        for p, makespan in expected.items():
            result = ParallelBranchAndBound(ClusterConfig(n_workers=p)).solve(m)
            assert result.makespan == pytest.approx(makespan), p

    def test_superlinear_pin(self):
        m = random_metric_matrix(16, seed=42)
        r1 = ParallelBranchAndBound(ClusterConfig(n_workers=1)).solve(m)
        r2 = ParallelBranchAndBound(ClusterConfig(n_workers=2)).solve(m)
        assert r1.makespan / r2.makespan > 2.0  # the pinned anomaly


class TestStructurePins:
    def test_paper_example_compact_sets(self, paper_example):
        named = [
            tuple(sorted(paper_example.labels[i] for i in s))
            for s in find_compact_sets(paper_example)
        ]
        assert named == [
            ("1", "3"),
            ("4", "6"),
            ("1", "2", "3"),
            ("1", "2", "3", "5"),
        ]

    def test_hierarchical_structure_count(self):
        m = hierarchical_matrix([[3, 2], [4]], seed=2)
        assert len(find_compact_sets(m)) == 7
