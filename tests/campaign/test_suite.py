"""Suite specs: determinism, case ids, sources, validation."""

import json

import pytest

from repro.campaign.suite import BUILTIN_SUITES, Suite, SuiteError, load_suite
from repro.matrix.generators import clustered_matrix
from repro.matrix.io import write_phylip


SPEC = {
    "name": "demo",
    "seed": 7,
    "methods": ["bnb", "upgmm"],
    "cases": [
        {"kind": "generated", "families": ["random-int"], "sizes": [5, 6],
         "count": 2},
    ],
}


class TestSpec:
    def test_from_spec_roundtrip(self):
        suite = Suite.from_spec(SPEC)
        assert suite.name == "demo"
        assert suite.seed == 7
        assert suite.methods == ("bnb", "upgmm")
        assert json.loads(suite.spec_json()) == suite.spec()

    def test_unknown_key_rejected(self):
        with pytest.raises(SuiteError, match="unknown suite spec keys"):
            Suite.from_spec({**SPEC, "bogus": 1})

    def test_unknown_method_rejected(self):
        with pytest.raises(SuiteError, match="unknown methods"):
            Suite.from_spec({**SPEC, "methods": ["nope"]})

    def test_needs_sources(self):
        with pytest.raises(SuiteError, match="case source"):
            Suite.from_spec({**SPEC, "cases": []})

    def test_unknown_source_kind(self):
        with pytest.raises(SuiteError, match="unknown case source kind"):
            Suite.from_spec(
                {**SPEC, "cases": [{"kind": "nope"}]}
            ).cases()


class TestMaterialisation:
    def test_case_count_and_ids(self):
        cases = Suite.from_spec(SPEC).cases()
        # 1 family x 2 sizes x 2 replicates x 2 methods
        assert len(cases) == 8
        ids = {c.id for c in cases}
        assert len(ids) == 8
        assert "gen/random-int/n5/0@bnb" in ids
        assert "gen/random-int/n6/1@upgmm" in ids

    def test_matrices_deterministic(self):
        a = Suite.from_spec(SPEC).cases()
        b = Suite.from_spec(SPEC).cases()
        assert [c.id for c in a] == [c.id for c in b]
        assert all(
            x.matrix.digest() == y.matrix.digest() for x, y in zip(a, b)
        )

    def test_matrix_independent_of_other_sources(self):
        # Adding another source must not change existing cases' matrices
        # (per-case RNG is seeded from the spec coordinates alone).
        base = {c.id: c.matrix.digest() for c in Suite.from_spec(SPEC).cases()}
        widened = Suite.from_spec({
            **SPEC,
            "cases": SPEC["cases"] + [
                {"kind": "random", "sizes": [8], "seed": 3}
            ],
        })
        wide = {c.id: c.matrix.digest() for c in widened.cases()}
        for case_id, digest in base.items():
            assert wide[case_id] == digest

    def test_seed_changes_matrices(self):
        a = Suite.from_spec(SPEC).cases()
        b = Suite.from_spec({**SPEC, "seed": 8}).cases()
        assert [c.id for c in a] == [c.id for c in b]
        assert any(
            x.matrix.digest() != y.matrix.digest() for x, y in zip(a, b)
        )

    def test_method_override(self):
        cases = Suite.from_spec(SPEC).cases(methods=["compact"])
        assert {c.method for c in cases} == {"compact"}
        with pytest.raises(SuiteError, match="unknown methods"):
            Suite.from_spec(SPEC).cases(methods=["nope"])

    def test_glob_source(self, tmp_path):
        for i in range(2):
            write_phylip(
                clustered_matrix([3, 3], seed=i), tmp_path / f"m{i}.phy"
            )
        suite = Suite.from_spec({
            "name": "files",
            "methods": ["upgmm"],
            "cases": [{"kind": "glob", "pattern": str(tmp_path / "*.phy")}],
        })
        cases = suite.cases()
        assert [c.id for c in cases] == [
            "file/m0.phy@upgmm", "file/m1.phy@upgmm"
        ]

    def test_glob_no_match(self, tmp_path):
        suite = Suite.from_spec({
            "name": "files",
            "methods": ["upgmm"],
            "cases": [{"kind": "glob", "pattern": str(tmp_path / "*.phy")}],
        })
        with pytest.raises(SuiteError, match="matched no files"):
            suite.cases()

    def test_random_and_hierarchical_sources(self):
        suite = Suite.from_spec({
            "name": "mixed",
            "methods": ["upgmm"],
            "cases": [
                {"kind": "random", "sizes": [6], "seed": 42},
                {"kind": "hierarchical", "spec": [3, 3], "seed": 1,
                 "jitter": 0.2},
            ],
        })
        cases = suite.cases()
        assert len(cases) == 2
        assert cases[0].id == "random/n6/s42@upgmm"
        assert cases[1].id.startswith("hier/")
        assert cases[1].matrix.n == 6


class TestLoadSuite:
    def test_builtin_names(self):
        for name in BUILTIN_SUITES:
            suite = load_suite(name)
            assert suite.name == name

    def test_smoke_shape(self):
        assert len(load_suite("smoke").cases()) == 8

    def test_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(json.dumps(SPEC))
        assert load_suite(str(path)).name == "demo"

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("{nope")
        with pytest.raises(SuiteError, match="unreadable suite spec"):
            load_suite(str(path))

    def test_unknown_name(self):
        with pytest.raises(SuiteError, match="no builtin suite"):
            load_suite("definitely-not-a-suite")

    def test_mapping_passthrough(self):
        assert load_suite(SPEC).name == "demo"
