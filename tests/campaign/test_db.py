"""CampaignDB: upserts, schema guard, export/import, fuzz archive."""

import json
import sqlite3

import pytest

from repro.campaign.db import CampaignDB, CampaignExists, DB_SCHEMA_VERSION

FP = {
    "version": "1.0.0",
    "cache_key_version": 2,
    "trace_schema": 1,
    "git_sha": "abc123",
}


@pytest.fixture
def db(tmp_path):
    with CampaignDB(tmp_path / "c.sqlite") as handle:
        yield handle


def _campaign(db, name="camp"):
    return db.create_campaign(
        name,
        suite="demo",
        suite_spec='{"name": "demo"}',
        seed=0,
        backend="thread",
        hostname="host",
        fingerprint=FP,
    )


class TestCampaigns:
    def test_create_and_get(self, db):
        campaign_id = _campaign(db)
        row = db.get_campaign("camp")
        assert row["id"] == campaign_id
        assert row["status"] == "running"
        assert row["engine_version"] == "1.0.0"
        assert row["cache_key_version"] == 2
        assert json.loads(row["fingerprint"]) == FP

    def test_duplicate_name_refused(self, db):
        _campaign(db)
        with pytest.raises(CampaignExists):
            _campaign(db)

    def test_mark_status_and_resume(self, db):
        campaign_id = _campaign(db)
        db.mark_status(campaign_id, "interrupted")
        assert db.get_campaign("camp")["status"] == "interrupted"
        db.mark_resumed(campaign_id, {**FP, "git_sha": "def456"}, "process")
        row = db.get_campaign("camp")
        assert row["status"] == "running"
        assert row["resumes"] == 1
        assert row["git_sha"] == "def456"
        assert row["backend"] == "process"

    def test_list(self, db):
        _campaign(db, "a")
        _campaign(db, "b")
        assert [c["name"] for c in db.list_campaigns()] == ["a", "b"]


class TestCases:
    def test_upsert_is_idempotent(self, db):
        campaign_id = _campaign(db)
        for cost in (3.0, 2.0, 1.0):
            db.upsert_case(campaign_id, "case-1", method="bnb",
                           state="done", cost=cost)
        rows = db.case_rows(campaign_id)
        assert len(rows) == 1
        assert rows[0]["cost"] == 1.0
        assert rows[0]["state"] == "done"

    def test_unknown_column_rejected(self, db):
        campaign_id = _campaign(db)
        with pytest.raises(ValueError, match="unknown case columns"):
            db.upsert_case(campaign_id, "case-1", method="bnb",
                           state="done", bogus=1)

    def test_state_queries(self, db):
        campaign_id = _campaign(db)
        db.upsert_case(campaign_id, "a", method="bnb", state="done")
        db.upsert_case(campaign_id, "b", method="bnb", state="failed")
        db.upsert_case(campaign_id, "c", method="bnb", state="done")
        assert db.state_counts(campaign_id) == {"done": 2, "failed": 1}
        assert db.case_ids_in_state(campaign_id, ("done",)) == {"a", "c"}
        assert db.case_ids_in_state(campaign_id, ()) == set()

    def test_cases_scoped_per_campaign(self, db):
        a = _campaign(db, "a")
        b = _campaign(db, "b")
        db.upsert_case(a, "x", method="bnb", state="done")
        db.upsert_case(b, "x", method="bnb", state="failed")
        assert db.state_counts(a) == {"done": 1}
        assert db.state_counts(b) == {"failed": 1}


class TestSchemaGuard:
    def test_refuses_other_schema_version(self, tmp_path):
        path = tmp_path / "old.sqlite"
        CampaignDB(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE db_meta SET value=? WHERE key='schema_version'",
            (str(DB_SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="schema v"):
            CampaignDB(path)

    def test_reopen_same_version_ok(self, tmp_path):
        path = tmp_path / "c.sqlite"
        CampaignDB(path).close()
        CampaignDB(path).close()


class TestExportImport:
    def test_roundtrip(self, db):
        campaign_id = _campaign(db)
        db.upsert_case(campaign_id, "a", method="bnb", state="done",
                       cost=10.0, matrix_digest="d1")
        db.mark_status(campaign_id, "completed")
        export = db.export_campaign("camp")
        assert export["format"] == "repro.campaign.export.v1"
        # JSON-serialisable end to end (the checked-in pin format).
        export = json.loads(json.dumps(export))
        imported_id = db.import_export(export, name="camp-seed")
        assert db.get_campaign("camp-seed")["status"] == "completed"
        rows = db.case_rows(imported_id)
        assert len(rows) == 1
        assert rows[0]["cost"] == 10.0
        assert rows[0]["matrix_digest"] == "d1"

    def test_unknown_campaign(self, db):
        with pytest.raises(KeyError):
            db.export_campaign("nope")

    def test_bad_format_rejected(self, db):
        with pytest.raises(ValueError, match="not a campaign export"):
            db.import_export({"format": "something-else"})


class TestFuzzArchive:
    def test_archive_idempotent(self, db):
        for _ in range(2):
            db.archive_fuzz_failure(
                master_seed=3,
                iteration=17,
                matrix_digest="deadbeef",
                family="random-int",
                n_species=8,
                shrunk_n_species=5,
                corpus_path="corpus/fail.phy",
                violations=[{"kind": "cost-mismatch"}],
                fingerprint=FP,
            )
        failures = db.fuzz_failures()
        assert len(failures) == 1
        row = failures[0]
        assert row["master_seed"] == 3
        assert row["engine_version"] == "1.0.0"
        assert json.loads(row["violations"]) == [{"kind": "cost-mismatch"}]
