"""run_campaign: persistence, resume, interruption, observability."""

import json
import threading

import pytest

from repro.campaign.db import CampaignDB
from repro.campaign.runner import CampaignMismatch, run_campaign
from repro.campaign.suite import Suite
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, SpanEvent

SPEC = {
    "name": "runner-demo",
    "seed": 3,
    "methods": ["bnb", "upgmm"],
    "cases": [
        {"kind": "generated", "families": ["random-int"], "sizes": [5, 6],
         "count": 2},
    ],
}


@pytest.fixture
def suite():
    return Suite.from_spec(SPEC)


@pytest.fixture
def db(tmp_path):
    with CampaignDB(tmp_path / "c.sqlite") as handle:
        yield handle


class TestHappyPath:
    def test_full_run(self, db, suite):
        result = run_campaign(db, suite, workers=2)
        assert result.ok
        assert result.status == "completed"
        assert result.executed == 8
        assert result.skipped == 0
        assert result.state_counts == {"done": 8}
        rows = db.case_rows(result.campaign_id)
        assert len(rows) == 8
        for row in rows:
            assert row["state"] == "done"
            assert row["cost"] is not None
            assert row["newick"].endswith(";")
            assert row["matrix_digest"]
            assert row["cache_key"]
            assert row["verified_ok"] == 1
            assert row["wall_seconds"] is not None

    def test_bnb_rollups_persisted(self, db, suite):
        result = run_campaign(db, suite, workers=2)
        bnb_rows = [
            r for r in db.case_rows(result.campaign_id)
            if r["method"] == "bnb" and r["cache_status"] == "miss"
        ]
        assert bnb_rows
        for row in bnb_rows:
            spans = json.loads(row["spans"])
            assert "service.job" in spans
            assert "bnb.solve" in spans
            assert row["solve_seconds"] is not None
            assert row["nodes_expanded"] is not None

    def test_spans_and_metrics_emitted(self, db, suite):
        rec = Recorder()
        metrics = MetricsRegistry()
        result = run_campaign(db, suite, workers=2, recorder=rec,
                              metrics=metrics)
        case_spans = [
            e for e in rec.events
            if isinstance(e, SpanEvent) and e.name == "campaign.case"
        ]
        assert len(case_spans) == 8
        assert all(s.attrs["includes_queue_wait"] for s in case_spans)
        assert all(s.attrs["state"] == "done" for s in case_spans)
        rendered = metrics.render_prometheus()
        assert 'campaign_cases_total{state="done"} 8' in rendered
        assert result.ok

    def test_verify_false_leaves_verdict_null(self, db, suite):
        result = run_campaign(db, suite, workers=2, verify=False)
        for row in db.case_rows(result.campaign_id):
            assert row["verified_ok"] is None

    def test_path_accepted_for_db(self, tmp_path, suite):
        path = str(tmp_path / "by-path.sqlite")
        result = run_campaign(path, suite, workers=2)
        assert result.ok
        with CampaignDB(path) as db:
            assert len(db.case_rows(result.campaign_id)) == 8


class TestResume:
    def test_stop_after_then_resume(self, db, suite):
        first = run_campaign(db, suite, workers=1, stop_after=3)
        assert first.interrupted
        assert first.status == "interrupted"
        assert first.executed == 3
        assert db.get_campaign("runner-demo")["status"] == "interrupted"

        second = run_campaign(db, suite, workers=1)
        assert not second.interrupted
        assert second.status == "completed"
        assert second.skipped == 3
        assert second.executed == 5
        # Exactly one row per case, all done, after the two halves.
        rows = db.case_rows(second.campaign_id)
        assert len(rows) == 8
        assert len({r["case_id"] for r in rows}) == 8
        assert all(r["state"] == "done" for r in rows)
        assert db.get_campaign("runner-demo")["resumes"] == 1

    def test_stop_event_drains(self, db, suite):
        stop = threading.Event()
        stop.set()  # armed before the first submission
        result = run_campaign(db, suite, workers=1, stop=stop)
        assert result.interrupted
        assert result.executed == 0
        resumed = run_campaign(db, suite, workers=2)
        assert resumed.status == "completed"
        assert resumed.executed == 8

    def test_completed_campaign_reruns_as_noop(self, db, suite):
        run_campaign(db, suite, workers=2)
        again = run_campaign(db, suite, workers=2)
        assert again.status == "completed"
        assert again.executed == 0
        assert again.skipped == 8
        assert len(db.case_rows(again.campaign_id)) == 8

    def test_hundred_case_half_interrupt_resume(self, db):
        """The acceptance bar: a 100-case suite interrupted at ~50%
        resumes to completion with exactly one row per case."""
        big = Suite.from_spec({
            "name": "hundred",
            "seed": 11,
            "methods": ["upgmm", "nj"],
            "cases": [
                {"kind": "generated", "families": ["random-int"],
                 "sizes": [5, 6], "count": 25},
            ],
        })
        assert len(big.cases()) == 100
        first = run_campaign(db, big, workers=2, stop_after=50,
                             verify=False)
        assert first.interrupted
        # stop_after counts submitted work, so the drained total may
        # exceed it slightly; it must sit near the midpoint.
        assert 50 <= first.executed < 60
        second = run_campaign(db, big, workers=2, verify=False)
        assert second.status == "completed"
        assert second.skipped == first.executed
        assert second.executed == 100 - first.executed
        rows = db.case_rows(second.campaign_id)
        assert len(rows) == 100
        assert len({r["case_id"] for r in rows}) == 100
        assert all(r["state"] == "done" for r in rows)

    def test_spec_mismatch_refused(self, db, suite):
        run_campaign(db, suite, workers=2, stop_after=1)
        other = Suite.from_spec({**SPEC, "seed": 99})
        with pytest.raises(CampaignMismatch):
            run_campaign(db, other, workers=2)

    def test_same_suite_different_names_coexist(self, db, suite):
        a = run_campaign(db, suite, name="a", workers=2)
        b = run_campaign(db, suite, name="b", workers=2)
        assert a.campaign_id != b.campaign_id
        assert len(db.case_rows(a.campaign_id)) == 8
        assert len(db.case_rows(b.campaign_id)) == 8


class TestFailurePersistence:
    def test_failed_case_recorded_and_retried(self, db):
        # A near-zero deadline on an exact solve is the simplest honest
        # failure the scheduler can produce deterministically.
        suite = Suite.from_spec({
            "name": "timeouts",
            "methods": ["bnb"],
            "cases": [{"kind": "random", "sizes": [13], "seed": 5}],
        })
        first = run_campaign(db, suite, workers=1, job_timeout=1e-9,
                             verify=False)
        assert first.status == "completed"
        assert not first.ok
        rows = db.case_rows(first.campaign_id)
        assert len(rows) == 1
        assert rows[0]["state"] == "timeout"
        # Timeout rows are not skipped on resume: the case retries and
        # its single row is replaced in place.
        second = run_campaign(db, suite, workers=1, verify=False)
        assert second.executed == 1
        rows = db.case_rows(second.campaign_id)
        assert len(rows) == 1
        assert rows[0]["state"] == "done"
