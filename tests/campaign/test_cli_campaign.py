"""The ``repro-mut campaign`` command group, including SIGTERM resume."""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

SPEC = {
    "name": "cli-demo",
    "seed": 1,
    "methods": ["upgmm"],
    "cases": [
        {"kind": "generated", "families": ["random-int"], "sizes": [5, 6],
         "count": 2},
    ],
}


@pytest.fixture
def suite_file(tmp_path):
    path = tmp_path / "suite.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


class TestRun:
    def test_run_and_status_and_list(self, suite_file, db_path, capsys):
        assert main(["campaign", "run", suite_file, "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "status   : completed" in out
        assert main(["campaign", "status", "cli-demo", "--db", db_path]) == 0
        out = capsys.readouterr().out
        assert "done=4" in out
        assert main(["campaign", "list", "--db", db_path]) == 0
        assert "cli-demo: completed, 4/4 done" in capsys.readouterr().out

    def test_run_json(self, suite_file, db_path, capsys):
        assert main([
            "campaign", "run", suite_file, "--db", db_path, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["state_counts"] == {"done": 4}

    def test_builtin_suite_name(self, db_path, capsys):
        assert main([
            "campaign", "run", "smoke", "--db", db_path,
            "--backend", "thread",
        ]) == 0
        assert "8 total" in capsys.readouterr().out

    def test_unknown_suite_exits_2(self, db_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "run", "no-such-suite", "--db", db_path])
        assert excinfo.value.code == 2

    def test_stop_after_exits_3_then_resume(self, suite_file, db_path,
                                            capsys):
        assert main([
            "campaign", "run", suite_file, "--db", db_path,
            "--stop-after", "2", "--workers", "1",
        ]) == 3
        assert main(["campaign", "run", suite_file, "--db", db_path]) == 0
        payload_args = ["campaign", "status", "cli-demo", "--db", db_path,
                        "--json"]
        capsys.readouterr()
        assert main(payload_args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state_counts"] == {"done": 4}

    def test_methods_override(self, suite_file, db_path, capsys):
        assert main([
            "campaign", "run", suite_file, "--db", db_path,
            "--methods", "bnb", "--name", "exact-pass",
        ]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "status", "exact-pass", "--db", db_path, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state_counts"] == {"done": 4}

    def test_trace_out(self, suite_file, db_path, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "campaign", "run", suite_file, "--db", db_path,
            "--trace-out", str(trace),
        ]) == 0
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert lines[0]["event"] == "meta"
        assert "engine" in lines[0]
        assert any(l.get("name") == "campaign.case" for l in lines)


class TestDiffAndExport:
    def test_self_diff_exits_0(self, suite_file, db_path, capsys):
        main(["campaign", "run", suite_file, "--db", db_path])
        main(["campaign", "run", suite_file, "--db", db_path,
              "--name", "again"])
        assert main([
            "campaign", "diff", "cli-demo", "again", "--db", db_path,
        ]) == 0
        assert "OK" in capsys.readouterr().out

    def test_diff_regression_exits_1(self, suite_file, db_path, capsys):
        main(["campaign", "run", suite_file, "--db", db_path,
              "--methods", "bnb"])
        main(["campaign", "run", suite_file, "--db", db_path,
              "--methods", "bnb", "--name", "tampered"])
        conn = sqlite3.connect(db_path)
        conn.execute(
            "UPDATE cases SET cost = cost + 1 WHERE campaign_id ="
            " (SELECT id FROM campaigns WHERE name='tampered')"
        )
        conn.commit()
        conn.close()
        assert main([
            "campaign", "diff", "cli-demo", "tampered", "--db", db_path,
        ]) == 1
        assert "EXACT COST CHANGE" in capsys.readouterr().out

    def test_diff_unknown_campaign_exits_2(self, suite_file, db_path):
        main(["campaign", "run", suite_file, "--db", db_path])
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "diff", "cli-demo", "nope", "--db", db_path])
        assert excinfo.value.code == 2

    def test_export(self, suite_file, db_path, tmp_path, capsys):
        main(["campaign", "run", suite_file, "--db", db_path])
        out = tmp_path / "export.json"
        assert main([
            "campaign", "export", "cli-demo", "--db", db_path,
            "--out", str(out),
        ]) == 0
        export = json.loads(out.read_text())
        assert export["format"] == "repro.campaign.export.v1"
        assert len(export["cases"]) == 4


class TestTrend:
    def test_trend_markdown_and_json(self, suite_file, db_path, capsys):
        main(["campaign", "run", suite_file, "--db", db_path])
        main(["campaign", "run", suite_file, "--db", db_path,
              "--name", "again"])
        assert main([
            "campaign", "trend", "cli-demo", "again", "--db", db_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "# campaign trend: cli-demo -> again" in out
        assert "## per-case wall seconds" in out
        assert main([
            "campaign", "trend", "cli-demo", "again", "--db", db_path,
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "cli-demo"
        assert len(payload["cases"]) == 4
        assert payload["wall_geomean"][0] == 1.0

    def test_trend_unknown_campaign_exits_2(self, suite_file, db_path):
        main(["campaign", "run", suite_file, "--db", db_path])
        with pytest.raises(SystemExit) as excinfo:
            main(["campaign", "trend", "cli-demo", "nope", "--db", db_path])
        assert excinfo.value.code == 2


class TestFuzzArchive:
    def test_clean_fuzz_leaves_archive_empty(self, db_path, tmp_path,
                                             capsys):
        assert main([
            "fuzz", "--seed", "0", "--budget", "3", "--methods",
            "bnb,upgmm", "--max-species", "5",
            "--corpus", str(tmp_path / "corpus"), "--db", db_path,
        ]) == 0
        # A clean run archives nothing (and never even creates the db).
        if Path(db_path).exists():
            conn = sqlite3.connect(db_path)
            count = conn.execute(
                "SELECT COUNT(*) FROM fuzz_failures"
            ).fetchone()[0]
            conn.close()
            assert count == 0

    def test_failures_archived_with_fingerprint(self, db_path, tmp_path,
                                                capsys, monkeypatch):
        import repro.verify.fuzz as fuzz_mod
        from repro.matrix.generators import clustered_matrix
        from repro.verify.oracles import Violation

        matrix = clustered_matrix([3, 3], seed=4)
        failure = fuzz_mod.FuzzFailure(
            iteration=5,
            family="random-int",
            n_species=6,
            violations=[Violation("cost-mismatch", "planted")],
            matrix=matrix,
            shrunk_n_species=6,
            corpus_path="corpus/fail.phy",
            meta_path="corpus/fail.json",
            repro_command="repro-mut verify corpus/fail.phy",
        )

        def fake_run_fuzz(**kwargs):
            return fuzz_mod.FuzzReport(
                seed=9, budget=3, cases_run=3,
                families={"random-int": 3}, failures=[failure],
            )

        monkeypatch.setattr(fuzz_mod, "run_fuzz", fake_run_fuzz)
        assert main([
            "fuzz", "--seed", "9", "--budget", "3",
            "--corpus", str(tmp_path / "corpus"), "--db", db_path,
        ]) == 1
        conn = sqlite3.connect(db_path)
        conn.row_factory = sqlite3.Row
        rows = conn.execute("SELECT * FROM fuzz_failures").fetchall()
        conn.close()
        assert len(rows) == 1
        row = rows[0]
        assert row["master_seed"] == 9
        assert row["matrix_digest"] == matrix.digest()
        assert row["engine_version"] == repro.__version__
        assert json.loads(row["fingerprint"])["cache_key_version"] == 2


class TestSigtermResume:
    def test_sigterm_drains_then_resume_completes(self, tmp_path):
        """Kill a running campaign with SIGTERM mid-flight; the process
        must drain, mark the campaign interrupted (exit 3), and a re-run
        must finish every case with exactly one row per case."""
        spec = {
            "name": "sigterm-demo",
            "seed": 2,
            "methods": ["upgmm"],
            "cases": [
                {"kind": "generated", "families": ["random-int"],
                 "sizes": [5, 6], "count": 10},
            ],
        }
        suite_file = tmp_path / "suite.json"
        suite_file.write_text(json.dumps(spec))
        db_path = tmp_path / "campaigns.sqlite"
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "campaign", "run",
             str(suite_file), "--db", str(db_path), "--workers", "1",
             "--throttle", "0.05", "--backend", "thread"],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # WAL mode lets us poll progress while the runner writes.
            deadline = time.time() + 60.0
            settled = 0
            while time.time() < deadline:
                if db_path.exists():
                    try:
                        conn = sqlite3.connect(str(db_path), timeout=5.0)
                        settled = conn.execute(
                            "SELECT COUNT(*) FROM cases"
                        ).fetchone()[0]
                        conn.close()
                    except sqlite3.Error:
                        settled = 0
                if settled >= 4:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.02)
            assert settled >= 4, "campaign never made progress"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 3, (stdout, stderr)
        assert "draining" in stderr

        conn = sqlite3.connect(str(db_path))
        rows = conn.execute(
            "SELECT case_id, state FROM cases"
        ).fetchall()
        status = conn.execute(
            "SELECT status FROM campaigns WHERE name='sigterm-demo'"
        ).fetchone()[0]
        conn.close()
        assert status == "interrupted"
        assert 0 < len(rows) < 20
        assert all(state == "done" for _, state in rows)

        # Resume in-process: completes, skips the done half, and leaves
        # exactly one row per case.
        done_before = len(rows)
        code = main([
            "campaign", "run", str(suite_file), "--db", str(db_path),
            "--json",
        ])
        assert code == 0
        conn = sqlite3.connect(str(db_path))
        case_ids = [r[0] for r in conn.execute(
            "SELECT case_id FROM cases"
        ).fetchall()]
        conn.close()
        assert len(case_ids) == 20
        assert len(set(case_ids)) == 20
        assert done_before < 20  # the resume actually had work to do
