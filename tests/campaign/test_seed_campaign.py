"""The checked-in seed campaign: the regression pins, as data.

``tests/data/seed_campaign.json`` is a stripped export of the builtin
``pins`` suite run by a known-good engine.  This test re-runs the same
suite with the current engine and diffs the fresh campaign against the
seed: any exact-optimum drift, verification regression or case-set
change fails.  This replaces the hand-maintained cost table that used
to live in ``tests/test_regression_pins.py`` -- regenerate the file
after a *conscious* generator/engine change with::

    repro-mut campaign run pins --db pins.sqlite
    repro-mut campaign export pins --db pins.sqlite --strip-volatile \
        --out tests/data/seed_campaign.json
"""

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignDB, diff_campaigns, load_suite, run_campaign

SEED_FILE = Path(__file__).resolve().parent.parent / "data" / "seed_campaign.json"


@pytest.fixture(scope="module")
def seed_export():
    return json.loads(SEED_FILE.read_text())


@pytest.fixture(scope="module")
def diff(tmp_path_factory, seed_export):
    db_path = tmp_path_factory.mktemp("seed-campaign") / "c.sqlite"
    with CampaignDB(db_path) as db:
        db.import_export(seed_export, name="seed")
        run_campaign(db, load_suite("pins"), name="fresh", workers=2,
                     verify=True)
        yield diff_campaigns(db, "seed", "fresh")


class TestSeedFile:
    def test_format_and_shape(self, seed_export):
        assert seed_export["format"] == "repro.campaign.export.v1"
        assert seed_export["campaign"]["suite"] == "pins"
        assert len(seed_export["cases"]) == 12
        # Stripped of run-to-run fields: nothing volatile checked in.
        for case in seed_export["cases"]:
            assert "wall_seconds" not in case
            assert "cache_status" not in case

    def test_known_pins_present(self, seed_export):
        costs = {
            c["case_id"]: c["cost"] for c in seed_export["cases"]
        }
        # The former TestOptimalCostPins table, now frozen as data.
        assert costs["random/n10/s42@bnb"] == pytest.approx(203.0)
        assert costs["random/n12/s42@bnb"] == pytest.approx(136.0)
        assert costs["random/n14/s42@bnb"] == pytest.approx(197.0)
        assert costs["random/n16/s42@bnb"] == pytest.approx(196.0)
        assert costs["hier/db08d7f8/s110@bnb"] == pytest.approx(
            56.6420578228095
        )
        assert costs["hier/db08d7f8/s110@compact"] == pytest.approx(
            57.40283480316444
        )


class TestFreshRunAgainstSeed:
    def test_generators_unchanged(self, diff):
        # Same case ids, same matrix digests: the seeded workloads are
        # byte-identical to what the seed engine solved.
        assert not diff.new_cases
        assert not diff.missing_cases
        assert not diff.input_changes
        assert diff.matched_cases == 12

    def test_no_exact_cost_drift(self, diff):
        assert not diff.exact_violations, diff.render()

    def test_no_regressions(self, diff):
        assert not diff.verification_regressions, diff.render()
        assert not diff.state_regressions, diff.render()
        assert diff.ok
