"""trend_campaigns: ordering, series alignment, geomean ratios, output."""

import json
import math

import pytest

from repro.campaign.db import CampaignDB
from repro.campaign.trend import trend_campaigns

FP_OLD = {"version": "1.0.0", "cache_key_version": 2, "trace_schema": 1,
          "git_sha": "old"}
FP_MID = {"version": "1.1.0", "cache_key_version": 2, "trace_schema": 1,
          "git_sha": "mid"}
FP_NEW = {"version": "1.2.0", "cache_key_version": 2, "trace_schema": 1,
          "git_sha": "new"}


@pytest.fixture
def db(tmp_path):
    with CampaignDB(tmp_path / "c.sqlite") as handle:
        yield handle


def _campaign(db, name, fingerprint, started_at, cases):
    campaign_id = db.create_campaign(
        name, suite="demo", suite_spec="{}", seed=0, backend="thread",
        hostname=None, fingerprint=fingerprint, started_at=started_at,
    )
    for case in cases:
        db.upsert_case(campaign_id, case.pop("case_id"), **case)
    db.mark_status(campaign_id, "completed")
    return campaign_id


def _case(case_id, wall, nodes=100, **overrides):
    base = {
        "case_id": case_id,
        "method": "bnb",
        "state": "done",
        "cost": 50.0,
        "wall_seconds": wall,
        "solve_seconds": wall * 0.8,
        "nodes_expanded": nodes,
    }
    base.update(overrides)
    return base


class TestOrderingAndSeries:
    def test_campaigns_sorted_oldest_first_regardless_of_argument_order(
        self, db
    ):
        _campaign(db, "newer", FP_NEW, 2000.0, [_case("x@bnb", 1.0)])
        _campaign(db, "older", FP_OLD, 1000.0, [_case("x@bnb", 2.0)])
        trend = trend_campaigns(db, ["newer", "older"])
        assert trend.campaigns == ["older", "newer"]
        assert trend.baseline == "older"

    def test_series_aligned_by_case_with_holes(self, db):
        _campaign(db, "a", FP_OLD, 1000.0,
                  [_case("x@bnb", 2.0), _case("y@bnb", 4.0)])
        _campaign(db, "b", FP_NEW, 2000.0, [_case("x@bnb", 1.0)])
        trend = trend_campaigns(db, ["a", "b"])
        by_id = {c.case_id: c for c in trend.cases}
        assert set(by_id) == {"x@bnb", "y@bnb"}
        assert by_id["x@bnb"].wall_seconds == [2.0, 1.0]
        assert by_id["y@bnb"].wall_seconds == [4.0, None]

    def test_unknown_name_and_too_few_names_raise(self, db):
        _campaign(db, "only", FP_OLD, 1000.0, [_case("x@bnb", 1.0)])
        with pytest.raises(KeyError, match="no campaign named"):
            trend_campaigns(db, ["only", "ghost"])
        with pytest.raises(KeyError, match="at least two"):
            trend_campaigns(db, ["only", "only"])


class TestGeomeans:
    def test_ratios_vs_oldest(self, db):
        _campaign(db, "a", FP_OLD, 1000.0,
                  [_case("x@bnb", 2.0, nodes=200),
                   _case("y@bnb", 4.0, nodes=400)])
        _campaign(db, "b", FP_NEW, 2000.0,
                  [_case("x@bnb", 1.0, nodes=100),
                   _case("y@bnb", 1.0, nodes=400)])
        trend = trend_campaigns(db, ["a", "b"])
        assert trend.wall_geomean[0] == 1.0
        # per-case wall ratios 0.5 and 0.25 -> geomean sqrt(0.125)
        assert trend.wall_geomean[1] == pytest.approx(math.sqrt(0.125))
        # node ratios 0.5 and 1.0 -> geomean sqrt(0.5)
        assert trend.nodes_geomean[1] == pytest.approx(math.sqrt(0.5))

    def test_no_overlap_yields_none(self, db):
        _campaign(db, "a", FP_OLD, 1000.0, [_case("x@bnb", 2.0)])
        _campaign(db, "b", FP_NEW, 2000.0, [_case("z@bnb", 1.0)])
        trend = trend_campaigns(db, ["a", "b"])
        assert trend.wall_geomean == [1.0, None]

    def test_three_campaign_chain(self, db):
        for name, fp, t0, wall in (
            ("a", FP_OLD, 1000.0, 4.0),
            ("b", FP_MID, 2000.0, 2.0),
            ("c", FP_NEW, 3000.0, 1.0),
        ):
            _campaign(db, name, fp, t0, [_case("x@bnb", wall)])
        trend = trend_campaigns(db, ["c", "a", "b"])
        assert trend.campaigns == ["a", "b", "c"]
        assert trend.wall_geomean == [1.0, pytest.approx(0.5),
                                      pytest.approx(0.25)]


class TestOutput:
    def _two(self, db):
        _campaign(db, "a", FP_OLD, 1000.0, [_case("x@bnb", 2.0)])
        _campaign(db, "b", FP_NEW, 2000.0, [_case("x@bnb", 1.0)])
        return trend_campaigns(db, ["a", "b"])

    def test_json_roundtrips(self, db):
        payload = json.loads(json.dumps(self._two(db).to_json()))
        assert payload["baseline"] == "a"
        assert payload["campaigns"] == ["a", "b"]
        assert payload["cases"][0]["wall_seconds"] == [2.0, 1.0]
        assert payload["wall_geomean"] == [1.0, 0.5]

    def test_render_is_markdown_with_all_sections(self, db):
        text = self._two(db).render()
        assert text.startswith("# campaign trend: a -> b")
        assert "| a (baseline) | v1.0.0@old |" in text
        assert "## per-case wall seconds" in text
        assert "## per-case solve seconds" in text
        assert "## per-case nodes expanded" in text
        assert "| x@bnb | 2.000 | 1.000 |" in text

    def test_render_marks_missing_values(self, db):
        _campaign(db, "a", FP_OLD, 1000.0, [_case("x@bnb", 2.0)])
        _campaign(db, "b", FP_NEW, 2000.0,
                  [_case("x@bnb", 1.0, nodes=None)])
        text = trend_campaigns(db, ["a", "b"]).render()
        assert "| x@bnb | 100 | - |" in text
