"""diff_campaigns: alignment, exactness policy, regressions, drift."""

import pytest

from repro.campaign.db import CampaignDB
from repro.campaign.diff import diff_campaigns
from repro.campaign.runner import run_campaign
from repro.campaign.suite import Suite

FP_A = {"version": "1.0.0", "cache_key_version": 2, "trace_schema": 1,
        "git_sha": "aaa"}
FP_B = {"version": "1.1.0", "cache_key_version": 2, "trace_schema": 1,
        "git_sha": "bbb"}


@pytest.fixture
def db(tmp_path):
    with CampaignDB(tmp_path / "c.sqlite") as handle:
        yield handle


def _campaign(db, name, fingerprint=FP_A, cases=()):
    campaign_id = db.create_campaign(
        name, suite="demo", suite_spec="{}", seed=0, backend="thread",
        hostname=None, fingerprint=fingerprint,
    )
    for case in cases:
        db.upsert_case(campaign_id, case.pop("case_id"), **case)
    db.mark_status(campaign_id, "completed")
    return campaign_id


def _case(case_id, **overrides):
    base = {
        "case_id": case_id,
        "method": "bnb",
        "state": "done",
        "cost": 100.0,
        "matrix_digest": "d1",
        "verified_ok": 1,
        "wall_seconds": 1.0,
    }
    base.update(overrides)
    return base


class TestSelfDiff:
    def test_real_self_diff_is_empty(self, db):
        suite = Suite.from_spec({
            "name": "s", "methods": ["bnb"],
            "cases": [{"kind": "generated", "families": ["random-int"],
                       "sizes": [5], "count": 2}],
        })
        run_campaign(db, suite, name="a", workers=2)
        run_campaign(db, suite, name="b", workers=2)
        diff = diff_campaigns(db, "a", "b")
        assert diff.ok
        assert diff.empty
        assert diff.matched_cases == 2
        assert not diff.cross_version
        assert "OK" in diff.render()


class TestCostPolicy:
    def test_exact_cost_change_fails(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", cost=100.0)])
        _campaign(db, "b", FP_B, cases=[_case("x@bnb", cost=100.5)])
        diff = diff_campaigns(db, "a", "b")
        assert not diff.ok
        assert len(diff.exact_violations) == 1
        assert diff.exact_violations[0].delta == pytest.approx(0.5)
        assert diff.cross_version
        assert "EXACT COST CHANGE" in diff.render()

    def test_exact_cost_within_eps_ok(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", cost=100.0)])
        _campaign(db, "b", cases=[_case("x@bnb", cost=100.0 + 1e-12)])
        diff = diff_campaigns(db, "a", "b")
        assert diff.ok
        assert diff.empty

    def test_heuristic_cost_change_reported_not_failing(self, db):
        _campaign(db, "a", cases=[
            _case("x@upgmm", method="upgmm", cost=100.0)
        ])
        _campaign(db, "b", cases=[
            _case("x@upgmm", method="upgmm", cost=90.0)
        ])
        diff = diff_campaigns(db, "a", "b")
        assert diff.ok  # heuristics may legitimately improve
        assert not diff.empty
        assert len(diff.cost_changes) == 1
        assert not diff.cost_changes[0].exact

    def test_custom_eps(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", cost=100.0)])
        _campaign(db, "b", cases=[_case("x@bnb", cost=100.5)])
        assert diff_campaigns(db, "a", "b", cost_eps=1.0).ok


class TestRegressions:
    def test_verification_regression(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", verified_ok=1)])
        _campaign(db, "b", cases=[
            _case("x@bnb", verified_ok=0, violations='["ultrametricity"]')
        ])
        diff = diff_campaigns(db, "a", "b")
        assert not diff.ok
        assert diff.verification_regressions[0]["case_id"] == "x@bnb"

    def test_state_regression(self, db):
        _campaign(db, "a", cases=[_case("x@bnb")])
        _campaign(db, "b", cases=[
            _case("x@bnb", state="failed", cost=None, error="boom")
        ])
        diff = diff_campaigns(db, "a", "b")
        assert not diff.ok
        assert diff.state_regressions[0]["b"] == "failed"

    def test_input_change_suppresses_cost_compare(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", cost=100.0)])
        _campaign(db, "b", cases=[
            _case("x@bnb", cost=250.0, matrix_digest="d2")
        ])
        diff = diff_campaigns(db, "a", "b")
        assert diff.input_changes[0]["case_id"] == "x@bnb"
        assert not diff.cost_changes  # incomparable, not a violation
        assert diff.ok
        assert not diff.empty


class TestMembershipAndTiming:
    def test_new_and_missing_cases(self, db):
        _campaign(db, "a", cases=[_case("x@bnb"), _case("y@bnb")])
        _campaign(db, "b", cases=[_case("x@bnb"), _case("z@bnb")])
        diff = diff_campaigns(db, "a", "b")
        assert diff.new_cases == ["z@bnb"]
        assert diff.missing_cases == ["y@bnb"]
        assert diff.ok and not diff.empty

    def test_time_ratios(self, db):
        _campaign(db, "a", cases=[_case("x@bnb", wall_seconds=1.0)])
        _campaign(db, "b", cases=[_case("x@bnb", wall_seconds=2.0)])
        diff = diff_campaigns(db, "a", "b")
        assert diff.time_ratios["x@bnb"] == pytest.approx(2.0)
        assert diff.median_time_ratio == pytest.approx(2.0)
        assert diff.empty  # timing alone never counts as a difference

    def test_unknown_campaign_raises(self, db):
        _campaign(db, "a")
        with pytest.raises(KeyError):
            diff_campaigns(db, "a", "nope")

    def test_to_json_shape(self, db):
        _campaign(db, "a", cases=[_case("x@bnb")])
        _campaign(db, "b", FP_B, cases=[_case("x@bnb", cost=101.0)])
        payload = diff_campaigns(db, "a", "b").to_json()
        assert payload["cross_version"] is True
        assert payload["ok"] is False
        assert payload["exact_violations"][0]["case_id"] == "x@bnb"
