"""Tests for execution tracing of the simulated cluster."""

import pytest

from repro.matrix.generators import random_metric_matrix
from repro.obs import Recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound
from repro.parallel.trace import (
    TraceInterval,
    ascii_gantt,
    intervals_from_spans,
    worker_utilization,
)


def traced_run(workers=4, n=12, seed=42):
    cfg = ClusterConfig(n_workers=workers, record_trace=True)
    matrix = random_metric_matrix(n, seed=seed)
    return ParallelBranchAndBound(cfg).solve(matrix)


class TestTraceRecording:
    def test_disabled_by_default(self):
        cfg = ClusterConfig(n_workers=2)
        result = ParallelBranchAndBound(cfg).solve(
            random_metric_matrix(10, seed=1)
        )
        assert result.trace == []

    def test_intervals_recorded(self):
        result = traced_run()
        assert result.trace
        assert all(isinstance(t, TraceInterval) for t in result.trace)

    def test_intervals_well_formed(self):
        result = traced_run()
        for interval in result.trace:
            assert interval.end >= interval.start
            assert interval.kind in ("expand", "prune")
            assert 0 <= interval.worker < 4

    def test_intervals_within_makespan(self):
        result = traced_run()
        assert max(t.end for t in result.trace) <= result.makespan + 1e-9

    def test_no_overlap_per_worker(self):
        result = traced_run()
        by_worker = {}
        for t in result.trace:
            by_worker.setdefault(t.worker, []).append(t)
        for intervals in by_worker.values():
            intervals.sort(key=lambda t: t.start)
            for a, b in zip(intervals, intervals[1:]):
                assert a.end <= b.start + 1e-9

    def test_busy_time_matches_stats(self):
        result = traced_run()
        for stats in result.workers:
            traced = sum(
                t.duration for t in result.trace if t.worker == stats.worker_id
            )
            assert traced == pytest.approx(stats.busy_time, abs=1e-6)

    def test_trace_does_not_change_outcome(self):
        cfg_plain = ClusterConfig(n_workers=4)
        cfg_trace = ClusterConfig(n_workers=4, record_trace=True)
        m = random_metric_matrix(11, seed=3)
        plain = ParallelBranchAndBound(cfg_plain).solve(m)
        traced = ParallelBranchAndBound(cfg_trace).solve(m)
        assert plain.cost == traced.cost
        assert plain.makespan == traced.makespan


class TestUtilization:
    def test_fractions_in_range(self):
        result = traced_run()
        util = worker_utilization(result.trace, 4, result.makespan)
        assert set(util) == {0, 1, 2, 3}
        assert all(0.0 <= u <= 1.0 for u in util.values())

    def test_zero_makespan(self):
        assert worker_utilization([], 2, 0.0) == {0: 0.0, 1: 0.0}


class TestGantt:
    def test_one_row_per_worker(self):
        result = traced_run()
        chart = ascii_gantt(result.trace, 4, result.makespan, width=40)
        lines = chart.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("w0") or line.startswith("w") for line in lines)

    def test_row_width(self):
        result = traced_run()
        chart = ascii_gantt(result.trace, 4, result.makespan, width=40)
        for line in chart.splitlines():
            assert len(line) == len("w00 |") + 40 + 1

    def test_busy_worker_shows_marks(self):
        result = traced_run()
        chart = ascii_gantt(result.trace, 4, result.makespan, width=40)
        assert "#" in chart or "-" in chart

    def test_empty_trace(self):
        chart = ascii_gantt([], 2, 0.0)
        assert len(chart.splitlines()) == 2

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ascii_gantt([], 1, 1.0, width=4)


class TestIntervalsFromSpans:
    def test_simulator_spans_round_trip(self):
        """A recorder-instrumented run yields the same intervals as the
        simulator's native trace."""
        cfg = ClusterConfig(n_workers=4, record_trace=True)
        matrix = random_metric_matrix(12, seed=42)
        recorder = Recorder()
        result = ParallelBranchAndBound(cfg, recorder=recorder).solve(matrix)
        rebuilt = intervals_from_spans(recorder.events)
        assert rebuilt == sorted(
            result.trace, key=lambda t: (t.start, t.worker)
        )

    def test_recorder_implies_trace(self):
        """Attaching a recorder records worker spans even when the
        cluster config leaves record_trace off."""
        cfg = ClusterConfig(n_workers=4)
        matrix = random_metric_matrix(12, seed=42)
        recorder = Recorder()
        ParallelBranchAndBound(cfg, recorder=recorder).solve(matrix)
        assert intervals_from_spans(recorder.events)

    def test_wall_clock_spans_are_shifted_to_zero(self):
        recorder = Recorder()
        recorder.add_span("mp.worker", 100.0, 101.0, worker=0)
        recorder.add_span("mp.worker", 100.5, 102.0, worker=1)
        first, second = intervals_from_spans(recorder.events)
        assert first == TraceInterval(0, 0.0, 1.0, "expand")
        assert second == TraceInterval(1, 0.5, 2.0, "expand")

    def test_non_worker_events_ignored(self):
        recorder = Recorder()
        with recorder.span("pipeline.build"):
            recorder.counter("nodes", 3)
        assert intervals_from_spans(recorder.events) == []

    def test_counters_with_worker_attr_ignored(self):
        # The multiprocess engine tags per-worker counters with worker=;
        # only spans carry timestamps.
        recorder = Recorder()
        recorder.counter("mp.nodes_expanded", 5, worker=0)
        recorder.add_span("mp.worker", 0.0, 1.0, worker=0)
        (interval,) = intervals_from_spans(recorder.events)
        assert interval.worker == 0

    def test_feeds_utilization_and_gantt(self):
        cfg = ClusterConfig(n_workers=4, record_trace=True)
        matrix = random_metric_matrix(12, seed=42)
        recorder = Recorder()
        result = ParallelBranchAndBound(cfg, recorder=recorder).solve(matrix)
        intervals = intervals_from_spans(recorder.events)
        util = worker_utilization(intervals, 4, result.makespan)
        assert all(0.0 <= u <= 1.0 for u in util.values())
        assert ascii_gantt(intervals, 4, result.makespan, width=40)
