"""Tests for the sorted work pools."""

from repro.parallel.pools import SortedPool


class TestSortedPool:
    def test_empty(self):
        pool = SortedPool()
        assert len(pool) == 0
        assert not pool
        assert pool.pop_best() is None
        assert pool.pop_worst() is None
        assert pool.peek_best_priority() is None

    def test_pop_best_order(self):
        pool = SortedPool()
        for priority, item in [(3, "c"), (1, "a"), (2, "b")]:
            pool.push(priority, item)
        assert [pool.pop_best() for _ in range(3)] == ["a", "b", "c"]

    def test_pop_worst_order(self):
        pool = SortedPool()
        for priority, item in [(3, "c"), (1, "a"), (2, "b")]:
            pool.push(priority, item)
        assert [pool.pop_worst() for _ in range(3)] == ["c", "b", "a"]

    def test_mixed_pops(self):
        pool = SortedPool()
        for priority in range(10):
            pool.push(priority, priority)
        assert pool.pop_best() == 0
        assert pool.pop_worst() == 9
        assert pool.pop_best() == 1
        assert pool.pop_worst() == 8
        assert len(pool) == 6

    def test_no_double_delivery(self):
        pool = SortedPool()
        for priority in range(50):
            pool.push(priority, priority)
        seen = set()
        for turn in range(50):
            item = pool.pop_best() if turn % 2 else pool.pop_worst()
            assert item not in seen
            seen.add(item)
        assert len(seen) == 50
        assert not pool

    def test_equal_priorities_fifo_best(self):
        pool = SortedPool()
        pool.push(1.0, "first")
        pool.push(1.0, "second")
        assert pool.pop_best() == "first"

    def test_peek_best_priority(self):
        pool = SortedPool()
        pool.push(5.0, "x")
        pool.push(2.0, "y")
        assert pool.peek_best_priority() == 2.0
        pool.pop_best()
        assert pool.peek_best_priority() == 5.0

    def test_drain(self):
        pool = SortedPool()
        for priority in (3, 1, 2):
            pool.push(priority, priority)
        assert pool.drain() == [1, 2, 3]
        assert not pool

    def test_len_tracks_tombstones(self):
        pool = SortedPool()
        pool.push(1, "a")
        pool.push(2, "b")
        pool.pop_worst()
        assert len(pool) == 1
        assert pool.pop_best() == "a"
