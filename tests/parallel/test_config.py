"""Tests for the cluster configuration."""

import pytest

from repro.parallel.config import ClusterConfig


class TestClusterConfig:
    def test_defaults_match_paper(self):
        cfg = ClusterConfig()
        assert cfg.n_workers == 16
        assert cfg.prebranch_factor == 2

    def test_expansion_cost_formula(self):
        cfg = ClusterConfig(expansion_unit_cost=2.0)
        # k leaves: (2k - 1) positions, O(k) each.
        assert cfg.expansion_cost(3) == 2.0 * 5 * 3

    def test_frozen(self):
        cfg = ClusterConfig()
        with pytest.raises(AttributeError):
            cfg.n_workers = 4  # type: ignore[misc]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ClusterConfig(ub_broadcast_latency=-1)
        with pytest.raises(ValueError):
            ClusterConfig(transfer_latency=-1)

    def test_rejects_bad_expansion_cost(self):
        with pytest.raises(ValueError):
            ClusterConfig(expansion_unit_cost=0)

    def test_rejects_bad_prebranch(self):
        with pytest.raises(ValueError):
            ClusterConfig(prebranch_factor=0)
