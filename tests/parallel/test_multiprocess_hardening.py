"""Hardening tests for the multiprocess engine.

Covers the production-shape guarantees: start-method portability
(fork *and* spawn give the sequential optimum), exact (non-lossy) result
transport, and liveness supervision (a dead worker raises instead of
hanging the master forever).
"""

import multiprocessing
import os

import pytest

import repro.parallel.multiprocess as mp_engine
from repro.bnb.bounds import search_context
from repro.bnb.sequential import exact_mut
from repro.bnb.topology import PartialTopology
from repro.matrix.generators import random_metric_matrix
from repro.matrix.maxmin import apply_maxmin
from repro.parallel.multiprocess import (
    _gather_results,
    multiprocess_mut,
    select_start_method,
)

AVAILABLE = multiprocessing.get_all_start_methods()
START_METHODS = [m for m in ("fork", "spawn") if m in AVAILABLE]


class TestStartMethodSelection:
    def test_default_is_supported(self):
        assert select_start_method() in AVAILABLE

    def test_fork_preferred_when_available(self):
        if "fork" in AVAILABLE:
            assert select_start_method() == "fork"

    def test_explicit_method_passes_through(self):
        for method in START_METHODS:
            assert select_start_method(method) == method

    def test_unavailable_method_rejected(self):
        with pytest.raises(ValueError):
            select_start_method("no-such-start-method")


class TestStartMethodEquality:
    """multiprocess_mut == BranchAndBoundSolver under fork *and* spawn."""

    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("n", [6, 7, 8, 9, 10])
    def test_matches_sequential(self, method, n):
        m = random_metric_matrix(n, seed=n)
        result = multiprocess_mut(m, n_workers=2, start_method=method)
        assert result.start_method == method
        assert result.cost == pytest.approx(exact_mut(m).cost, abs=1e-9)
        # Exact transport: the materialised tree realises the reported
        # cost bit-for-bit (modulo float summation), not to 12 digits.
        assert abs(result.tree.cost() - result.cost) < 1e-9


class TestExactTransport:
    def test_payload_roundtrip_bit_exact(self):
        ordered, _ = apply_maxmin(random_metric_matrix(9, seed=1, integer=False))
        half, tails = search_context(ordered)
        topo = PartialTopology.initial(half)
        while not topo.is_complete:
            topo = topo.child(0, tails[min(topo.next_species + 1, len(tails) - 1)])
        clone = PartialTopology.from_payload(topo.to_payload(), half)
        assert clone.cost == topo.cost  # exact equality, no tolerance
        assert clone.signature() == topo.signature()
        tree = clone.to_tree(ordered.labels)
        assert tree.cost() == pytest.approx(topo.cost, abs=1e-12)


def _exit_without_reporting(code):
    """Worker stand-in that dies before putting anything on the queue."""
    os._exit(code)


def _report_error(worker_id, result_queue):
    result_queue.put(("error", worker_id, "boom traceback", None,
                      {"expanded": 0, "pruned": 0}))


class TestSupervision:
    @pytest.mark.skipif("fork" not in AVAILABLE, reason="needs fork")
    def test_dead_worker_raises_named_error(self):
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        proc = ctx.Process(target=_exit_without_reporting, args=(3,))
        proc.start()
        with pytest.raises(RuntimeError, match=r"worker 7 .*exit code 3"):
            _gather_results({7: proc}, result_queue)
        proc.join()

    @pytest.mark.skipif("fork" not in AVAILABLE, reason="needs fork")
    def test_worker_exception_travels_back(self):
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        proc = ctx.Process(target=_report_error, args=(4, result_queue))
        proc.start()
        with pytest.raises(RuntimeError, match="worker 4 raised"):
            _gather_results({4: proc}, result_queue)
        proc.join()

    @pytest.mark.skipif("fork" not in AVAILABLE, reason="needs fork")
    def test_lost_result_detected(self, monkeypatch):
        """Clean exit without a result must not hang the master."""
        monkeypatch.setattr(mp_engine, "_LOST_RESULT_GRACE", 2)
        ctx = multiprocessing.get_context("fork")
        result_queue = ctx.Queue()
        proc = ctx.Process(target=_exit_without_reporting, args=(0,))
        proc.start()
        with pytest.raises(RuntimeError, match="never arrived"):
            _gather_results({0: proc}, result_queue)
        proc.join()

    def test_processes_cleaned_up_after_run(self):
        m = random_metric_matrix(9, seed=11)
        multiprocess_mut(m, n_workers=3)
        assert not [
            p for p in multiprocessing.active_children()
            if p.name.startswith("Process-")
        ] or all(not p.is_alive() for p in multiprocessing.active_children())


class TestPicklableUnderSpawn:
    @pytest.mark.skipif("spawn" not in AVAILABLE, reason="needs spawn")
    def test_spawn_with_33_constraint(self):
        m = random_metric_matrix(8, seed=13)
        result = multiprocess_mut(
            m, n_workers=2, start_method="spawn", relationship_33=True
        )
        assert result.cost == pytest.approx(exact_mut(m).cost, abs=1e-9)
