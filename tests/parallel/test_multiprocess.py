"""Tests for the real multiprocessing engine."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix
from repro.parallel.multiprocess import multiprocess_mut
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


class TestMultiprocess:
    def test_matches_sequential(self):
        m = random_metric_matrix(9, seed=3)
        result = multiprocess_mut(m, n_workers=2)
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_three_workers(self):
        m = random_metric_matrix(10, seed=4)
        result = multiprocess_mut(m, n_workers=3)
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_tree_feasible(self):
        m = random_metric_matrix(9, seed=5)
        result = multiprocess_mut(m, n_workers=2)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, m)
        assert result.tree.cost() == pytest.approx(result.cost)

    def test_single_worker_falls_back(self):
        m = random_metric_matrix(8, seed=6)
        result = multiprocess_mut(m, n_workers=1)
        assert result.n_workers == 1
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_tiny_matrix_falls_back(self):
        m = DistanceMatrix([[0, 4, 8], [4, 0, 8], [8, 8, 0]])
        result = multiprocess_mut(m, n_workers=4)
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_rejects_bad_worker_count(self):
        m = random_metric_matrix(6, seed=7)
        with pytest.raises(ValueError):
            multiprocess_mut(m, n_workers=0)

    def test_counters_positive(self):
        m = random_metric_matrix(10, seed=8)
        result = multiprocess_mut(m, n_workers=2)
        assert result.nodes_expanded > 0
        assert result.initial_upper_bound >= result.cost - 1e-9

    def test_33_option(self):
        m = random_metric_matrix(9, seed=9)
        result = multiprocess_mut(m, n_workers=2, relationship_33=True)
        assert result.cost == pytest.approx(exact_mut(m).cost)
