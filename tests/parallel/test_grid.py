"""Tests for heterogeneous (grid) cluster configurations."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import random_metric_matrix
from repro.parallel.config import ClusterConfig, grid_config
from repro.parallel.simulator import ParallelBranchAndBound


class TestWorkerSpeeds:
    def test_homogeneous_default(self):
        cfg = ClusterConfig(n_workers=4)
        assert cfg.worker_speeds is None
        assert cfg.speed_of(2) == 1.0
        assert cfg.expansion_cost(5) == cfg.expansion_cost(5, worker=1)

    def test_heterogeneous_costs(self):
        cfg = ClusterConfig(n_workers=2, worker_speeds=(1.0, 0.5))
        assert cfg.expansion_cost(5, worker=1) == 2 * cfg.expansion_cost(5, worker=0)
        assert cfg.expansion_cost(5, worker=None) == cfg.expansion_cost(5, worker=0)

    def test_speed_count_validated(self):
        with pytest.raises(ValueError, match="speeds"):
            ClusterConfig(n_workers=3, worker_speeds=(1.0, 1.0))

    def test_positive_speeds_required(self):
        with pytest.raises(ValueError, match="positive"):
            ClusterConfig(n_workers=2, worker_speeds=(1.0, 0.0))


class TestGridConfig:
    def test_shape(self):
        cfg = grid_config(8)
        assert cfg.n_workers == 8
        assert cfg.worker_speeds is not None
        assert len(cfg.worker_speeds) == 8
        # Slower network than the dedicated cluster.
        assert cfg.ub_broadcast_latency > ClusterConfig().ub_broadcast_latency
        assert cfg.transfer_latency > ClusterConfig().transfer_latency

    def test_speeds_within_band(self):
        cfg = grid_config(16, cpu_speed=0.8, speed_spread=0.1)
        assert all(0.7 <= s <= 0.9 for s in cfg.worker_speeds)

    def test_deterministic_per_seed(self):
        assert grid_config(6, seed=3).worker_speeds == grid_config(6, seed=3).worker_speeds
        assert grid_config(6, seed=3).worker_speeds != grid_config(6, seed=4).worker_speeds

    def test_overrides_forwarded(self):
        cfg = grid_config(4, prebranch_factor=3)
        assert cfg.prebranch_factor == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_config(4, cpu_speed=0.0)
        with pytest.raises(ValueError):
            grid_config(4, cpu_speed=0.5, speed_spread=0.6)


class TestGridRuns:
    def test_same_optimum_as_cluster(self):
        m = random_metric_matrix(10, seed=5)
        grid = ParallelBranchAndBound(grid_config(8)).solve(m)
        assert grid.cost == pytest.approx(exact_mut(m).cost)

    def test_slower_cpus_slow_the_run(self):
        m = random_metric_matrix(12, seed=42)
        fast = ClusterConfig(n_workers=8)
        slow = ClusterConfig(
            n_workers=8, worker_speeds=tuple([0.5] * 8)
        )
        t_fast = ParallelBranchAndBound(fast).solve(m).makespan
        t_slow = ParallelBranchAndBound(slow).solve(m).makespan
        assert t_slow > t_fast

    def test_report_shape_grid_vs_cluster(self):
        """NCS2005: grid-16 slower than cluster-16; grid-24 overtakes."""
        m = random_metric_matrix(14, seed=42)
        cluster16 = ParallelBranchAndBound(ClusterConfig(n_workers=16)).solve(m)
        grid16 = ParallelBranchAndBound(grid_config(16)).solve(m)
        assert cluster16.makespan < grid16.makespan

    def test_heterogeneous_balance(self):
        """Stealing keeps slow workers from stalling the run: the fastest
        worker should expand more nodes than the slowest."""
        speeds = tuple([1.5] * 2 + [0.5] * 6)
        cfg = ClusterConfig(n_workers=8, worker_speeds=speeds)
        m = random_metric_matrix(13, seed=5)
        result = ParallelBranchAndBound(cfg).solve(m)
        fast_nodes = sum(w.nodes_expanded for w in result.workers[:2]) / 2
        slow_nodes = sum(w.nodes_expanded for w in result.workers[2:]) / 6
        if slow_nodes > 0:
            assert fast_nodes >= slow_nodes
