"""WorkerSlot supervision: crash detection, respawn, deadline kill."""

import os
import signal
import time

import pytest

from repro.parallel.executor import (
    RemoteTaskError,
    WorkerCrashed,
    WorkerSlot,
    WorkerTimeout,
    emit_slot_progress,
)


def echo_task(task):
    return ("echo", task)


def progressing_task(task):
    """Emit ``task`` progress payloads, then return a final value."""
    for i in range(int(task)):
        assert emit_slot_progress({"seq": i})
    return ("final", int(task))


def raising_task(task):
    raise ValueError(f"bad task {task!r}")


def sleepy_task(task):
    time.sleep(float(task))
    return "woke"


def self_killing_task(task):
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture
def slot():
    s = WorkerSlot(3, echo_task)
    yield s
    s.stop()


class TestRoundtrip:
    def test_call_returns_result(self, slot):
        assert slot.call({"x": 1}) == ("echo", {"x": 1})

    def test_slot_serves_many_tasks_on_one_process(self, slot):
        slot.start()
        pid = slot.pid
        for i in range(5):
            assert slot.call(i) == ("echo", i)
        assert slot.pid == pid
        assert slot.respawns == 0

    def test_start_is_idempotent(self, slot):
        slot.start()
        pid = slot.pid
        slot.start()
        assert slot.pid == pid

    def test_context_manager(self):
        with WorkerSlot(0, echo_task) as s:
            assert s.alive
            assert s.call("hi") == ("echo", "hi")
        assert not s.alive


class TestTaskErrors:
    def test_task_exception_is_typed_and_worker_survives(self):
        with WorkerSlot(7, raising_task, what="worker process") as s:
            pid = s.pid
            with pytest.raises(RemoteTaskError, match=r"worker process 7"):
                s.call("t1")
            try:
                s.call("t2")
            except RemoteTaskError as err:
                assert err.exc_type == "ValueError"
                assert "bad task 't2'" in err.message
                assert "ValueError" in err.remote_traceback
            # Same process: a task exception must not cost the worker.
            assert s.pid == pid
            assert s.respawns == 0

    def test_remote_error_is_runtimeerror(self):
        with WorkerSlot(1, raising_task) as s:
            with pytest.raises(RuntimeError):
                s.call(None)


class TestCrashSupervision:
    def test_killed_worker_is_detected_and_respawned(self):
        with WorkerSlot(5, self_killing_task, what="worker process") as s:
            first_pid = s.pid
            with pytest.raises(
                WorkerCrashed, match=r"worker process 5 .*died with exit code"
            ):
                s.call("boom")
            # The slot respawned itself before raising: immediately usable.
            assert s.alive
            assert s.respawns == 1
            assert s.pid != first_pid

    def test_sigkill_from_outside_mid_task(self):
        with WorkerSlot(2, sleepy_task) as s:
            s.start()
            victim = s.pid
            import threading

            threading.Timer(0.3, os.kill, (victim, signal.SIGKILL)).start()
            with pytest.raises(WorkerCrashed) as excinfo:
                s.call(30.0)
            assert excinfo.value.pid == victim
            # Replacement serves the next task.
            assert s.call(0.0) == "woke"


class TestDeadline:
    def test_deadline_terminates_wedged_worker(self):
        with WorkerSlot(4, sleepy_task, poll_timeout=0.05) as s:
            t0 = time.monotonic()
            with pytest.raises(
                WorkerTimeout, match=r"past its job's deadline"
            ):
                s.call(30.0, deadline=time.time() + 0.3)
            # Detection is prompt (poll-bound), not wait-for-the-task.
            assert time.monotonic() - t0 < 5.0
            assert s.respawns == 1
            assert s.call(0.0) == "woke"

    def test_no_deadline_waits_for_result(self):
        with WorkerSlot(6, sleepy_task, poll_timeout=0.05) as s:
            assert s.call(0.6) == "woke"
            assert s.respawns == 0


class TestProgressChannel:
    """The mid-``call()`` child -> parent progress side channel."""

    def test_progress_arrives_in_order_before_the_result(self):
        seen = []
        with WorkerSlot(11, progressing_task) as s:
            result = s.call(5, on_progress=seen.append)
        # call() only returns once the final payload lands, so every
        # progress message was delivered (ordered) before the result.
        assert result == ("final", 5)
        assert seen == [{"seq": i} for i in range(5)]

    def test_progress_ignored_without_callback(self):
        with WorkerSlot(12, progressing_task) as s:
            assert s.call(3) == ("final", 3)

    def test_progress_callback_exceptions_are_swallowed(self):
        def bad_callback(_payload):
            raise RuntimeError("observer down")

        with WorkerSlot(13, progressing_task) as s:
            assert s.call(4, on_progress=bad_callback) == ("final", 4)
            # The slot survived for the next task, callback and all.
            assert s.call(1, on_progress=bad_callback) == ("final", 1)

    def test_emit_outside_a_worker_is_a_noop(self):
        assert emit_slot_progress({"seq": 0}) is False

    def test_progress_does_not_leak_across_tasks(self):
        first, second = [], []
        with WorkerSlot(14, progressing_task) as s:
            s.call(3, on_progress=first.append)
            s.call(2, on_progress=second.append)
        assert [p["seq"] for p in first] == [0, 1, 2]
        assert [p["seq"] for p in second] == [0, 1]


class TestStop:
    def test_stop_is_idempotent(self):
        s = WorkerSlot(8, echo_task)
        s.start()
        assert s.stop()
        assert s.stop()

    def test_stop_without_start(self):
        assert WorkerSlot(9, echo_task).stop()
