"""Tests for the scaling-analysis helpers."""

import pytest

from repro.matrix.generators import random_metric_matrix
from repro.parallel.analysis import (
    ScalingPoint,
    amdahl_bound,
    karp_flatt,
    speedup_curve,
)
from repro.parallel.config import ClusterConfig, grid_config


class TestKarpFlatt:
    def test_perfect_scaling(self):
        assert karp_flatt(8.0, 8) == pytest.approx(0.0)

    def test_serial_program(self):
        assert karp_flatt(1.0, 8) == pytest.approx(1.0)

    def test_superlinear_is_negative(self):
        assert karp_flatt(2.5, 2) < 0.0

    def test_known_value(self):
        # S=4 on p=8: e = (1/4 - 1/8) / (1 - 1/8) = 1/7.
        assert karp_flatt(4.0, 8) == pytest.approx(1 / 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            karp_flatt(2.0, 1)
        with pytest.raises(ValueError):
            karp_flatt(0.0, 4)


class TestAmdahl:
    def test_no_serial_part(self):
        assert amdahl_bound(0.0, 16) == 16.0

    def test_all_serial(self):
        assert amdahl_bound(1.0, 16) == 1.0

    def test_classic_value(self):
        # 10% serial, p -> inf caps at 10; at p=16 it is 1/(0.1+0.9/16).
        assert amdahl_bound(0.1, 16) == pytest.approx(1 / (0.1 + 0.9 / 16))

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_bound(-0.1, 4)
        with pytest.raises(ValueError):
            amdahl_bound(0.5, 0)

    def test_karp_flatt_inverts_amdahl(self):
        for fraction in (0.05, 0.2, 0.5):
            for p in (2, 4, 16):
                speedup = amdahl_bound(fraction, p)
                assert karp_flatt(speedup, p) == pytest.approx(fraction)


class TestSpeedupCurve:
    def test_curve_shape(self):
        m = random_metric_matrix(12, seed=42)
        points = speedup_curve(m, (1, 2, 4))
        assert [p.workers for p in points] == [1, 2, 4]
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].serial_fraction is None
        assert all(isinstance(p, ScalingPoint) for p in points)

    def test_monotone_speedup_on_heavy_instance(self):
        m = random_metric_matrix(13, seed=5)
        points = speedup_curve(m, (1, 4, 16))
        assert points[1].speedup >= 1.0
        assert points[2].makespan <= points[1].makespan * 1.05

    def test_efficiency_definition(self):
        m = random_metric_matrix(11, seed=3)
        for point in speedup_curve(m, (1, 2, 8)):
            assert point.efficiency == pytest.approx(point.speedup / point.workers)

    def test_superlinear_flag(self):
        # The known super-linear instance from the benchmarks.
        m = random_metric_matrix(16, seed=42)
        points = speedup_curve(m, (1, 2))
        assert points[1].superlinear
        assert points[1].serial_fraction < 0

    def test_base_config_respected(self):
        m = random_metric_matrix(11, seed=7)
        slow = ClusterConfig(transfer_latency=400.0, ub_broadcast_latency=400.0)
        fast_points = speedup_curve(m, (1, 4))
        slow_points = speedup_curve(m, (1, 4), base_config=slow)
        assert slow_points[1].makespan >= fast_points[1].makespan

    def test_heterogeneous_base_rejected(self):
        m = random_metric_matrix(8, seed=8)
        with pytest.raises(ValueError, match="homogeneous"):
            speedup_curve(m, (1, 2), base_config=grid_config(2))

    def test_empty_counts_rejected(self):
        m = random_metric_matrix(8, seed=9)
        with pytest.raises(ValueError):
            speedup_curve(m, ())
