"""Tests for the discrete-event cluster simulator."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
)
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


def run(matrix, workers, **kwargs):
    cfg_kwargs = {
        key: kwargs.pop(key)
        for key in list(kwargs)
        if key in (
            "ub_broadcast_latency",
            "transfer_latency",
            "prebranch_factor",
            "donate_when_global_empty",
            "steal_from_loaded",
        )
    }
    cfg = ClusterConfig(n_workers=workers, **cfg_kwargs)
    return ParallelBranchAndBound(cfg, **kwargs).solve(matrix)


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4, 16])
    def test_matches_sequential_optimum(self, workers):
        m = random_metric_matrix(9, seed=8)
        expected = exact_mut(m).cost
        result = run(m, workers)
        assert result.cost == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds_16_workers(self, seed):
        m = random_metric_matrix(8, seed=seed)
        assert run(m, 16).cost == pytest.approx(exact_mut(m).cost)

    def test_result_feasible(self):
        m = random_metric_matrix(9, seed=10)
        result = run(m, 8)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, m)

    def test_clustered_input(self):
        m = hierarchical_matrix([[3, 2], [3]], seed=4)
        assert run(m, 4).cost == pytest.approx(exact_mut(m).cost)

    def test_tiny_inputs_fall_back(self):
        m = DistanceMatrix([[0, 4], [4, 0]], labels=["x", "y"])
        result = run(m, 16)
        assert result.cost == pytest.approx(4.0)

    def test_33_relationship_option(self):
        m = random_metric_matrix(8, seed=12)
        assert run(m, 4, relationship_33=True).cost == pytest.approx(
            exact_mut(m).cost
        )


class TestDeterminism:
    def test_repeated_runs_identical(self):
        m = random_metric_matrix(10, seed=21)
        a = run(m, 8)
        b = run(m, 8)
        assert a.cost == b.cost
        assert a.makespan == b.makespan
        assert a.total_nodes_expanded == b.total_nodes_expanded
        assert a.messages == b.messages


class TestSchedulingBehaviour:
    def test_speedup_grows_with_workers(self):
        m = random_metric_matrix(13, seed=5)
        makespans = {
            p: run(m, p).makespan for p in (1, 4, 16)
        }
        assert makespans[4] < makespans[1]
        assert makespans[16] <= makespans[4]

    def test_workers_all_report(self):
        # seed 42 yields a search far larger than the pre-branch target,
        # so the slaves genuinely work.
        m = random_metric_matrix(12, seed=42)
        result = run(m, 8)
        assert len(result.workers) == 8
        assert sum(w.nodes_expanded for w in result.workers) > 0

    def test_efficiency_in_unit_range(self):
        m = random_metric_matrix(12, seed=42)
        result = run(m, 4)
        assert 0.0 < result.efficiency() <= 1.0 + 1e-9

    def test_trivial_search_has_zero_worker_activity(self):
        # When the master solves everything during pre-branching the
        # slaves report no expansions -- the simulator must not hang.
        m = random_metric_matrix(10, seed=3)
        result = run(m, 8)
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_messages_counted(self):
        m = random_metric_matrix(10, seed=4)
        result = run(m, 4)
        # At minimum: initial dispatch + final gather.
        assert result.messages >= 8

    def test_single_worker_zero_broadcast_overhead(self):
        m = random_metric_matrix(9, seed=9)
        result = run(m, 1)
        assert all(w.ub_broadcasts == 0 for w in result.workers)
        assert all(w.donations == 0 for w in result.workers)

    def test_setup_time_recorded(self):
        m = random_metric_matrix(9, seed=2)
        result = run(m, 4)
        assert result.setup_time > 0
        assert result.makespan >= result.setup_time

    def test_stealing_can_be_disabled(self):
        m = random_metric_matrix(11, seed=14)
        with_steal = run(m, 8)
        without = run(m, 8, steal_from_loaded=False)
        assert sum(w.steals for w in without.workers) == 0
        assert with_steal.cost == pytest.approx(without.cost)

    def test_donation_can_be_disabled(self):
        m = random_metric_matrix(11, seed=15)
        result = run(m, 8, donate_when_global_empty=False)
        assert sum(w.donations for w in result.workers) == 0
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_latency_slows_makespan(self):
        m = random_metric_matrix(11, seed=16)
        fast = run(m, 8, ub_broadcast_latency=1.0, transfer_latency=1.0)
        slow = run(m, 8, ub_broadcast_latency=500.0, transfer_latency=500.0)
        assert slow.makespan > fast.makespan

    def test_node_counts_differ_from_sequential_sometimes(self):
        """The search anomaly behind super-linear speedup: parallel
        exploration order changes the total node count."""
        differs = False
        for seed in (5, 7, 42, 13):
            m = random_metric_matrix(12, seed=seed)
            seq_nodes = run(m, 1).total_nodes_expanded
            par_nodes = run(m, 8).total_nodes_expanded
            if seq_nodes != par_nodes:
                differs = True
                break
        assert differs
