"""Acceptance tests for ``POST /ingest`` against a live subprocess.

The endpoint's three contractual outcomes, each exercised over real
HTTP: a clean upload is QC'd, scheduled and answered with the job
record plus its manifest (with the request's ``X-Trace-Id`` stamped on
every ``ingest.stage`` span in the streamed trace); an oversized body
is refused with the typed 413 before any parsing; a malformed upload
comes back as a 422 whose body carries the stage-0 rejection detail.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import CounterEvent, read_jsonl
from repro.service.client import ServiceClient
from repro.service.errors import PayloadTooLarge, UnprocessableInput

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO_ROOT / "tests" / "data" / "fasta"

# Every test here boots a real subprocess server; deselect with -m "not slow".
pytestmark = pytest.mark.slow


@pytest.fixture
def live_server(tmp_path):
    """A ``repro-mut serve`` subprocess; yields (process, client, trace)."""
    trace_path = tmp_path / "service_trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--workers", "2",
            "--trace-out", str(trace_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        ready = proc.stdout.readline()
        assert "listening on" in ready, f"server never came up: {ready!r}"
        url = ready.strip().split()[-1]
        yield proc, ServiceClient(url, timeout=60.0), trace_path
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def test_live_ingest_acceptance_and_trace_ids(live_server):
    proc, client, trace_path = live_server
    fasta = (FIXTURES / "clean_dna.fasta").read_text()

    # --- JSON upload, blocking: full record with manifest --------------
    record = client.ingest(
        fasta, distance="p", method="compact",
        wait_seconds=60.0, trace_id="ingest-live-1", verify=True,
    )
    assert record["state"] == "done"
    assert record["trace_id"] == "ingest-live-1"
    assert record["result"]["newick"].endswith(";")
    manifest = record["manifest"]
    assert manifest["status"] == "ok"
    assert [s["name"] for s in manifest["stages"]] == [
        "parse", "qc", "distance", "repair", "tree",
    ]
    assert manifest["input"]["sha256"]
    assert not manifest["rejections"]

    # --- multipart/form-data upload takes the same path ----------------
    multipart = client.ingest(
        fasta, distance="jc", method="upgmm",
        wait_seconds=60.0, trace_id="ingest-live-2", multipart=True,
    )
    assert multipart["state"] == "done"
    # The manifest records the resolved method name, not the alias.
    assert multipart["manifest"]["config"]["distance"] == "jukes-cantor"

    # --- both requests' trace ids reached the ingest.stage spans -------
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    events = read_jsonl(trace_path)
    stage_spans = [
        e for e in events
        if not isinstance(e, CounterEvent) and e.name == "ingest.stage"
    ]
    by_trace = {}
    for span in stage_spans:
        by_trace.setdefault(span.attrs.get("trace_id"), []).append(
            span.attrs["stage"]
        )
    assert by_trace["ingest-live-1"] == [
        "parse", "qc", "distance", "repair", "tree",
    ]
    assert by_trace["ingest-live-2"] == [
        "parse", "qc", "distance", "repair", "tree",
    ]


def test_live_ingest_oversized_upload_is_413(live_server):
    _, client, _ = live_server
    # One record, ~9 MiB of residues: past the 8 MiB cap.
    fasta = ">huge\n" + "ACGT" * (9 * 1024 * 1024 // 4) + "\n"
    with pytest.raises(PayloadTooLarge):
        client.ingest(fasta)


def test_live_ingest_malformed_upload_is_422_with_stage_detail(live_server):
    _, client, _ = live_server
    fasta = (FIXTURES / "truncated.fasta").read_text()
    with pytest.raises(UnprocessableInput) as excinfo:
        client.ingest(fasta)
    extra = excinfo.value.extra
    rejections = extra["rejections"]
    assert rejections, "422 body must carry the structured rejections"
    assert rejections[0]["stage"] == 0
    assert rejections[0]["stage_name"] == "parse"
    assert rejections[0]["code"] == "truncated-record"
    assert extra["manifest"]["status"] == "failed"
    assert extra["manifest"]["failed_stage"] == 0


def test_live_ingest_qc_rejection_and_lenient_recovery(live_server):
    _, client, _ = live_server
    fasta = (FIXTURES / "duplicate_id.fasta").read_text()

    with pytest.raises(UnprocessableInput) as excinfo:
        client.ingest(fasta, wait_seconds=60.0)
    assert excinfo.value.extra["rejections"][0]["code"] == "duplicate-id"

    # The same upload in lenient mode drops the offender and solves.
    record = client.ingest(
        fasta, mode="lenient", method="upgmm", wait_seconds=60.0,
    )
    assert record["state"] == "done"
    assert record["manifest"]["status"] == "partial"
    assert record["manifest"]["rejections"]
