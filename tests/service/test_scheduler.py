"""Scheduler behaviour: admission control, dedup, timeout, drain."""

import threading
import time

import pytest

from repro.matrix.generators import clustered_matrix
from repro.obs import Recorder
from repro.service.cache import ResultCache
from repro.service.errors import QueueFull, SchedulerClosed, ServiceError
from repro.service.jobs import JobState
from repro.service.scheduler import Scheduler


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


def blocking_runner(gate: threading.Event, started: threading.Event = None):
    """A runner that parks until ``gate`` is set (for queue-shape tests)."""

    def run(matrix, method, options, recorder):
        if started is not None:
            started.set()
        if not gate.wait(10.0):
            raise RuntimeError("test gate never opened")
        return {"method": method, "n_species": matrix.n, "cost": 0.0,
                "newick": "(gated);"}

    return run


class TestBasicExecution:
    def test_solve_roundtrip(self, matrix):
        with Scheduler(workers=2) as sched:
            payload = sched.solve(matrix, "upgmm", timeout=30.0)
            assert payload["newick"].endswith(";")
            assert payload["n_species"] == 6
            assert payload["method"] == "upgmm"

    def test_job_record_fields(self, matrix):
        with Scheduler(workers=1) as sched:
            job = sched.submit(matrix, "upgmm")
            job.result(30.0)
            record = job.to_json()
            assert record["state"] == "done"
            assert record["cache"] == "miss"
            assert record["result"]["newick"].endswith(";")
            assert sched.job(job.id) is job

    def test_repeat_hits_cache(self, matrix):
        rec = Recorder()
        with Scheduler(workers=2, recorder=rec) as sched:
            first = sched.submit(matrix, "upgmm")
            first.result(30.0)
            second = sched.submit(matrix, "upgmm")
            second.result(30.0)
            assert first.payload == second.payload
            assert second.cache_status == "hit"
        assert rec.counter_total("cache.miss") == 1
        assert rec.counter_total("cache.hit") == 1
        assert len(rec.spans("service.job")) == 2

    def test_different_options_do_not_collide(self, matrix):
        with Scheduler(workers=2) as sched:
            a = sched.submit(matrix, "compact", {"reduction": "maximum"})
            b = sched.submit(matrix, "compact", {"reduction": "minimum"})
            a.result(30.0)
            b.result(30.0)
            assert a.key != b.key

    def test_failed_job_raises_typed_error(self, matrix):
        def explode(matrix, method, options, recorder):
            raise ValueError("boom")

        with Scheduler(workers=1, runner=explode) as sched:
            job = sched.submit(matrix, "upgmm")
            job.wait(10.0)
            assert job.state == JobState.FAILED
            assert "boom" in job.error
            with pytest.raises(ServiceError, match="boom"):
                job.result(1.0)
            assert sched.stats()["failed"] == 1


class TestAdmissionControl:
    def test_queue_full_typed_rejection(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, queue_size=1, runner=blocking_runner(gate, started)
        )
        try:
            running = sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)  # occupies the single worker
            queued = sched.submit(matrix, "upgmm", {"tag": 1})
            with pytest.raises(QueueFull):
                sched.submit(matrix, "upgmm", {"tag": 2})
            assert sched.stats()["rejected"] == 1
            gate.set()
            assert running.result(10.0)["newick"] == "(gated);"
            assert queued.result(10.0)
        finally:
            gate.set()
            sched.shutdown()

    def test_rejection_emits_counter(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        rec = Recorder()
        sched = Scheduler(
            workers=1, queue_size=1, recorder=rec,
            runner=blocking_runner(gate, started),
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            sched.submit(matrix, "upgmm", {"tag": 1})
            with pytest.raises(QueueFull):
                sched.submit(matrix, "upgmm", {"tag": 2})
            assert rec.counter_total("queue.rejected") == 1
        finally:
            gate.set()
            sched.shutdown()


class TestDeduplication:
    def test_identical_inflight_submissions_share_a_job(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        rec = Recorder()
        sched = Scheduler(
            workers=1, recorder=rec, runner=blocking_runner(gate, started)
        )
        try:
            first = sched.submit(matrix, "upgmm")
            assert started.wait(10.0)
            second = sched.submit(matrix, "upgmm")
            assert second is first
            assert sched.stats()["deduped"] == 1
            assert rec.counter_total("queue.deduped") == 1
            gate.set()
            assert first.result(10.0) == second.result(10.0)
        finally:
            gate.set()
            sched.shutdown()

    def test_finished_job_is_not_dedup_target(self, matrix):
        with Scheduler(workers=1) as sched:
            first = sched.submit(matrix, "upgmm")
            first.result(30.0)
            second = sched.submit(matrix, "upgmm")
            assert second is not first
            second.result(30.0)
            assert second.cache_status == "hit"


class TestCancellationAndTimeout:
    def test_cancel_pending_job(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, runner=blocking_runner(gate, started)
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            queued = sched.submit(matrix, "upgmm", {"tag": 1})
            assert queued.cancel()
            assert queued.state == JobState.CANCELLED
            gate.set()
        finally:
            gate.set()
            sched.shutdown()
        assert sched.stats()["cancelled"] == 1

    def test_cancel_finished_job_is_noop(self, matrix):
        with Scheduler(workers=1) as sched:
            job = sched.submit(matrix, "upgmm")
            job.result(30.0)
            assert not job.cancel()
            assert job.state == JobState.DONE

    def test_deadline_expires_while_queued(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, runner=blocking_runner(gate, started)
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            doomed = sched.submit(matrix, "upgmm", {"tag": 1}, timeout=0.01)
            time.sleep(0.05)
            gate.set()
            doomed.wait(10.0)
            assert doomed.state == JobState.TIMEOUT
            assert "deadline" in doomed.error
        finally:
            gate.set()
            sched.shutdown()
        assert sched.stats()["timed_out"] == 1

    def test_result_wait_timeout_raises(self, matrix):
        from repro.service.errors import JobTimeout

        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        try:
            job = sched.submit(matrix, "upgmm")
            with pytest.raises(JobTimeout):
                job.result(0.05)
        finally:
            gate.set()
            sched.shutdown()


class TestShutdown:
    def test_drain_finishes_queued_jobs(self, matrix):
        sched = Scheduler(workers=2)
        jobs = [
            sched.submit(matrix, "upgmm", {"tag": i}) for i in range(6)
        ]
        assert sched.shutdown(drain=True, timeout=30.0)
        for job in jobs:
            assert job.state == JobState.DONE
        # No orphaned worker threads.
        assert not any(t.is_alive() for t in sched._workers)

    def test_submit_after_shutdown_raises(self, matrix):
        sched = Scheduler(workers=1)
        sched.shutdown()
        with pytest.raises(SchedulerClosed):
            sched.submit(matrix, "upgmm")

    def test_shutdown_without_drain_cancels_pending(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        running = sched.submit(matrix, "upgmm", {"tag": 0})
        assert started.wait(10.0)
        queued = sched.submit(matrix, "upgmm", {"tag": 1})
        gate.set()
        assert sched.shutdown(drain=False, timeout=30.0)
        assert queued.state == JobState.CANCELLED
        assert running.state == JobState.DONE  # running jobs complete

    def test_shutdown_is_idempotent(self, matrix):
        sched = Scheduler(workers=1)
        assert sched.shutdown()
        assert sched.shutdown()


class TestDiskBackedScheduler:
    def test_restart_warms_from_disk(self, matrix, tmp_path):
        rec = Recorder()
        with Scheduler(
            workers=1, cache=ResultCache(directory=tmp_path)
        ) as sched:
            first = sched.submit(matrix, "upgmm").result(30.0)
        # "Restarted" scheduler: new cache instance, same directory.
        with Scheduler(
            workers=1, cache=ResultCache(directory=tmp_path), recorder=rec
        ) as sched:
            job = sched.submit(matrix, "upgmm")
            assert job.result(30.0) == first
            assert job.cache_status == "hit"
        assert rec.counter_total("cache.hit") == 1
        assert rec.counter_total("cache.miss") == 0


class _VindictiveRecorder(Recorder):
    """Raises from ``counter`` on a chosen name -- simulating a broken
    observability sink blowing up *inside the worker loop's error path*,
    which historically killed the worker thread and silently shrank the
    pool."""

    def __init__(self, poison: str):
        super().__init__()
        self.poison = poison

    def counter(self, name, value=1, **attrs):
        if name == self.poison:
            raise RuntimeError("recorder exploded")
        return super().counter(name, value, **attrs)


class TestWorkerCrashIsolation:
    def test_escaping_exception_settles_job_and_worker_survives(
        self, matrix
    ):
        from repro.obs import MetricsRegistry

        def explode(matrix, method, options, recorder):
            raise ValueError("boom")

        rec = _VindictiveRecorder("job.failed")
        metrics = MetricsRegistry()
        sched = Scheduler(
            workers=1, recorder=rec, runner=explode, metrics=metrics
        )
        try:
            job = sched.submit(matrix, "upgmm", {"tag": 1})
            assert job.wait(10.0)
            assert job.state == JobState.FAILED
            assert "internal scheduler error" in job.error
            assert "recorder exploded" in job.error
            # The worker thread survived the escaping exception...
            assert sched._live_worker_count() == 1
            # ...and keeps serving (this job fails too, but *settles*).
            second = sched.submit(matrix, "upgmm", {"tag": 2})
            assert second.wait(10.0)
            snap = metrics.snapshot()["service.worker.errors"]
            assert snap["series"][0]["value"] == 2
        finally:
            sched.shutdown()

    def test_stats_count_each_job_exactly_once(self, matrix):
        rec = _VindictiveRecorder("job.failed")

        def explode(matrix, method, options, recorder):
            raise ValueError("boom")

        sched = Scheduler(workers=1, recorder=rec, runner=explode)
        try:
            for tag in range(3):
                sched.submit(matrix, "upgmm", {"tag": tag}).wait(10.0)
            stats = sched.stats()
            assert stats["failed"] == 3
            assert stats["submitted"] == 3
        finally:
            sched.shutdown()


class TestWorkerGauges:
    def test_workers_gauge_reports_only_live_workers(self, matrix):
        from repro.obs import MetricsRegistry
        from repro.service.scheduler import _STOP

        metrics = MetricsRegistry()
        sched = Scheduler(workers=2, metrics=metrics)

        def gauge(name):
            return metrics.snapshot()[name]["series"][0]["value"]

        try:
            assert gauge("service.workers") == 2
            assert gauge("service.workers.dead") == 0
            # Kill one worker thread (the old gauge kept reporting 2).
            sched._queue.put(_STOP)
            deadline = time.time() + 10.0
            while sched._live_worker_count() > 1 and time.time() < deadline:
                time.sleep(0.01)
            assert gauge("service.workers") == 1
            assert gauge("service.workers.dead") == 1
            stats = sched.stats()
            assert stats["workers_live"] == 1
            assert stats["workers_dead"] == 1
            # The survivor still serves jobs.
            assert sched.submit(matrix, "upgmm").result(30.0)
        finally:
            sched.shutdown()
        # Deliberate shutdown is not a crash: dead gauge reads 0.
        assert sched._dead_worker_count() == 0


class TestQueuedTimeoutPromptness:
    def test_result_raises_at_deadline_while_still_queued(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)  # blocker occupies the only worker
            doomed = sched.submit(matrix, "upgmm", {"tag": 1}, timeout=0.2)
            t0 = time.monotonic()
            with pytest.raises(ServiceError, match="while queued"):
                doomed.result(10.0)
            # The timeout surfaced at ~the deadline, not when the worker
            # eventually dequeued the job (the blocker is still running).
            assert time.monotonic() - t0 < 2.0
            assert doomed.state == JobState.TIMEOUT
            assert not gate.is_set()
        finally:
            gate.set()
            sched.shutdown()
        # Reconciled exactly once even though the worker also saw it.
        assert sched.stats()["timed_out"] == 1

    def test_expire_if_queued_noop_for_running_jobs(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        try:
            running = sched.submit(matrix, "upgmm", timeout=30.0)
            assert started.wait(10.0)
            assert not running.expire_if_queued()
            gate.set()
            assert running.result(10.0)
        finally:
            gate.set()
            sched.shutdown()
