"""Scheduler behaviour: admission control, dedup, timeout, drain."""

import threading
import time

import pytest

from repro.matrix.generators import clustered_matrix
from repro.obs import Recorder
from repro.service.cache import ResultCache
from repro.service.errors import QueueFull, SchedulerClosed, ServiceError
from repro.service.jobs import JobState
from repro.service.scheduler import Scheduler


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


def blocking_runner(gate: threading.Event, started: threading.Event = None):
    """A runner that parks until ``gate`` is set (for queue-shape tests)."""

    def run(matrix, method, options, recorder):
        if started is not None:
            started.set()
        if not gate.wait(10.0):
            raise RuntimeError("test gate never opened")
        return {"method": method, "n_species": matrix.n, "cost": 0.0,
                "newick": "(gated);"}

    return run


class TestBasicExecution:
    def test_solve_roundtrip(self, matrix):
        with Scheduler(workers=2) as sched:
            payload = sched.solve(matrix, "upgmm", timeout=30.0)
            assert payload["newick"].endswith(";")
            assert payload["n_species"] == 6
            assert payload["method"] == "upgmm"

    def test_job_record_fields(self, matrix):
        with Scheduler(workers=1) as sched:
            job = sched.submit(matrix, "upgmm")
            job.result(30.0)
            record = job.to_json()
            assert record["state"] == "done"
            assert record["cache"] == "miss"
            assert record["result"]["newick"].endswith(";")
            assert sched.job(job.id) is job

    def test_repeat_hits_cache(self, matrix):
        rec = Recorder()
        with Scheduler(workers=2, recorder=rec) as sched:
            first = sched.submit(matrix, "upgmm")
            first.result(30.0)
            second = sched.submit(matrix, "upgmm")
            second.result(30.0)
            assert first.payload == second.payload
            assert second.cache_status == "hit"
        assert rec.counter_total("cache.miss") == 1
        assert rec.counter_total("cache.hit") == 1
        assert len(rec.spans("service.job")) == 2

    def test_different_options_do_not_collide(self, matrix):
        with Scheduler(workers=2) as sched:
            a = sched.submit(matrix, "compact", {"reduction": "maximum"})
            b = sched.submit(matrix, "compact", {"reduction": "minimum"})
            a.result(30.0)
            b.result(30.0)
            assert a.key != b.key

    def test_failed_job_raises_typed_error(self, matrix):
        def explode(matrix, method, options, recorder):
            raise ValueError("boom")

        with Scheduler(workers=1, runner=explode) as sched:
            job = sched.submit(matrix, "upgmm")
            job.wait(10.0)
            assert job.state == JobState.FAILED
            assert "boom" in job.error
            with pytest.raises(ServiceError, match="boom"):
                job.result(1.0)
            assert sched.stats()["failed"] == 1


class TestAdmissionControl:
    def test_queue_full_typed_rejection(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, queue_size=1, runner=blocking_runner(gate, started)
        )
        try:
            running = sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)  # occupies the single worker
            queued = sched.submit(matrix, "upgmm", {"tag": 1})
            with pytest.raises(QueueFull):
                sched.submit(matrix, "upgmm", {"tag": 2})
            assert sched.stats()["rejected"] == 1
            gate.set()
            assert running.result(10.0)["newick"] == "(gated);"
            assert queued.result(10.0)
        finally:
            gate.set()
            sched.shutdown()

    def test_rejection_emits_counter(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        rec = Recorder()
        sched = Scheduler(
            workers=1, queue_size=1, recorder=rec,
            runner=blocking_runner(gate, started),
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            sched.submit(matrix, "upgmm", {"tag": 1})
            with pytest.raises(QueueFull):
                sched.submit(matrix, "upgmm", {"tag": 2})
            assert rec.counter_total("queue.rejected") == 1
        finally:
            gate.set()
            sched.shutdown()


class TestDeduplication:
    def test_identical_inflight_submissions_share_a_job(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        rec = Recorder()
        sched = Scheduler(
            workers=1, recorder=rec, runner=blocking_runner(gate, started)
        )
        try:
            first = sched.submit(matrix, "upgmm")
            assert started.wait(10.0)
            second = sched.submit(matrix, "upgmm")
            assert second is first
            assert sched.stats()["deduped"] == 1
            assert rec.counter_total("queue.deduped") == 1
            gate.set()
            assert first.result(10.0) == second.result(10.0)
        finally:
            gate.set()
            sched.shutdown()

    def test_finished_job_is_not_dedup_target(self, matrix):
        with Scheduler(workers=1) as sched:
            first = sched.submit(matrix, "upgmm")
            first.result(30.0)
            second = sched.submit(matrix, "upgmm")
            assert second is not first
            second.result(30.0)
            assert second.cache_status == "hit"


class TestCancellationAndTimeout:
    def test_cancel_pending_job(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, runner=blocking_runner(gate, started)
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            queued = sched.submit(matrix, "upgmm", {"tag": 1})
            assert queued.cancel()
            assert queued.state == JobState.CANCELLED
            gate.set()
        finally:
            gate.set()
            sched.shutdown()
        assert sched.stats()["cancelled"] == 1

    def test_cancel_finished_job_is_noop(self, matrix):
        with Scheduler(workers=1) as sched:
            job = sched.submit(matrix, "upgmm")
            job.result(30.0)
            assert not job.cancel()
            assert job.state == JobState.DONE

    def test_deadline_expires_while_queued(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(
            workers=1, runner=blocking_runner(gate, started)
        )
        try:
            sched.submit(matrix, "upgmm", {"tag": 0})
            assert started.wait(10.0)
            doomed = sched.submit(matrix, "upgmm", {"tag": 1}, timeout=0.01)
            time.sleep(0.05)
            gate.set()
            doomed.wait(10.0)
            assert doomed.state == JobState.TIMEOUT
            assert "deadline" in doomed.error
        finally:
            gate.set()
            sched.shutdown()
        assert sched.stats()["timed_out"] == 1

    def test_result_wait_timeout_raises(self, matrix):
        from repro.service.errors import JobTimeout

        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        try:
            job = sched.submit(matrix, "upgmm")
            with pytest.raises(JobTimeout):
                job.result(0.05)
        finally:
            gate.set()
            sched.shutdown()


class TestShutdown:
    def test_drain_finishes_queued_jobs(self, matrix):
        sched = Scheduler(workers=2)
        jobs = [
            sched.submit(matrix, "upgmm", {"tag": i}) for i in range(6)
        ]
        assert sched.shutdown(drain=True, timeout=30.0)
        for job in jobs:
            assert job.state == JobState.DONE
        # No orphaned worker threads.
        assert not any(t.is_alive() for t in sched._workers)

    def test_submit_after_shutdown_raises(self, matrix):
        sched = Scheduler(workers=1)
        sched.shutdown()
        with pytest.raises(SchedulerClosed):
            sched.submit(matrix, "upgmm")

    def test_shutdown_without_drain_cancels_pending(self, matrix):
        gate = threading.Event()
        started = threading.Event()
        sched = Scheduler(workers=1, runner=blocking_runner(gate, started))
        running = sched.submit(matrix, "upgmm", {"tag": 0})
        assert started.wait(10.0)
        queued = sched.submit(matrix, "upgmm", {"tag": 1})
        gate.set()
        assert sched.shutdown(drain=False, timeout=30.0)
        assert queued.state == JobState.CANCELLED
        assert running.state == JobState.DONE  # running jobs complete

    def test_shutdown_is_idempotent(self, matrix):
        sched = Scheduler(workers=1)
        assert sched.shutdown()
        assert sched.shutdown()


class TestDiskBackedScheduler:
    def test_restart_warms_from_disk(self, matrix, tmp_path):
        rec = Recorder()
        with Scheduler(
            workers=1, cache=ResultCache(directory=tmp_path)
        ) as sched:
            first = sched.submit(matrix, "upgmm").result(30.0)
        # "Restarted" scheduler: new cache instance, same directory.
        with Scheduler(
            workers=1, cache=ResultCache(directory=tmp_path), recorder=rec
        ) as sched:
            job = sched.submit(matrix, "upgmm")
            assert job.result(30.0) == first
            assert job.cache_status == "hit"
        assert rec.counter_total("cache.hit") == 1
        assert rec.counter_total("cache.miss") == 0
