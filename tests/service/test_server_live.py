"""Acceptance test against a live ``repro-mut serve`` subprocess.

Covers the PR's acceptance criterion end to end:

* >= 32 concurrent ``POST /solve`` requests all succeed or are cleanly
  rejected with the typed queue-full error;
* warm-cache repeats answer from the scheduler in well under 10 ms,
  with ``cache.hit`` counters visible in the exported trace;
* SIGTERM drains in-flight jobs before exit (exit code 0, no orphaned
  worker threads keeping the process alive).
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.matrix.generators import clustered_matrix
from repro.matrix.io import write_phylip
from repro.obs import CounterEvent, read_jsonl
from repro.service.client import ServiceClient
from repro.service.errors import QueueFull

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
N_CONCURRENT = 32

# Every test here boots a real subprocess server; deselect with -m "not slow".
pytestmark = pytest.mark.slow


@pytest.fixture
def live_server(tmp_path):
    """A ``repro-mut serve`` subprocess; yields (process, client, trace)."""
    trace_path = tmp_path / "service_trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--workers", "4",
            "--queue-size", str(N_CONCURRENT * 2),
            "--trace-out", str(trace_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        ready = proc.stdout.readline()
        assert "listening on" in ready, f"server never came up: {ready!r}"
        url = ready.strip().split()[-1]
        yield proc, ServiceClient(url, timeout=60.0), trace_path
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def test_live_concurrent_load_warm_cache_and_sigterm_drain(live_server):
    proc, client, trace_path = live_server
    matrix = clustered_matrix([4, 3], seed=3)

    assert client.healthz()["status"] == "ok"

    # --- >= 32 concurrent POST /solve: all succeed or typed-reject ----
    outcomes = [None] * N_CONCURRENT
    barrier = threading.Barrier(N_CONCURRENT)

    def fire(slot: int) -> None:
        barrier.wait(30.0)
        try:
            outcomes[slot] = client.solve(matrix, method="compact",
                                          wait_seconds=60.0)
        except QueueFull as exc:
            outcomes[slot] = exc

    threads = [
        threading.Thread(target=fire, args=(i,)) for i in range(N_CONCURRENT)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120.0)

    completed = [o for o in outcomes if isinstance(o, dict)]
    rejected = [o for o in outcomes if isinstance(o, QueueFull)]
    assert len(completed) + len(rejected) == N_CONCURRENT
    assert completed, "every request was rejected"
    newicks = {o["result"]["newick"] for o in completed}
    assert len(newicks) == 1, "concurrent solves disagreed"

    # --- warm-cache repeats: scheduler answers in < 10 ms -------------
    durations = []
    for _ in range(20):
        t0 = time.perf_counter()
        record = client.solve(matrix, method="compact")
        durations.append(time.perf_counter() - t0)
        assert record["cache"] == "hit"
    durations.sort()
    median = durations[len(durations) // 2]
    assert median < 0.010, f"warm-cache median {median * 1e3:.2f} ms >= 10 ms"

    stats = client.stats()
    assert stats["cache"]["hits"] >= 20

    # --- SIGTERM drains and exits cleanly -----------------------------
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    stderr = proc.stderr.read()
    assert "draining" in stderr
    assert "drained; bye" in stderr

    # --- cache.hit counters landed in the exported schema-v1 trace ----
    events = read_jsonl(trace_path)
    counters = [e for e in events if isinstance(e, CounterEvent)]
    hits = sum(e.value for e in counters if e.name == "cache.hit")
    misses = sum(e.value for e in counters if e.name == "cache.miss")
    assert hits >= 20
    assert misses >= 1


def test_live_metrics_under_concurrent_load_and_trace_ids(live_server):
    proc, client, trace_path = live_server
    n_solvers = 8

    # Distinct matrices so nothing dedupes: one job (and one trace id)
    # per request.
    matrices = [clustered_matrix([3, 3], seed=100 + i) for i in range(n_solvers)]
    outcomes = [None] * n_solvers
    scrapes = []
    stop_scraping = threading.Event()
    barrier = threading.Barrier(n_solvers + 2)

    def solve(slot: int) -> None:
        barrier.wait(30.0)
        outcomes[slot] = client.solve(
            matrices[slot],
            method="compact",
            wait_seconds=60.0,
            trace_id=f"live-{slot}",
        )

    def scrape() -> None:
        barrier.wait(30.0)
        while not stop_scraping.is_set():
            scrapes.append(client.metrics())

    solvers = [
        threading.Thread(target=solve, args=(i,)) for i in range(n_solvers)
    ]
    scrapers = [threading.Thread(target=scrape) for _ in range(2)]
    for t in solvers + scrapers:
        t.start()
    for t in solvers:
        t.join(120.0)
    stop_scraping.set()
    for t in scrapers:
        t.join(30.0)

    # Every request completed and echoed its trace id.
    for slot, record in enumerate(outcomes):
        assert record["state"] == "done"
        assert record["trace_id"] == f"live-{slot}"

    # Scraping raced the solves without ever breaking the exposition.
    assert scrapes
    for text in scrapes:
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line.strip()
    final = client.metrics()
    assert "service_job_seconds_bucket" in final
    assert "cache_miss_total" in final
    assert "service_queue_depth" in final

    # The exported trace carries every request's id end to end.
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    stderr = proc.stderr.read()
    assert "streamed" in stderr and "trace event(s)" in stderr
    events = read_jsonl(trace_path)
    job_spans = [
        e for e in events
        if not isinstance(e, CounterEvent) and e.name == "service.job"
    ]
    seen_ids = {s.attrs.get("trace_id") for s in job_spans}
    assert {f"live-{i}" for i in range(n_solvers)} <= seen_ids


@pytest.fixture
def live_process_server(tmp_path):
    """A ``repro-mut serve --backend process`` subprocess (worker
    processes, so job progress crosses a process boundary)."""
    trace_path = tmp_path / "service_trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--workers", "2",
            "--backend", "process",
            "--trace-out", str(trace_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        ready = proc.stdout.readline()
        assert "listening on" in ready, f"server never came up: {ready!r}"
        url = ready.strip().split()[-1]
        yield proc, ServiceClient(url, timeout=60.0), trace_path
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def test_live_job_progress_stream_and_watch(live_process_server):
    """A slow capped exact solve publishes live snapshots with monotone
    bounds at ``GET /jobs/<id>/progress``, ``repro-mut watch`` renders
    them, and the heartbeats land in the streamed schema-v1 trace."""
    proc, client, trace_path = live_process_server
    matrix = clustered_matrix([13, 13], seed=5)

    record = client.solve(
        matrix,
        method="bnb",
        options={"node_limit": 30000},
        wait=False,
        trace_id="progress-live",
    )
    job_id = record["id"]
    assert record["state"] in ("pending", "running")

    snapshots = []
    state = None
    deadline = time.time() + 120.0
    while time.time() < deadline:
        body = client.job_progress(job_id)
        state = body["state"]
        assert body["id"] == job_id
        snap = body.get("progress")
        if snap is not None and (
            not snapshots or snap["time"] != snapshots[-1]["time"]
        ):
            assert snap["trace_id"] == "progress-live"
            snapshots.append(snap)
        if state not in ("pending", "running"):
            break
        time.sleep(0.05)
    assert state == "done", state
    assert len(snapshots) >= 2, snapshots

    # Convergence invariants across the live stream: the incumbent only
    # improves, the lower bound only tightens, effort only grows.
    incumbents = [
        s["incumbent_cost"] for s in snapshots
        if s["incumbent_cost"] is not None
    ]
    assert incumbents == sorted(incumbents, reverse=True)
    bounds = [
        s["best_lower_bound"] for s in snapshots
        if s["best_lower_bound"] is not None
    ]
    assert bounds == sorted(bounds)
    expanded = [s["nodes_expanded"] for s in snapshots]
    assert expanded == sorted(expanded)
    assert snapshots[-1]["final"] is True

    # The settled job still serves its last snapshot, and `watch` on it
    # renders the line and exits 0.
    out = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "watch", job_id,
            "--url", client.base_url, "--interval", "0.1",
        ],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        timeout=60,
    )
    assert out.returncode == 0, out.stderr
    assert "[bnb]" in out.stdout
    assert f"job {job_id}: done" in out.stdout

    # The heartbeats crossed the process boundary into the streamed
    # schema-v1 trace, stamped with the request's trace id.
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    events = read_jsonl(trace_path)
    progress_events = [
        e for e in events
        if isinstance(e, CounterEvent) and e.name == "bnb.progress"
    ]
    assert progress_events
    assert any(
        e.attrs.get("trace_id") == "progress-live" for e in progress_events
    )


def test_live_phylip_solve_and_version(live_server):
    proc, client, _ = live_server
    import io

    matrix = clustered_matrix([3, 3], seed=5)
    buffer = io.StringIO()
    write_phylip(matrix, buffer)
    record = client.solve(phylip=buffer.getvalue(), method="upgmm")
    assert record["state"] == "done"

    health = client.healthz()
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", "--version"],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
    )
    assert out.returncode == 0
    assert health["version"] in out.stdout
