"""Service-side result verification: ``POST /solve`` with ``verify: true``.

Covers the scheduler's oracle pass, the HTTP surface, the metrics
signal, and the dedup semantics (a verified request never silently
shares a non-verified in-flight job).
"""

import threading

import pytest

from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.obs import Recorder
from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient
from repro.service.errors import BadRequest
from repro.service.scheduler import Scheduler, solve_payload
from repro.service.server import ServiceServer
from repro.verify.oracles import ORACLE_NAMES


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


def _run_verified(scheduler, matrix, method="bnb"):
    job = scheduler.submit(matrix, method=method, verify=True)
    assert job.wait(60.0)
    return job


class TestSchedulerVerify:
    def test_verified_job_attaches_clean_report(self, matrix):
        with Scheduler(workers=1) as scheduler:
            job = _run_verified(scheduler, matrix)
        assert job.verification["ok"] is True
        assert job.verification["violations"] == []
        assert job.verification["oracles"] == list(ORACLE_NAMES)
        assert job.to_json()["verification"] == job.verification

    def test_without_verify_no_report(self, matrix):
        with Scheduler(workers=1) as scheduler:
            job = scheduler.submit(matrix, method="bnb")
            assert job.wait(60.0)
        assert job.verification is None
        assert "verification" not in job.to_json()

    def test_cache_hit_is_verified_too(self, matrix):
        # The oracle pass runs on the payload, so a warm hit is checked
        # exactly like a miss -- that is what catches cache corruption.
        with Scheduler(workers=1) as scheduler:
            first = scheduler.submit(matrix, method="upgmm")
            assert first.wait(60.0)
            second = _run_verified(scheduler, matrix, method="upgmm")
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert second.verification["ok"] is True

    def test_nj_skips_ultrametric_oracles(self, matrix):
        with Scheduler(workers=1) as scheduler:
            job = _run_verified(scheduler, matrix, method="nj")
        assert "skipped" in job.verification

    def test_verify_emits_spans_and_clean_counters(self, matrix):
        recorder = Recorder()
        registry = MetricsRegistry()
        with Scheduler(
            workers=1, recorder=recorder, metrics=registry
        ) as scheduler:
            _run_verified(scheduler, matrix)
        spans = recorder.spans("verify.oracle")
        assert sorted(s.attrs["oracle"] for s in spans) == sorted(ORACLE_NAMES)
        counter = registry.counter(
            "verify.violations", labelnames=("oracle",)
        )
        assert all(
            counter.value(oracle=name) == 0 for name in ORACLE_NAMES
        )

    def test_corrupted_payload_is_flagged_and_counted(self, matrix):
        registry = MetricsRegistry()
        with Scheduler(workers=1, metrics=registry) as scheduler:
            job = _run_verified(scheduler, matrix)
            # Corrupt the completed payload the way a buggy engine or a
            # poisoned cache would, then re-run the oracle pass on it.
            corrupted = dict(job.payload)
            corrupted["cost"] = corrupted["cost"] * 1.5
            verification = scheduler._verify_payload(job, corrupted)
        assert verification["ok"] is False
        assert any(
            v["oracle"] == "cost" for v in verification["violations"]
        )
        counter = registry.counter(
            "verify.violations", labelnames=("oracle",)
        )
        assert counter.value(oracle="cost") >= 1

    def test_inflight_dedup_key_includes_verify(self, matrix):
        # While the single worker is parked on the first job, identical
        # (key, verify) submissions share it; flipping verify must not.
        release = threading.Event()

        def gated_runner(m, method, options, recorder):
            release.wait(30.0)
            return solve_payload(m, method, options, recorder)

        with Scheduler(workers=1, runner=gated_runner) as scheduler:
            a = scheduler.submit(matrix, method="upgmm", verify=False)
            b = scheduler.submit(matrix, method="upgmm", verify=False)
            c = scheduler.submit(matrix, method="upgmm", verify=True)
            release.set()
            for job in (a, b, c):
                assert job.wait(60.0)
        assert a is b
        assert c is not a
        assert c.verification is not None
        assert a.verification is None


class TestHttpSurface:
    @pytest.fixture
    def client(self):
        with ServiceServer(Scheduler(workers=2), port=0) as srv:
            yield ServiceClient(srv.url, timeout=30.0)

    def test_verify_true_round_trip(self, client, matrix):
        record = client.solve(matrix, method="bnb", verify=True)
        assert record["state"] == "done"
        assert record["verification"]["ok"] is True
        assert record["verification"]["oracles"] == list(ORACLE_NAMES)

    def test_verify_defaults_off(self, client, matrix):
        record = client.solve(matrix, method="bnb")
        assert "verification" not in record

    def test_non_boolean_verify_rejected(self, client, matrix):
        with pytest.raises(BadRequest, match="verify"):
            client._request(
                "POST",
                "/solve",
                {
                    "matrix": {
                        "values": [
                            list(map(float, row)) for row in matrix.values
                        ],
                        "labels": matrix.labels,
                    },
                    "verify": "yes please",
                },
            )

    def test_verified_multiprocess_result(self, client):
        matrix = random_metric_matrix(6, seed=44)
        record = client.solve(matrix, method="multiprocess", verify=True)
        assert record["verification"]["ok"] is True
