"""Process-pool scheduler backend: transport, forwarding, crash handling.

The runners here are module-level functions so they stay picklable
under every multiprocessing start method (``fork`` closures would work,
``spawn`` ones would not).
"""

import os
import signal
import threading
import time

import pytest

from repro.matrix.generators import clustered_matrix
from repro.obs import MetricsRegistry, Recorder
from repro.service.errors import ServiceError
from repro.service.jobs import JobState
from repro.service.scheduler import (
    BACKENDS,
    PROCESS_DEFAULT_METHODS,
    Scheduler,
    select_backend,
)


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


def scripted_runner(matrix, method, options, recorder):
    """Child-side runner scripted through job ``options``."""
    delay = float(options.get("sleep", 0.0))
    if delay:
        time.sleep(delay)
    if options.get("explode"):
        raise ValueError("child boom")
    if options.get("die"):
        os.kill(os.getpid(), signal.SIGKILL)
    return {
        "method": method,
        "n_species": matrix.n,
        "cost": 0.0,
        "newick": "(child);",
    }


class TestBackendSelection:
    def test_exact_methods_default_to_process(self):
        for method in PROCESS_DEFAULT_METHODS:
            assert select_backend(method) == "process"

    def test_heuristics_default_to_thread(self):
        for method in ("nj", "upgma", "upgmm", "greedy"):
            assert select_backend(method) == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Scheduler(workers=1, backend="fibers")
        assert BACKENDS == ("thread", "process")


class TestRoundtrip:
    def test_solve_runs_in_worker_process(self, matrix):
        with Scheduler(workers=2, backend="process") as sched:
            payload = sched.solve(matrix, "compact", timeout=60.0)
            assert payload["newick"].endswith(";")
            assert payload["n_species"] == 6
            stats = sched.stats()
            assert stats["backend"] == "process"
            pids = stats["worker_pids"]
            assert len(pids) == 2
            assert all(pid != os.getpid() for pid in pids.values())

    def test_repeat_hits_parent_side_cache(self, matrix):
        with Scheduler(workers=1, backend="process") as sched:
            first = sched.submit(matrix, "compact")
            first.result(60.0)
            second = sched.submit(matrix, "compact")
            second.result(60.0)
            assert second.cache_status == "hit"
            assert first.payload == second.payload

    def test_payload_matches_thread_backend(self, matrix):
        with Scheduler(workers=1, backend="thread") as threaded:
            via_thread = threaded.solve(matrix, "compact", timeout=60.0)
        with Scheduler(workers=1, backend="process") as processed:
            via_process = processed.solve(matrix, "compact", timeout=60.0)
        assert via_process == via_thread


class TestTelemetryForwarding:
    def test_child_spans_land_in_parent_trace(self, matrix):
        rec = Recorder()
        with Scheduler(workers=1, backend="process", recorder=rec) as sched:
            sched.submit(
                matrix, "compact", trace_id="trace-proc-1"
            ).result(60.0)
        job_spans = rec.spans("service.job")
        assert len(job_spans) == 1
        assert job_spans[0].attrs["backend"] == "process"
        # Solver spans crossed the process boundary and were re-parented
        # under the service.job span (directly or via their own parents).
        ids = {job_spans[0].id}
        solver_spans = [
            s for s in rec.spans() if s.name.startswith(("bnb.", "pipeline."))
        ]
        assert solver_spans, [s.name for s in rec.spans()]
        by_id = {s.id: s for s in rec.spans()}
        for span in solver_spans:
            seen = set()
            node = span
            while node.parent is not None and node.parent not in seen:
                seen.add(node.parent)
                if node.parent in ids:
                    break
                node = by_id[node.parent]
            assert node.parent in ids, f"{span.name} not under service.job"
        # Trace id survived the round trip.
        assert all(
            s.attrs.get("trace_id") == "trace-proc-1" for s in solver_spans
        )

    def test_child_timestamps_are_rebased(self, matrix):
        rec = Recorder()
        t0 = rec.clock()
        with Scheduler(workers=1, backend="process", recorder=rec) as sched:
            sched.submit(matrix, "compact").result(60.0)
        t1 = rec.clock()
        for span in rec.spans():
            assert t0 <= span.start <= span.end <= t1, span.name

    def test_child_metrics_replayed_into_parent_registry(self, matrix):
        metrics = MetricsRegistry()
        with Scheduler(
            workers=1, backend="process", metrics=metrics
        ) as sched:
            sched.submit(matrix, "compact").result(60.0)
        snapshot = metrics.snapshot()
        solve_keys = [k for k in snapshot if "solve.seconds" in k]
        assert solve_keys, sorted(snapshot)


class TestChildFailures:
    def test_child_exception_fails_job_with_original_type(self, matrix):
        with Scheduler(
            workers=1, backend="process", runner=scripted_runner
        ) as sched:
            job = sched.submit(matrix, "compact", {"explode": True})
            job.wait(30.0)
            assert job.state == JobState.FAILED
            assert job.error == "ValueError: child boom"
            # The worker process survived the task exception.
            follow_up = sched.submit(matrix, "compact", {"tag": 2})
            assert follow_up.result(30.0)["newick"] == "(child);"
            assert sched.stats()["worker_respawns"] == 0

    def test_deadline_kills_wedged_child_and_respawns(self, matrix):
        metrics = MetricsRegistry()
        with Scheduler(
            workers=1, backend="process", runner=scripted_runner,
            metrics=metrics,
        ) as sched:
            job = sched.submit(
                matrix, "compact", {"sleep": 30.0}, timeout=0.5
            )
            job.wait(30.0)
            assert job.state == JobState.TIMEOUT
            assert "passed while running" in job.error
            assert "past its job's deadline" in job.error
            # The slot respawned; the next job gets a working child.
            after = sched.submit(matrix, "compact", {"tag": "after"})
            assert after.result(30.0)["newick"] == "(child);"
            assert sched.stats()["worker_respawns"] == 1


@pytest.mark.slow
class TestWorkerCrash:
    def test_sigkilled_worker_fails_job_and_respawns(self, matrix):
        """A ``kill -9`` on a busy worker costs that job, not the slot."""
        metrics = MetricsRegistry()
        with Scheduler(
            workers=1, backend="process", runner=scripted_runner,
            metrics=metrics,
        ) as sched:
            victim_pid = list(sched.stats()["worker_pids"].values())[0]
            job = sched.submit(matrix, "compact", {"sleep": 30.0})
            # Let the child actually pick the task up, then murder it.
            deadline = time.time() + 10.0
            while job.state == JobState.PENDING and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.3)
            os.kill(victim_pid, signal.SIGKILL)
            job.wait(30.0)
            assert job.state == JobState.FAILED
            assert "died with exit code" in job.error
            with pytest.raises(ServiceError, match="died with exit code"):
                job.result(1.0)
            # Typed crash accounting.
            crashed = metrics.snapshot()["service.workers.crashed"]
            assert crashed["series"][0]["value"] >= 1
            # The slot respawned: subsequent jobs succeed on a new pid.
            follow_up = sched.submit(matrix, "compact", {"tag": "post"})
            assert follow_up.result(30.0)["newick"] == "(child);"
            stats = sched.stats()
            assert stats["worker_respawns"] == 1
            new_pid = list(stats["worker_pids"].values())[0]
            assert new_pid != victim_pid
            assert stats["workers_live"] == 1
            assert stats["workers_dead"] == 0

    def test_self_killing_child_settles_with_typed_error(self, matrix):
        with Scheduler(
            workers=1, backend="process", runner=scripted_runner
        ) as sched:
            job = sched.submit(matrix, "compact", {"die": True})
            job.wait(30.0)
            assert job.state == JobState.FAILED
            assert "died with exit code" in job.error
            assert sched.submit(
                matrix, "compact", {"tag": 2}
            ).result(30.0)


class TestReceiptVerification:
    def test_corrupt_payload_is_rejected(self, matrix):
        with Scheduler(workers=1, backend="process") as sched:
            job = sched.submit(matrix, "compact")
            good = dict(job.result(60.0))
            bad = dict(good, cost=good["cost"] + 1.0)
            with pytest.raises(RuntimeError, match="receipt verification"):
                sched._verify_receipt(job, bad)
            # The genuine payload passes.
            sched._verify_receipt(job, good)

    def test_nj_and_custom_runner_payloads_are_exempt(self, matrix):
        with Scheduler(
            workers=1, backend="process", runner=scripted_runner
        ) as sched:
            # scripted_runner's fake payload (cost 0.0, "(child);") would
            # never reconstruct; the receipt check must not apply to it.
            job = sched.submit(matrix, "compact")
            assert job.result(30.0)["newick"] == "(child);"


class TestShutdown:
    def test_shutdown_stops_worker_processes(self, matrix):
        sched = Scheduler(workers=2, backend="process")
        sched.submit(matrix, "compact").result(60.0)
        pids = list(sched.stats()["worker_pids"].values())
        assert sched.shutdown(drain=True, timeout=30.0)
        for slot in sched._slots.values():
            assert not slot.alive
        for pid in pids:
            # The process is gone (or at most a zombie being reaped).
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                pass
