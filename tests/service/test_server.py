"""In-process HTTP API tests: ServiceServer + ServiceClient."""

import threading

import pytest

from repro.matrix.generators import clustered_matrix
from repro.matrix.io import write_phylip
from repro.service.client import ServiceClient
from repro.service.errors import (
    BadRequest,
    JobNotFound,
    QueueFull,
    ServiceError,
)
from repro.service.scheduler import Scheduler
from repro.service.server import ServiceServer


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


@pytest.fixture
def server():
    with ServiceServer(Scheduler(workers=2), port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestSolve:
    def test_solve_matrix_payload(self, client, matrix):
        record = client.solve(matrix, method="upgmm")
        assert record["state"] == "done"
        assert record["cache"] == "miss"
        assert record["result"]["newick"].endswith(";")
        assert record["result"]["n_species"] == 6

    def test_solve_phylip_payload(self, client, matrix, tmp_path):
        import io

        buffer = io.StringIO()
        write_phylip(matrix, buffer)
        record = client.solve(phylip=buffer.getvalue(), method="upgmm")
        assert record["state"] == "done"

    def test_phylip_and_matrix_agree(self, client, matrix):
        import io

        buffer = io.StringIO()
        write_phylip(matrix, buffer)
        a = client.solve(matrix, method="upgmm")
        b = client.solve(phylip=buffer.getvalue(), method="upgmm")
        assert a["result"]["newick"] == b["result"]["newick"]
        assert b["cache"] == "hit"  # identical content, identical key

    def test_default_method_applies(self, client, matrix):
        record = client.solve(matrix)
        assert record["result"]["method"] == "compact"

    def test_async_submit_and_poll(self, client, matrix):
        record = client.solve(matrix, method="upgmm", wait=False)
        assert record["state"] in ("pending", "running", "done")
        job_id = record["id"]
        for _ in range(200):
            polled = client.job(job_id)
            if polled["state"] == "done":
                break
            import time

            time.sleep(0.01)
        assert polled["state"] == "done"
        assert polled["result"]["newick"].endswith(";")

    def test_nj_method_served(self, client, matrix):
        record = client.solve(matrix, method="nj")
        assert record["state"] == "done"
        assert record["result"]["newick"].endswith(";")


class TestErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(JobNotFound):
            client.job("job-999999")

    def test_bad_option_is_failed_job(self, client, matrix):
        record = client.solve(matrix, method="bnb", options={"bogus": 1})
        assert record["state"] == "failed"
        assert "bogus" in record["error"]

    def test_malformed_body_400(self, client):
        with pytest.raises(BadRequest):
            client._request("POST", "/solve", {"method": "upgmm"})

    def test_both_matrix_and_phylip_400(self, client, matrix):
        with pytest.raises(BadRequest):
            client._request(
                "POST", "/solve",
                {"matrix": [[0, 1], [1, 0]], "phylip": "2\na 0 1\nb 1 0"},
            )

    def test_invalid_matrix_400(self, client):
        with pytest.raises(BadRequest):
            client._request(
                "POST", "/solve", {"matrix": [[0, 1], [2, 0]]}
            )

    def test_unknown_path_404(self, client):
        with pytest.raises(ServiceError):
            client._request("GET", "/nope")

    def test_queue_full_maps_to_429(self, matrix):
        gate = threading.Event()
        started = threading.Event()

        def gated(matrix, method, options, recorder):
            started.set()
            gate.wait(10.0)
            return {"method": method, "n_species": matrix.n,
                    "cost": 0.0, "newick": "(x);"}

        sched = Scheduler(workers=1, queue_size=1, runner=gated)
        try:
            with ServiceServer(sched, port=0) as srv:
                client = ServiceClient(srv.url, timeout=30.0)
                client.solve(matrix, options={"tag": 0}, wait=False)
                assert started.wait(10.0)
                client.solve(matrix, options={"tag": 1}, wait=False)
                with pytest.raises(QueueFull):
                    client.solve(matrix, options={"tag": 2}, wait=False)
                gate.set()
        finally:
            gate.set()


class TestIntrospection:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["version"]
        assert health["uptime_seconds"] >= 0

    def test_stats_counts_requests(self, client, matrix):
        client.solve(matrix, method="upgmm")
        client.solve(matrix, method="upgmm")
        stats = client.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["version"]

    def test_healthz_reports_draining_after_close(self, matrix):
        srv = ServiceServer(Scheduler(workers=1), port=0).start()
        client = ServiceClient(srv.url, timeout=30.0)
        assert client.healthz()["status"] == "ok"
        srv.scheduler.shutdown()
        health = client.healthz()
        assert health["status"] == "draining"
        srv.close()


class TestQueuedDeadlineOverHTTP:
    def test_poll_reports_timeout_at_deadline_while_queued(self, matrix):
        import time

        gate = threading.Event()
        started = threading.Event()

        def gated(matrix, method, options, recorder):
            started.set()
            gate.wait(10.0)
            return {"method": method, "n_species": matrix.n,
                    "cost": 0.0, "newick": "(gated);"}

        sched = Scheduler(workers=1, runner=gated)
        try:
            with ServiceServer(sched, port=0) as srv:
                client = ServiceClient(srv.url, timeout=30.0)
                client.solve(
                    matrix, method="upgmm", options={"tag": 0}, wait=False
                )
                assert started.wait(10.0)  # blocker holds the only worker
                doomed = client.solve(
                    matrix, method="upgmm", options={"tag": 1},
                    wait=False, timeout=0.2,
                )
                time.sleep(0.4)
                # The blocker is still running, yet the poll reports the
                # queued job's timeout immediately (HTTP 504 job record).
                polled = client.job(doomed["id"])
                assert polled["state"] == "timeout"
                assert "while queued" in polled["error"]
                gate.set()
        finally:
            gate.set()
