"""Satellite: concurrent submissions of one matrix are deterministic.

The same matrix submitted N times concurrently through the scheduler
must yield byte-identical Newick output for every caller, with the
solve executed exactly once (one ``cache.miss``; everything else is a
dedup share or a cache hit).
"""

import threading

from repro.matrix.generators import clustered_matrix
from repro.obs import Recorder
from repro.service.scheduler import Scheduler


def test_concurrent_identical_submissions_are_deterministic():
    matrix = clustered_matrix([4, 3, 3], seed=7)
    rec = Recorder()
    n_callers = 24
    results = [None] * n_callers
    errors = []
    barrier = threading.Barrier(n_callers)

    def caller(slot: int) -> None:
        try:
            barrier.wait(10.0)
            results[slot] = sched.solve(matrix, "compact", timeout=60.0)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    with Scheduler(workers=4, queue_size=n_callers, recorder=rec) as sched:
        threads = [
            threading.Thread(target=caller, args=(i,)) for i in range(n_callers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)

    assert not errors
    newicks = {r["newick"] for r in results}
    assert len(newicks) == 1, f"non-deterministic output: {newicks}"
    assert all(r["cost"] == results[0]["cost"] for r in results)
    # Exactly one execution: one miss, and every other caller either
    # shared the in-flight job (dedup) or hit the cache.
    assert rec.counter_total("cache.miss") == 1
    executed = len(rec.spans("service.job"))
    deduped = rec.counter_total("queue.deduped")
    hits = rec.counter_total("cache.hit")
    assert executed == 1 + hits
    assert deduped + executed == n_callers


def test_concurrent_mixed_matrices_do_not_cross_talk():
    """Distinct matrices solved concurrently never swap results."""
    matrices = [clustered_matrix([3, 3], seed=s) for s in range(6)]
    expected = {}
    with Scheduler(workers=1) as warmup:
        for i, m in enumerate(matrices):
            expected[i] = warmup.solve(m, "upgmm", timeout=60.0)["newick"]

    results = {}
    lock = threading.Lock()

    def caller(slot: int) -> None:
        payload = sched.solve(matrices[slot % len(matrices)], "upgmm",
                              timeout=60.0)
        with lock:
            results[slot] = payload["newick"]

    with Scheduler(workers=4, queue_size=64) as sched:
        threads = [
            threading.Thread(target=caller, args=(i,)) for i in range(18)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)

    for slot, newick in results.items():
        assert newick == expected[slot % len(matrices)]
