"""Service observability: /metrics, /stats metrics, trace-id propagation."""

import json
import urllib.request

import pytest

from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.obs import Recorder, StreamingRecorder
from repro.obs.metrics import MetricsRegistry
from repro.service.client import ServiceClient
from repro.service.scheduler import Scheduler
from repro.service.server import ServiceServer, resolve_trace_id


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def recorder():
    return Recorder()


@pytest.fixture
def server(registry, recorder):
    scheduler = Scheduler(workers=2, metrics=registry, recorder=recorder)
    with ServiceServer(scheduler, port=0) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=60.0)


class TestMetricsEndpoint:
    def test_exposition_after_requests(self, client, matrix):
        client.solve(matrix, method="upgmm")   # miss
        client.solve(matrix, method="upgmm")   # hit
        text = client.metrics()
        assert 'service_job_seconds_bucket{method="upgmm",cache="miss"' in text
        assert 'service_job_seconds_bucket{method="upgmm",cache="hit"' in text
        assert "cache_miss_total 1" in text
        assert "cache_hit_total 1" in text
        assert 'service_jobs_total{state="completed"} 2' in text
        assert "service_queue_depth 0" in text
        assert "service_inflight 0" in text
        assert "service_workers 2" in text

    def test_content_type_is_prometheus(self, server, client, matrix):
        client.solve(matrix, method="upgmm")
        with urllib.request.urlopen(server.url + "/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            body = resp.read().decode("utf-8")
        # Exposition lines parse: "name{labels} value" or comments.
        for line in body.strip().splitlines():
            assert line.startswith("#") or " " in line

    def test_histogram_sum_and_count_rendered(self, client, matrix):
        client.solve(matrix, method="upgmm")
        text = client.metrics()
        assert 'service_job_seconds_count{method="upgmm",cache="miss"} 1' in text
        assert 'service_job_seconds_sum{method="upgmm",cache="miss"}' in text

    def test_metrics_always_on_without_trace_out(self, client, matrix):
        """No --trace-out, no explicit wiring: metrics still record."""
        client.solve(matrix, method="upgmm")
        stats = client.stats()
        assert "metrics" in stats
        jobs = stats["metrics"]["service.jobs"]
        assert jobs["type"] == "counter"
        assert jobs["series"] == [
            {"labels": {"state": "completed"}, "value": 1.0},
        ]
        lat = stats["metrics"]["service.job.seconds"]
        assert lat["series"][0]["count"] == 1
        assert lat["series"][0]["labels"] == {
            "method": "upgmm", "cache": "miss",
        }


class TestTraceIdResolution:
    def test_inbound_header_honoured(self):
        assert resolve_trace_id("req-abc.123") == "req-abc.123"

    def test_bad_headers_replaced(self):
        for bad in (None, "", "has space", "x" * 129, "newline\nid"):
            minted = resolve_trace_id(bad)
            assert minted != bad
            assert len(minted) == 16
            assert all(c in "0123456789abcdef" for c in minted)


class TestTraceIdRoundTrip:
    def _post_solve(self, server, matrix, *, headers=None, method="upgmm"):
        body = json.dumps({
            "matrix": {
                "values": [list(map(float, row)) for row in matrix.values],
                "labels": matrix.labels,
            },
            "method": method,
        }).encode()
        request = urllib.request.Request(
            server.url + "/solve",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(request, timeout=60.0) as resp:
            return resp.headers, json.loads(resp.read())

    def test_response_echoes_inbound_id(self, server, matrix):
        headers, record = self._post_solve(
            server, matrix, headers={"X-Trace-Id": "my-trace-1"}
        )
        assert headers["X-Trace-Id"] == "my-trace-1"
        assert record["trace_id"] == "my-trace-1"

    def test_id_minted_when_absent(self, server, matrix):
        headers, record = self._post_solve(server, matrix)
        assert record["trace_id"]
        assert headers["X-Trace-Id"] == record["trace_id"]

    def test_job_endpoint_carries_trace_id(self, server, client, matrix):
        record = client.solve(matrix, method="upgmm", trace_id="poll-me")
        polled = client.job(record["id"])
        assert polled["trace_id"] == "poll-me"

    def test_trace_id_reaches_scheduler_and_engine_spans(
        self, server, client, recorder, matrix
    ):
        client.solve(matrix, method="compact", trace_id="deep-1")
        jobs = recorder.spans("service.job")
        assert jobs and all(
            s.attrs["trace_id"] == "deep-1" for s in jobs
        )
        builds = recorder.spans("pipeline.build")
        assert builds and all(
            s.attrs["trace_id"] == "deep-1" for s in builds
        )
        hits = recorder.counters("cache.miss")
        assert hits and all(
            c.attrs["trace_id"] == "deep-1" for c in hits
        )

    def test_trace_id_crosses_the_process_boundary(
        self, server, client, recorder
    ):
        """Acceptance: every mp.worker span carries the HTTP request's id."""
        matrix = random_metric_matrix(8, seed=3)
        record = client.solve(
            matrix,
            method="multiprocess",
            options={"workers": 2},
            trace_id="xproc-7",
            wait_seconds=120.0,
        )
        assert record["state"] == "done"
        workers = recorder.spans("mp.worker")
        assert len(workers) == 2
        for span in workers:
            assert span.attrs["trace_id"] == "xproc-7"
        solves = recorder.spans("mp.solve")
        assert solves and all(
            s.attrs["trace_id"] == "xproc-7" for s in solves
        )


class TestBoundedMemoryUnderLoad:
    @pytest.mark.slow
    def test_thousand_requests_hold_ring_and_metrics_bounded(self, tmp_path):
        """Acceptance: 1000 sequential solves, O(ring) recorder memory."""
        sink = tmp_path / "trace.jsonl"
        recorder = StreamingRecorder(sink, max_events=128)
        registry = MetricsRegistry()
        matrix = clustered_matrix([3, 3], seed=2)
        with Scheduler(
            workers=2, metrics=registry, recorder=recorder
        ) as scheduler:
            for _ in range(1000):
                scheduler.solve(matrix, method="upgmm", timeout=60.0)
        recorder.close()
        # Memory: the ring holds at most max_events, regardless of load.
        assert len(recorder._events) <= 128
        assert recorder.events_streamed >= 2000  # span + counter per job
        # Metrics: series count is label-bounded, not request-bounded.
        snap = registry.snapshot()
        assert sum(len(m["series"]) for m in snap.values()) < 20
        jobs = snap["service.jobs"]["series"]
        assert jobs == [{"labels": {"state": "completed"}, "value": 1000.0}]
        hist = registry.histogram(
            "service.job.seconds", labelnames=("method", "cache")
        )
        assert hist.count(method="upgmm", cache="hit") == 999
        assert hist.count(method="upgmm", cache="miss") == 1
        # The file kept every event the ring dropped.
        from repro.obs import read_jsonl

        assert len(read_jsonl(sink)) == recorder.events_streamed
