"""ResultCache and cache-key semantics: content addressing, LRU, disk."""

import json

import pytest

from repro.matrix.distance_matrix import DistanceMatrix
from repro.service.cache import (
    CACHE_KEY_VERSION,
    ResultCache,
    cache_key,
    canonical_params,
)


class TestDigest:
    def test_equal_matrices_share_digest(self, tiny_matrix):
        twin = DistanceMatrix(
            [[0, 2, 8], [2, 0, 8], [8, 8, 0]], labels=["a", "b", "c"]
        )
        assert tiny_matrix.digest() == twin.digest()

    def test_value_changes_digest(self, tiny_matrix):
        other = DistanceMatrix(
            [[0, 2, 9], [2, 0, 9], [9, 9, 0]], labels=["a", "b", "c"]
        )
        assert tiny_matrix.digest() != other.digest()

    def test_label_changes_digest(self, tiny_matrix):
        other = DistanceMatrix(
            [[0, 2, 8], [2, 0, 8], [8, 8, 0]], labels=["a", "b", "z"]
        )
        assert tiny_matrix.digest() != other.digest()

    def test_label_boundaries_matter(self):
        # Length-prefixing keeps ["ab","c"] distinct from ["a","bc"].
        a = DistanceMatrix([[0, 1], [1, 0]], labels=["ab", "c"])
        b = DistanceMatrix([[0, 1], [1, 0]], labels=["a", "bc"])
        assert a.digest() != b.digest()

    def test_digest_is_hex_sha256(self, tiny_matrix):
        digest = tiny_matrix.digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_digest_memoised(self, tiny_matrix):
        assert tiny_matrix.digest() is tiny_matrix.digest()


class TestCacheKey:
    def test_option_order_is_canonical(self, tiny_matrix):
        a = cache_key(tiny_matrix, "compact", {"a": 1, "b": 2})
        b = cache_key(tiny_matrix, "compact", {"b": 2, "a": 1})
        assert a == b

    def test_method_and_options_distinguish(self, tiny_matrix):
        base = cache_key(tiny_matrix, "compact", {})
        assert base != cache_key(tiny_matrix, "upgmm", {})
        assert base != cache_key(tiny_matrix, "compact", {"reduction": "minimum"})

    def test_canonical_params_sorted(self):
        assert canonical_params("m", {"b": 1, "a": 2}) == canonical_params(
            "m", {"a": 2, "b": 1}
        )


class TestResultCache:
    def test_put_get_roundtrip(self):
        cache = ResultCache(capacity=4)
        cache.put("k1", {"newick": "(a,b);"})
        assert cache.get("k1") == {"newick": "(a,b);"}
        assert cache.get("nope") is None

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh "a"
        cache.put("c", {"v": 3})  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert cache.stats()["evictions"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_stats_counters(self):
        cache = ResultCache(capacity=4)
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, directory=tmp_path)
        first.put("deadbeef", {"newick": "(a,b);", "cost": 3.0})
        # A fresh instance (fresh process in real life) warms from disk.
        second = ResultCache(capacity=4, directory=tmp_path)
        assert len(second) == 0
        assert second.get("deadbeef") == {"newick": "(a,b);", "cost": 3.0}
        assert len(second) == 1  # promoted into memory

    def test_disk_corruption_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=tmp_path)
        (tmp_path / "bad.json").write_text("{ not json")
        assert cache.get("bad") is None

    def test_disk_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps({
                "version": CACHE_KEY_VERSION + 1,
                "key": "old",
                "payload": {"v": 1},
            })
        )
        assert cache.get("old") is None


def _hammer_disk_put(directory, writer: int) -> None:
    """Child-process body: repeatedly write the same key (same payload --
    the cache is content-addressed, concurrent writers are replicas)."""
    cache = ResultCache(capacity=4, directory=directory)
    for _ in range(25):
        cache.put("sharedkey", {"newick": "(a,b);", "cost": 3.0})


class TestDiskRobustness:
    def test_open_sweeps_stale_tmp_files(self, tmp_path):
        import os
        import time

        live = tmp_path / f"k1.tmp.{os.getpid()}.123"
        live.write_text("{}")
        dead_pid = tmp_path / "k2.tmp.999999999.1"
        dead_pid.write_text("{}")
        ancient = tmp_path / f"k3.tmp.{os.getpid()}.9"
        ancient.write_text("{}")
        hour_ago = time.time() - 3600
        os.utime(ancient, (hour_ago, hour_ago))
        entry = tmp_path / "k4.json"
        entry.write_text("{}")

        cache = ResultCache(capacity=4, directory=tmp_path)
        assert cache.stats()["tmp_swept"] == 2
        # A live writer's fresh tmp file is not racing material...
        assert live.exists()
        # ...but a dead writer's, and anything past the grace age, is.
        assert not dead_pid.exists()
        assert not ancient.exists()
        assert entry.exists()

    def test_sweep_tolerates_missing_directory(self, tmp_path):
        cache = ResultCache(capacity=4, directory=tmp_path / "nowhere")
        assert cache.stats()["tmp_swept"] == 0

    def test_concurrent_multiprocess_puts_of_same_key(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_disk_put, args=(tmp_path, i))
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # Last writer won with an identical record; nothing torn, no
        # tmp droppings left behind.
        reader = ResultCache(capacity=4, directory=tmp_path)
        assert reader.get("sharedkey") == {"newick": "(a,b);", "cost": 3.0}
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_disk_write_failure_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(capacity=4, directory=blocker / "sub")
        cache.put("k", {"v": 1})  # disk write fails; memory still serves
        assert cache.get("k") == {"v": 1}
        assert cache.stats()["disk_write_errors"] == 1
