"""Tests for the partial-topology branching structure."""


import pytest

from repro.bnb.bounds import half_matrix
from repro.bnb.topology import PartialTopology
from repro.matrix.generators import random_metric_matrix
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


def topology_for(matrix):
    return PartialTopology.initial(half_matrix(matrix))


def all_completions(matrix):
    """Exhaustively enumerate every complete topology."""
    done = []
    stack = [topology_for(matrix)]
    while stack:
        t = stack.pop()
        if t.is_complete:
            done.append(t)
            continue
        for pos in range(len(t.parent)):
            stack.append(t.child(pos))
    return done


class TestInitial:
    def test_two_leaves(self, tiny_matrix):
        t = topology_for(tiny_matrix)
        assert t.num_leaves == 2
        assert t.next_species == 2
        assert not t.is_complete

    def test_initial_cost(self, tiny_matrix):
        t = topology_for(tiny_matrix)
        # Root height = M[0,1]/2 = 1; omega = 2 * 1.
        assert t.cost == pytest.approx(2.0)

    def test_positions(self, tiny_matrix):
        assert topology_for(tiny_matrix).num_positions() == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            PartialTopology.initial([[0.0]])


class TestBranching:
    def test_child_count_formula(self):
        """k-leaf topology has 2k - 1 graft positions."""
        m = random_metric_matrix(6, seed=0)
        t = topology_for(m)
        for k in range(2, 6):
            assert t.num_positions() == 2 * k - 1
            assert len(t.parent) == 2 * k - 1
            t = t.child(0)

    def test_enumeration_counts_double_factorial(self):
        """(2n-3)!! complete topologies for n leaves."""
        for n, expected in ((3, 3), (4, 15), (5, 105)):
            m = random_metric_matrix(n, seed=1)
            assert len(all_completions(m)) == expected

    def test_signatures_all_distinct(self):
        m = random_metric_matrix(5, seed=2)
        completions = all_completions(m)
        signatures = {t.signature() for t in completions}
        assert len(signatures) == len(completions)

    def test_child_does_not_mutate_parent(self, tiny_matrix):
        t = topology_for(tiny_matrix)
        before = (list(t.parent), list(t.height), t.cost)
        t.child(0)
        assert (list(t.parent), list(t.height), t.cost) == before

    def test_complete_cannot_branch(self, tiny_matrix):
        t = topology_for(tiny_matrix).child(0)
        assert t.is_complete
        with pytest.raises(ValueError):
            t.child(0)

    def test_bad_position_rejected(self, tiny_matrix):
        with pytest.raises(ValueError):
            topology_for(tiny_matrix).child(99)


class TestMinimalRealization:
    def test_cost_matches_recomputed_heights(self):
        """Incremental heights equal a from-scratch minimal realization."""
        m = random_metric_matrix(7, seed=3)
        half = half_matrix(m)
        for t in all_completions(m)[:50]:
            # Recompute each node height from the leaf partition.
            for node in range(len(t.parent)):
                if t.species[node] != -1:
                    assert t.height[node] == 0.0
                    continue
                a, b = t.child_a[node], t.child_b[node]
                pairs_max = max(
                    (
                        half[i][j]
                        for i in _bits(t.leafset[a])
                        for j in _bits(t.leafset[b])
                    ),
                    default=0.0,
                )
                expected = max(t.height[a], t.height[b], pairs_max)
                assert t.height[node] == pytest.approx(expected)

    def test_complete_tree_dominates_matrix(self):
        m = random_metric_matrix(6, seed=4)
        for t in all_completions(m)[:60]:
            tree = t.to_tree(m.labels)
            assert dominates_matrix(tree, m)
            assert is_valid_ultrametric_tree(tree)

    def test_to_tree_cost_matches(self):
        m = random_metric_matrix(6, seed=5)
        for t in all_completions(m)[:60]:
            assert t.to_tree(m.labels).cost() == pytest.approx(t.cost)

    def test_cost_monotone_under_insertion(self):
        """Grafting a species never lowers the realized cost."""
        m = random_metric_matrix(7, seed=6)
        t = topology_for(m)
        while not t.is_complete:
            child = t.child(t.num_leaves % t.num_positions())
            assert child.cost >= t.cost - 1e-12
            t = child


class TestSharedHalf:
    """The ``M / 2`` matrix is read-only search state shared by reference.

    Regression: ``initial()`` and ``from_payload()`` used to deep-copy
    ``half`` into every topology -- O(n^2) waste per solve that also hid
    any accidental mutation of the shared context.
    """

    def test_initial_shares_half_by_reference(self):
        half = half_matrix(random_metric_matrix(6, seed=8))
        assert PartialTopology.initial(half).half is half

    def test_children_share_the_same_half(self):
        half = half_matrix(random_metric_matrix(6, seed=8))
        t = PartialTopology.initial(half)
        assert t.child(0).half is half
        assert t.child(0).child(1).half is half

    def test_from_payload_shares_half(self):
        half = half_matrix(random_metric_matrix(6, seed=8))
        t = PartialTopology.initial(half).child(2)
        rebuilt = PartialTopology.from_payload(t.to_payload(), half)
        assert rebuilt.half is half
        assert rebuilt.cost == t.cost

    def test_solve_leaves_cached_half_unchanged(self):
        from repro.bnb.bounds import search_context
        from repro.bnb.sequential import exact_mut

        m = random_metric_matrix(7, seed=9)
        half, _ = search_context(m, "minfront")
        snapshot = [list(row) for row in half]
        exact_mut(m, use_maxmin=False)  # same matrix object -> same cache
        assert half == snapshot


class TestLca:
    def test_lca_of_initial_pair(self, tiny_matrix):
        t = topology_for(tiny_matrix)
        assert t.lca_node(0, 1) == t.root

    def test_lca_heights_give_distances(self):
        m = random_metric_matrix(6, seed=7)
        t = topology_for(m)
        while not t.is_complete:
            t = t.child(0)
        tree = t.to_tree(m.labels)
        for i in range(m.n):
            for j in range(i + 1, m.n):
                assert 2 * t.lca_height(i, j) == pytest.approx(
                    tree.distance(m.labels[i], m.labels[j])
                )

    def test_unplaced_species_rejected(self, tiny_matrix):
        t = topology_for(tiny_matrix)
        with pytest.raises(ValueError):
            t.lca_node(0, 2)


def _bits(mask):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
