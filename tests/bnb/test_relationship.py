"""Tests for the 3-3 relationship constraint."""

import pytest

from repro.bnb.bounds import half_matrix
from repro.bnb.relationship import insertion_is_consistent, triple_is_consistent
from repro.bnb.topology import PartialTopology
from repro.bnb.sequential import BranchAndBoundSolver
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix, random_ultrametric_matrix


def matrix_ab_close():
    """a-b strictly closest; c farther from both."""
    return DistanceMatrix(
        [[0, 2, 8], [2, 0, 9], [8, 9, 0]], labels=["a", "b", "c"]
    )


def topologies_for_third_species(matrix):
    """All three placements of species 2 into the initial topology."""
    root = PartialTopology.initial(half_matrix(matrix))
    return [root.child(pos) for pos in range(3)]


class TestTripleConsistency:
    def test_correct_placement_accepted(self):
        m = matrix_ab_close()
        values = [list(row) for row in m.values]
        consistent = [
            t
            for t in topologies_for_third_species(m)
            if triple_is_consistent(t, values, 0, 1, 2)
        ]
        # Only the "c above (a, b)" placement keeps a-b as the deep pair.
        assert len(consistent) == 1
        t = consistent[0]
        assert t.lca_node(0, 1) != t.lca_node(0, 2)

    def test_tied_triples_unconstrained(self):
        m = DistanceMatrix(
            [[0, 5, 5], [5, 0, 5], [5, 5, 0]], labels=["a", "b", "c"]
        )
        values = [list(row) for row in m.values]
        for t in topologies_for_third_species(m):
            assert triple_is_consistent(t, values, 0, 1, 2)

    def test_each_closest_pair_selects_one_topology(self):
        # Rotate which pair is closest; exactly one of the three
        # placements should survive each time.
        base = [[0, 2, 8], [2, 0, 9], [8, 9, 0]]
        for a, b in ((0, 1), (0, 2), (1, 2)):
            values = [row[:] for row in base]
            # Make (a, b) the strictly closest pair.
            for i in range(3):
                for j in range(3):
                    if i != j:
                        values[i][j] = 9.0
            values[a][b] = values[b][a] = 2.0
            m = DistanceMatrix(values)
            survivors = [
                t
                for t in topologies_for_third_species(m)
                if triple_is_consistent(t, [list(r) for r in m.values], 0, 1, 2)
            ]
            assert len(survivors) == 1


class TestInsertionConsistency:
    def test_initial_step_only_by_default(self):
        m = matrix_ab_close()
        values = [list(row) for row in m.values]
        for t in topologies_for_third_species(m):
            # Species index other than 2 is never constrained.
            assert insertion_is_consistent(t, values, 1)

    def test_generalized_checks_all_pairs(self):
        m = random_ultrametric_matrix(6, seed=3)
        values = [list(row) for row in m.values]
        root = PartialTopology.initial(half_matrix(m))
        # Grow a full tree; on ultrametric input the optimal (UPGMM-like)
        # insertions pass, but at least one wrong graft must fail.
        level = [root]
        any_rejected = False
        while level and not level[0].is_complete:
            nxt = []
            for t in level[:6]:
                s = t.next_species
                for pos in range(len(t.parent)):
                    child = t.child(pos)
                    if insertion_is_consistent(
                        child, values, s, check_all_pairs=True
                    ):
                        nxt.append(child)
                    else:
                        any_rejected = True
            level = nxt
        assert any_rejected
        assert level  # something always survives on ultrametric input


class TestSolverIntegration:
    @pytest.mark.parametrize("seed", range(4))
    def test_33_preserves_optimal_cost(self, seed):
        """Paper's observation: 3-3 trees are a subset with same result."""
        m = random_metric_matrix(8, seed=seed)
        plain = BranchAndBoundSolver().solve(m)
        with_33 = BranchAndBoundSolver(relationship_33=True).solve(m)
        assert with_33.cost == pytest.approx(plain.cost)

    @pytest.mark.parametrize("seed", range(4))
    def test_33_never_explores_more(self, seed):
        m = random_metric_matrix(9, seed=seed)
        plain = BranchAndBoundSolver().solve(m)
        with_33 = BranchAndBoundSolver(relationship_33=True).solve(m)
        assert (
            with_33.stats.nodes_expanded <= plain.stats.nodes_expanded
        )

    def test_enforce_all_on_ultrametric_input_is_exact(self):
        m = random_ultrametric_matrix(8, seed=5)
        plain = BranchAndBoundSolver().solve(m)
        strict = BranchAndBoundSolver(enforce_all_33=True).solve(m)
        assert strict.cost == pytest.approx(plain.cost)

    def test_filter_counter_increments(self):
        # On at least one instance that the search actually explores the
        # 3-3 filter must reject some child.
        filtered = 0
        for seed in range(8):
            m = random_metric_matrix(9, seed=seed)
            result = BranchAndBoundSolver(enforce_all_33=True).solve(m)
            filtered += result.stats.nodes_filtered_33
        assert filtered >= 1
