"""Tests for anytime incumbent reporting."""

import pytest

from repro.bnb.sequential import BranchAndBoundSolver
from repro.matrix.generators import random_metric_matrix
from repro.tree.checks import dominates_matrix


class TestOnIncumbent:
    def _solve_with_log(self, matrix):
        log = []
        solver = BranchAndBoundSolver(
            on_incumbent=lambda cost, tree: log.append((cost, tree))
        )
        return solver.solve(matrix), log

    def test_seed_reported_first(self):
        m = random_metric_matrix(8, seed=1)
        result, log = self._solve_with_log(m)
        assert log
        assert log[0][0] == pytest.approx(result.stats.initial_upper_bound)

    def test_costs_strictly_decrease(self):
        m = random_metric_matrix(10, seed=13)
        _, log = self._solve_with_log(m)
        costs = [cost for cost, _ in log]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)

    def test_last_incumbent_is_the_result(self):
        m = random_metric_matrix(9, seed=31)
        result, log = self._solve_with_log(m)
        assert log[-1][0] == pytest.approx(result.cost)

    def test_every_incumbent_feasible(self):
        m = random_metric_matrix(9, seed=5)
        _, log = self._solve_with_log(m)
        for cost, tree in log:
            assert dominates_matrix(tree, m)
            assert tree.cost() == pytest.approx(cost)

    def test_incumbent_count_matches_ub_updates(self):
        m = random_metric_matrix(10, seed=13)
        result, log = self._solve_with_log(m)
        # seed + one per strict improvement
        assert len(log) == 1 + result.stats.ub_updates

    def test_no_callback_is_default(self):
        m = random_metric_matrix(7, seed=2)
        assert BranchAndBoundSolver().solve(m).cost > 0
