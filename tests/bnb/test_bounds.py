"""Tests for the lower-bound tails."""

import pytest

from repro.bnb.bounds import (
    LOWER_BOUNDS,
    half_matrix,
    minfront_tails,
    minlink_tails,
    trivial_tails,
)
from repro.bnb.topology import PartialTopology
from repro.bnb.sequential import exact_mut
from repro.matrix.generators import random_metric_matrix
from repro.matrix.maxmin import apply_maxmin


class TestHalfMatrix:
    def test_values(self, tiny_matrix):
        half = half_matrix(tiny_matrix)
        assert half[0][1] == 1.0
        assert half[0][2] == 4.0

    def test_plain_lists(self, tiny_matrix):
        half = half_matrix(tiny_matrix)
        assert isinstance(half, list)
        assert isinstance(half[0][0], float)


class TestTails:
    def test_trivial_all_zero(self, square5):
        assert trivial_tails(square5) == [0.0] * 6

    def test_minfront_suffix_structure(self, square5):
        tails = minfront_tails(square5)
        assert tails[-1] == 0.0
        for k in range(square5.n):
            assert tails[k] >= tails[k + 1] - 1e-12

    def test_minfront_values(self, tiny_matrix):
        # minfront per species: j=0 -> 0; j=1 -> M[0,1]/2 = 1; j=2 ->
        # min(M[0,2], M[1,2])/2 = 4.
        tails = minfront_tails(tiny_matrix)
        assert tails[2] == pytest.approx(4.0)
        assert tails[1] == pytest.approx(5.0)
        assert tails[0] == pytest.approx(5.0)

    def test_minlink_below_minfront(self):
        """minlink minimises over a superset, so its tail is never larger."""
        for seed in range(5):
            m, _ = apply_maxmin(random_metric_matrix(9, seed=seed))
            front = minfront_tails(m)
            link = minlink_tails(m)
            for k in range(2, m.n + 1):
                assert link[k] <= front[k] + 1e-9

    def test_registry(self):
        assert set(LOWER_BOUNDS) == {"trivial", "minlink", "minfront"}


class TestBoundValidity:
    @pytest.mark.parametrize("bound", ["trivial", "minlink", "minfront"])
    @pytest.mark.parametrize("seed", range(4))
    def test_lb_never_exceeds_optimal(self, bound, seed):
        """For every BBT node on the path to an optimum, LB <= OPT."""
        m, _ = apply_maxmin(random_metric_matrix(6, seed=seed))
        tails = LOWER_BOUNDS[bound](m)
        half = half_matrix(m)
        # Every BBT node's LB must stay below the best completion
        # reachable from it; we verify that invariant on a node sample.
        stack = [PartialTopology.initial(half)]
        stack[0].lower_bound = stack[0].cost + tails[2]
        checked = 0
        while stack and checked < 150:
            node = stack.pop()
            best_below = _best_completion(node, m.n)
            assert node.lower_bound <= best_below + 1e-9
            checked += 1
            if not node.is_complete and node.num_leaves < 5:
                tail = tails[node.next_species + 1]
                for pos in range(len(node.parent)):
                    stack.append(node.child(pos, tail))

    def test_minfront_tail_bounds_total_cost(self):
        """tail(2) + initial cost is a valid global lower bound."""
        for seed in range(5):
            m, _ = apply_maxmin(random_metric_matrix(8, seed=seed))
            optimal = exact_mut(m, use_maxmin=False).cost
            tails = minfront_tails(m)
            root = PartialTopology.initial(half_matrix(m))
            assert root.cost + tails[2] <= optimal + 1e-9


def _best_completion(node, n):
    if node.is_complete:
        return node.cost
    best = float("inf")
    stack = [node]
    while stack:
        t = stack.pop()
        if t.is_complete:
            best = min(best, t.cost)
            continue
        for pos in range(len(t.parent)):
            stack.append(t.child(pos))
    return best
