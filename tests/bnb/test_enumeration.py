"""Tests for exhaustive topology enumeration."""

import pytest

from repro.bnb.enumeration import (
    brute_force_mut,
    count_topologies,
    enumerate_topologies,
)
from repro.bnb.sequential import exact_mut
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix
from repro.tree.checks import dominates_matrix


class TestCountTopologies:
    def test_small_values(self):
        # A(1)=A(2)=1, A(3)=3, A(4)=15, A(5)=105, A(6)=945
        assert [count_topologies(n) for n in range(1, 7)] == [1, 1, 3, 15, 105, 945]

    def test_paper_magnitudes(self):
        """The papers quote A(20) > 10^21, A(25) > 10^29, A(30) > 10^37."""
        assert count_topologies(20) > 10**21
        assert count_topologies(25) > 10**29
        assert count_topologies(30) > 10**37

    def test_recurrence(self):
        for n in range(3, 12):
            assert count_topologies(n) == count_topologies(n - 1) * (2 * n - 3)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            count_topologies(0)


class TestEnumerateTopologies:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_counts_match_formula(self, n):
        m = random_metric_matrix(n, seed=n)
        assert sum(1 for _ in enumerate_topologies(m)) == count_topologies(n)

    def test_all_shapes_distinct(self):
        m = random_metric_matrix(5, seed=1)
        signatures = {t.signature() for t in enumerate_topologies(m)}
        assert len(signatures) == 105

    def test_every_topology_feasible(self):
        m = random_metric_matrix(5, seed=2)
        for topology in enumerate_topologies(m):
            assert dominates_matrix(topology.to_tree(m.labels), m)

    def test_limit_enforced(self):
        m = random_metric_matrix(12, seed=3)
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_topologies(m))

    def test_limit_overridable(self):
        m = random_metric_matrix(7, seed=4)
        with pytest.raises(ValueError):
            list(enumerate_topologies(m, limit=6))

    def test_too_few_species(self):
        with pytest.raises(ValueError):
            list(enumerate_topologies(DistanceMatrix([[0.0]])))


class TestBruteForceMut:
    @pytest.mark.parametrize("seed", range(4))
    def test_certifies_branch_and_bound(self, seed):
        m = random_metric_matrix(7, seed=seed)
        tree, cost = brute_force_mut(m)
        assert cost == pytest.approx(exact_mut(m).cost)
        assert dominates_matrix(tree, m)
        assert tree.cost() == pytest.approx(cost)

    def test_single_species(self):
        tree, cost = brute_force_mut(DistanceMatrix([[0.0]], labels=["x"]))
        assert cost == 0.0
        assert tree.leaf_labels == ["x"]
