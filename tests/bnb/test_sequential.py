"""Tests for Algorithm BBU (sequential branch-and-bound)."""

import pytest

from repro.bnb.bounds import half_matrix
from repro.bnb.sequential import BranchAndBoundSolver, exact_mut
from repro.bnb.topology import PartialTopology
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.heuristics.upgma import upgmm
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


def brute_force_optimum(matrix):
    best = float("inf")
    stack = [PartialTopology.initial(half_matrix(matrix))]
    while stack:
        t = stack.pop()
        if t.is_complete:
            best = min(best, t.cost)
            continue
        for pos in range(len(t.parent)):
            stack.append(t.child(pos))
    return best


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_random(self, seed):
        m = random_metric_matrix(7, seed=seed)
        assert exact_mut(m).cost == pytest.approx(brute_force_optimum(m))

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_clustered(self, seed):
        m = hierarchical_matrix([[2, 2], [3]], seed=seed)
        assert exact_mut(m).cost == pytest.approx(brute_force_optimum(m))

    def test_result_is_feasible(self):
        for seed in range(4):
            m = random_metric_matrix(8, seed=seed)
            result = exact_mut(m)
            assert is_valid_ultrametric_tree(result.tree)
            assert dominates_matrix(result.tree, m)
            assert result.tree.cost() == pytest.approx(result.cost)

    def test_never_above_upgmm(self):
        for seed in range(5):
            m = random_metric_matrix(9, seed=seed)
            assert exact_mut(m).cost <= upgmm(m).cost() + 1e-9

    def test_ultrametric_input_recovers_matrix_cost(self):
        """On ultrametric input the optimum equals the UPGMM cost."""
        m = random_ultrametric_matrix(9, seed=2)
        result = exact_mut(m)
        assert result.cost == pytest.approx(upgmm(m).cost())

    def test_labels_preserved(self, square5):
        result = exact_mut(square5)
        assert set(result.tree.leaf_labels) == set(square5.labels)


class TestEdgeCases:
    def test_single_species(self):
        m = DistanceMatrix([[0.0]], labels=["x"])
        result = exact_mut(m)
        assert result.cost == 0.0
        assert result.tree.leaf_labels == ["x"]

    def test_two_species(self):
        m = DistanceMatrix([[0, 10], [10, 0]], labels=["x", "y"])
        result = exact_mut(m)
        assert result.cost == pytest.approx(10.0)

    def test_three_species(self, tiny_matrix):
        result = exact_mut(tiny_matrix)
        # heights 1 and 4: omega = 4 + (4 + 1) = 9.
        assert result.cost == pytest.approx(9.0)

    def test_zero_species_rejected(self):
        import numpy as np

        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        with pytest.raises(ValueError):
            exact_mut(m)

    def test_unknown_bound_rejected(self):
        with pytest.raises(ValueError, match="lower bound"):
            BranchAndBoundSolver(lower_bound="nope")


class TestOptions:
    @pytest.mark.parametrize("bound", ["trivial", "minlink", "minfront"])
    def test_all_bounds_agree_on_cost(self, bound):
        m = random_metric_matrix(8, seed=11)
        assert exact_mut(m, lower_bound=bound).cost == pytest.approx(
            exact_mut(m).cost
        )

    def test_stronger_bounds_expand_fewer_nodes(self):
        m = random_metric_matrix(10, seed=13)
        trivial = exact_mut(m, lower_bound="trivial").stats.nodes_expanded
        minlink = exact_mut(m, lower_bound="minlink").stats.nodes_expanded
        minfront = exact_mut(m, lower_bound="minfront").stats.nodes_expanded
        assert minfront <= minlink <= trivial

    def test_without_maxmin_same_cost(self):
        m = random_metric_matrix(8, seed=17)
        assert exact_mut(m, use_maxmin=False).cost == pytest.approx(
            exact_mut(m).cost
        )

    def test_node_limit_returns_suboptimal_flag(self):
        m = random_metric_matrix(12, seed=19)
        limited = exact_mut(m, node_limit=3)
        assert limited.stats.node_limit_hit
        assert not limited.optimal
        assert limited.cost >= exact_mut(m).cost - 1e-9

    def test_collect_all_returns_optima(self):
        m = random_metric_matrix(7, seed=23)
        result = exact_mut(m, collect_all=True)
        assert result.all_trees
        for tree in result.all_trees:
            assert tree.cost() == pytest.approx(result.cost)
            assert dominates_matrix(tree, m)

    def test_collect_all_finds_every_optimum(self):
        """Cross-check the optima set against exhaustive enumeration."""
        m = random_metric_matrix(6, seed=29)
        result = exact_mut(m, collect_all=True)
        best = brute_force_optimum(m)
        stack = [PartialTopology.initial(half_matrix(m))]
        count = 0
        signatures = set()
        while stack:
            t = stack.pop()
            if t.is_complete:
                if t.cost <= best + 1e-9:
                    signatures.add(t.signature())
                continue
            for pos in range(len(t.parent)):
                stack.append(t.child(pos))
        assert len(result.all_trees) == len(signatures)


class TestStats:
    def test_counters_populated(self):
        m = random_metric_matrix(9, seed=31)
        stats = exact_mut(m).stats
        assert stats.nodes_created > stats.nodes_expanded > 0
        assert stats.initial_upper_bound > 0
        assert stats.best_cost <= stats.initial_upper_bound + 1e-9
        assert stats.elapsed_seconds >= 0

    def test_ub_updates_when_seed_beaten(self):
        found = False
        for seed in range(10):
            m = random_metric_matrix(9, seed=seed)
            stats = exact_mut(m).stats
            if stats.best_cost < stats.initial_upper_bound - 1e-9:
                assert stats.ub_updates >= 1
                found = True
        assert found

    def test_merge_accumulates(self):
        from repro.bnb.sequential import SearchStats

        a = SearchStats(nodes_created=5, nodes_expanded=3, elapsed_seconds=1.0)
        b = SearchStats(nodes_created=7, nodes_expanded=4, elapsed_seconds=0.5)
        a.merge(b)
        assert a.nodes_created == 12
        assert a.nodes_expanded == 7
        assert a.elapsed_seconds == pytest.approx(1.5)

    def test_merge_keeps_best_cost_and_seed_bound(self):
        """Regression: merge() used to drop both fields, so pipeline
        aggregates reported a 0.0 seed bound and an inf best cost."""
        from repro.bnb.sequential import SearchStats

        a = SearchStats(
            initial_upper_bound=10.0, best_cost=9.0, max_open_size=4
        )
        b = SearchStats(
            initial_upper_bound=7.5, best_cost=6.25, max_open_size=9
        )
        a.merge(b)
        assert a.initial_upper_bound == pytest.approx(17.5)
        assert a.best_cost == 6.25  # min, not sum (and not dropped)
        assert a.max_open_size == 9

    def test_merge_into_fresh_accumulator_is_identity(self):
        """Folding one run into SearchStats() must reproduce that run --
        this is exactly what CompactResult.aggregate_search_stats does."""
        from repro.bnb.sequential import SearchStats

        run = SearchStats(
            nodes_created=3,
            initial_upper_bound=4.0,
            best_cost=3.5,
            node_limit_hit=True,
        )
        acc = SearchStats()
        acc.merge(run)
        assert acc.best_cost == 3.5
        assert acc.initial_upper_bound == 4.0
        assert acc.node_limit_hit


class TestGaugeReporting:
    """Regression: max_open_size / prune_fraction / seed_gap_fraction were
    emitted as *counters*, so repeated solves on one recorder summed a
    maximum and summed fractions into nonsense totals.  They now ride on
    the ``bnb.solve`` span as attributes (gauges)."""

    def solve_twice(self):
        from repro.obs import Recorder

        rec = Recorder()
        results = [
            BranchAndBoundSolver(recorder=rec).solve(
                random_metric_matrix(n, seed=seed)
            )
            for n, seed in ((8, 41), (9, 43))
        ]
        return rec, results

    def test_gauges_are_not_counters(self):
        rec, _ = self.solve_twice()
        for name in (
            "bnb.max_open_size",
            "bnb.prune_fraction",
            "bnb.seed_gap_fraction",
        ):
            assert rec.counters(name) == []
        # The genuinely additive statistics still arrive as counters.
        assert rec.counter_total("bnb.nodes_created") > 0

    def test_each_span_carries_its_own_run(self):
        rec, results = self.solve_twice()
        spans = rec.spans("bnb.solve")
        assert len(spans) == 2
        for span, result in zip(spans, results):
            stats = result.stats
            assert span.attrs["bnb.max_open_size"] == stats.max_open_size
            assert span.attrs["bnb.prune_fraction"] == pytest.approx(
                stats.nodes_pruned / stats.nodes_created
            )
            assert span.attrs["bnb.seed_gap_fraction"] == pytest.approx(
                (stats.initial_upper_bound - result.cost)
                / stats.initial_upper_bound
            )
