"""Differential pins: batched branching kernel vs the scalar reference.

Every assertion here uses ``==`` on floats on purpose: the kernel's
contract (documented in :mod:`repro.bnb.kernel`) is *bit-identical*
costs and lower bounds, not approximate agreement -- that is what lets
the solvers switch branching paths without perturbing a single search
decision.
"""

import numpy as np
import pytest

from repro.bnb.bounds import half_matrix
from repro.bnb.kernel import (
    MAX_BATCH_SPECIES,
    BranchEvaluation,
    BranchKernel,
    expand_positions,
)
from repro.bnb.sequential import exact_mut
from repro.bnb.topology import PartialTopology
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.newick import to_newick


def all_ties_matrix(n, value=4.0):
    """Every off-diagonal distance identical: the tie-breaking extreme."""
    values = [
        [0.0 if i == j else value for j in range(n)] for i in range(n)
    ]
    return DistanceMatrix(values)


#: The matrix families the kernel must match the scalar path on:
#: random metric (int and float entries), all-ties (every candidate
#: cost equal), exactly ultrametric, and near-ultrametric.
MATRICES = [
    random_metric_matrix(8, seed=0),
    random_metric_matrix(8, seed=1, integer=False),
    all_ties_matrix(7),
    random_ultrametric_matrix(8, seed=2),
    hierarchical_matrix([[3, 2], [3]], seed=3, jitter=0.05),
]


def walk_topologies(matrix, limit=30):
    """A bounded, deterministic sample of incomplete partial topologies."""
    seen = []
    stack = [PartialTopology.initial(half_matrix(matrix))]
    while stack and len(seen) < limit:
        topo = stack.pop()
        if topo.is_complete:
            continue
        seen.append(topo)
        positions = {0, topo.num_positions() // 2, topo.num_positions() - 1}
        for position in sorted(positions):
            stack.append(topo.child(position))
    return seen


class TestEvaluateMatchesScalar:
    @pytest.mark.parametrize("index", range(len(MATRICES)))
    def test_exact_mode_bit_identical(self, index):
        matrix = MATRICES[index]
        kernel = BranchKernel(half_matrix(matrix))
        for topo in walk_topologies(matrix):
            evaluation = kernel.evaluate(topo, lower_tail=0.5)
            assert isinstance(evaluation, BranchEvaluation)
            assert evaluation.species == topo.next_species
            for position in range(topo.num_positions()):
                child = topo.child(position, 0.5)
                assert evaluation.costs[position] == child.cost
                assert evaluation.lower_bounds[position] == child.lower_bound

    @pytest.mark.parametrize("index", range(len(MATRICES)))
    def test_child_via_tables_field_identical(self, index):
        matrix = MATRICES[index]
        kernel = BranchKernel(half_matrix(matrix))
        for topo in walk_topologies(matrix, limit=10):
            evaluation = kernel.evaluate(topo, lower_tail=0.25)
            for position in range(topo.num_positions()):
                reference = topo.child(position, 0.25)
                fast = topo.child_via_tables(position, evaluation.g, 0.25)
                assert fast.parent == reference.parent
                assert fast.child_a == reference.child_a
                assert fast.child_b == reference.child_b
                assert fast.height == reference.height
                assert fast.leafset == reference.leafset
                assert fast.species == reference.species
                assert fast.root == reference.root
                assert fast.num_leaves == reference.num_leaves
                assert fast.internal_sum == reference.internal_sum
                assert fast.cost == reference.cost
                assert fast.lower_bound == reference.lower_bound


class TestThresholdScreening:
    def thresholds_for(self, topo, lower_tail):
        """Thresholds that exercise exact ties, near-misses and extremes."""
        bounds = sorted(
            {topo.child(p, lower_tail).lower_bound
             for p in range(topo.num_positions())}
        )
        picked = [bounds[0] - 1.0, bounds[-1] + 1.0]
        for bound in bounds:
            picked.extend((bound, bound - 1e-12))
        for low, high in zip(bounds, bounds[1:]):
            picked.append((low + high) / 2.0)
        return picked

    @pytest.mark.parametrize("index", range(len(MATRICES)))
    def test_survivors_match_scalar(self, index):
        matrix = MATRICES[index]
        kernel = BranchKernel(half_matrix(matrix))
        lower_tail = 0.5
        for topo in walk_topologies(matrix, limit=8):
            for threshold in self.thresholds_for(topo, lower_tail):
                fast, fast_pruned = expand_positions(
                    topo, lower_tail, threshold, kernel
                )
                slow, slow_pruned = expand_positions(
                    topo, lower_tail, threshold, None
                )
                assert fast_pruned == slow_pruned
                assert len(fast) == len(slow)
                for a, b in zip(fast, slow):
                    assert a.cost == b.cost
                    assert a.lower_bound == b.lower_bound
                    assert a.parent == b.parent
                    assert a.species == b.species

    @pytest.mark.parametrize("index", range(len(MATRICES)))
    def test_kept_lanes_bit_identical_to_exact_mode(self, index):
        """A threshold above every cost keeps all lanes; the per-lane
        Python walk must then reproduce the vectorised exact mode."""
        matrix = MATRICES[index]
        kernel = BranchKernel(half_matrix(matrix))
        for topo in walk_topologies(matrix, limit=8):
            exact = kernel.evaluate(topo, lower_tail=0.5)
            generous = float(np.max(exact.lower_bounds)) + 1.0
            screened = kernel.evaluate(
                topo, lower_tail=0.5, threshold=generous
            )
            np.testing.assert_array_equal(screened.costs, exact.costs)
            np.testing.assert_array_equal(
                screened.lower_bounds, exact.lower_bounds
            )

    def test_screened_out_lanes_report_inf(self):
        matrix = MATRICES[0]
        kernel = BranchKernel(half_matrix(matrix))
        topo = PartialTopology.initial(half_matrix(matrix))
        evaluation = kernel.evaluate(topo, 0.0, threshold=-1.0)
        assert np.isinf(evaluation.costs).all()
        assert np.isinf(evaluation.lower_bounds).all()


class TestSolverEquivalence:
    STATS_FIELDS = (
        "nodes_created",
        "nodes_expanded",
        "nodes_pruned",
        "nodes_filtered_33",
        "ub_updates",
        "initial_upper_bound",
        "best_cost",
        "max_open_size",
        "node_limit_hit",
    )

    def assert_same_search(self, fast, slow):
        assert fast.cost == slow.cost
        assert to_newick(fast.tree) == to_newick(slow.tree)
        for name in self.STATS_FIELDS:
            assert getattr(fast.stats, name) == getattr(slow.stats, name), name

    @pytest.mark.parametrize("seed", range(4))
    def test_full_search_identical(self, seed):
        matrix = random_metric_matrix(9, seed=seed)
        self.assert_same_search(
            exact_mut(matrix), exact_mut(matrix, use_kernel=False)
        )

    def test_all_ties_tie_breaking_identical(self):
        matrix = all_ties_matrix(7)
        self.assert_same_search(
            exact_mut(matrix), exact_mut(matrix, use_kernel=False)
        )

    def test_collect_all_identical(self):
        matrix = random_metric_matrix(7, seed=5)
        fast = exact_mut(matrix, collect_all=True)
        slow = exact_mut(matrix, use_kernel=False, collect_all=True)
        self.assert_same_search(fast, slow)
        assert sorted(to_newick(t) for t in fast.all_trees) == sorted(
            to_newick(t) for t in slow.all_trees
        )

    def test_relationship_33_identical(self):
        matrix = random_ultrametric_matrix(8, seed=6)
        fast = exact_mut(matrix, relationship_33=True)
        slow = exact_mut(matrix, relationship_33=True, use_kernel=False)
        self.assert_same_search(fast, slow)


class TestOversizedFallback:
    def oversized(self):
        n = MAX_BATCH_SPECIES + 4
        return [
            [0.0 if i == j else 1.0 + ((i * 7 + j) % 5)
             for j in range(n)]
            for i in range(n)
        ]

    def test_supported_flag(self):
        assert BranchKernel(half_matrix(MATRICES[0])).supported
        kernel = BranchKernel(self.oversized())
        assert not kernel.supported

    def test_evaluate_rejected_when_unsupported(self):
        half = self.oversized()
        kernel = BranchKernel(half)
        topo = PartialTopology.initial(half)
        with pytest.raises(ValueError, match="at most"):
            kernel.evaluate(topo)

    def test_expand_positions_falls_back_to_scalar(self):
        half = self.oversized()
        kernel = BranchKernel(half)
        topo = PartialTopology.initial(half)
        fast, fast_pruned = expand_positions(topo, 0.0, 1e9, kernel)
        slow, slow_pruned = expand_positions(topo, 0.0, 1e9, None)
        assert fast_pruned == slow_pruned
        assert [c.cost for c in fast] == [c.cost for c in slow]

    def test_solver_falls_back_silently(self):
        matrix = random_metric_matrix(MAX_BATCH_SPECIES + 4, seed=1)
        fast = exact_mut(matrix, node_limit=5)
        slow = exact_mut(matrix, use_kernel=False, node_limit=5)
        assert fast.cost == slow.cost
        assert fast.stats.nodes_expanded == slow.stats.nodes_expanded
        assert fast.stats.nodes_created == slow.stats.nodes_created
