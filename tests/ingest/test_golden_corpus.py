"""Golden-corpus tests for the ingestion pipeline.

Every fixture under ``tests/data/fasta/`` encodes one real-world input
shape.  The clean ones must sail through all five stages and reproduce
the checked-in manifest pin byte for byte (modulo the volatile fields
``strip_volatile`` removes); every malformed one must fail at *its*
stage with a structured, JSON-safe rejection -- never a traceback.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.ingest import (
    MIN_SEQUENCES,
    STAGE_NAMES,
    IngestRejection,
    Manifest,
    QCConfig,
    run_pipeline,
    strip_volatile,
)
from repro.matrix.distance_matrix import DistanceMatrix

FIXTURES = Path(__file__).resolve().parent.parent / "data" / "fasta"

CLEAN = ["clean_dna.fasta", "protein.fasta", "crlf_wrapped.fasta"]

#: fixture -> (failing stage index, rejection code seen there)
MALFORMED = {
    "truncated.fasta": (0, "truncated-record"),
    "ambiguous.fasta": (1, "ambiguity-fraction"),
    "duplicate_id.fasta": (1, "duplicate-id"),
    "empty_sequence.fasta": (1, "empty-sequence"),
    "unaligned.fasta": (2, "unaligned"),
}


def run_fixture(name, **kwargs):
    return run_pipeline(str(FIXTURES / name), **kwargs)


class TestCleanCorpus:
    @pytest.mark.parametrize("name", CLEAN)
    def test_clean_fixture_passes_end_to_end(self, name):
        outcome = run_fixture(name, verify=True)
        manifest = outcome.manifest
        assert manifest.status == "ok"
        assert outcome.exit_code == 0
        assert not manifest.rejections
        assert [s.name for s in manifest.stages] == list(STAGE_NAMES)
        assert all(s.status == "completed" for s in manifest.stages)
        assert manifest.result["verified_ok"] is True
        assert manifest.result["newick"].endswith(";")
        assert isinstance(outcome.matrix, DistanceMatrix)
        assert outcome.matrix.is_metric()

    def test_crlf_wrapped_matches_clean_dna(self):
        # Same sequences, hostile formatting: CRLF line endings and
        # 20-column wrapping must not change a single distance.
        plain = run_fixture("clean_dna.fasta")
        hostile = run_fixture("crlf_wrapped.fasta")
        assert hostile.matrix.labels == plain.matrix.labels
        np.testing.assert_allclose(hostile.matrix.values, plain.matrix.values)
        assert hostile.manifest.result["newick"] == plain.manifest.result["newick"]

    def test_protein_alphabet_detected(self):
        outcome = run_fixture("protein.fasta")
        qc = outcome.manifest.stage("qc")
        assert qc.detail["alphabet"] == "protein"

    def test_jc_on_dna_exceeds_p(self):
        p = run_fixture("clean_dna.fasta", distance="p")
        jc = run_fixture("clean_dna.fasta", distance="jc")
        off = ~np.eye(p.matrix.n, dtype=bool)
        assert np.all(jc.matrix.values[off] >= p.matrix.values[off])


class TestGoldenManifestPin:
    def test_clean_dna_manifest_matches_pin(self):
        outcome = run_fixture("clean_dna.fasta", verify=True)
        pinned = json.loads(
            (FIXTURES / "clean_dna.manifest.json").read_text()
        )
        assert strip_volatile(outcome.manifest.to_json()) == pinned

    def test_strip_volatile_removes_what_varies(self):
        outcome = run_fixture("clean_dna.fasta", verify=True)
        raw = outcome.manifest.to_json()
        stripped = strip_volatile(raw)
        assert "engine" not in stripped
        assert "path" not in stripped["input"]
        assert all(
            "duration_seconds" not in s for s in stripped["stages"]
        )
        # ... but nothing load-bearing: digests, verdicts, result.
        assert stripped["input"]["sha256"] == raw["input"]["sha256"]
        assert stripped["result"] == raw["result"]


class TestMalformedCorpus:
    @pytest.mark.parametrize("name,expected", MALFORMED.items(),
                             ids=list(MALFORMED))
    def test_fails_at_its_own_stage(self, name, expected):
        stage, code = expected
        outcome = run_fixture(name)
        manifest = outcome.manifest
        assert manifest.status == "failed"
        assert outcome.exit_code == 1
        assert manifest.failed_stage == stage
        assert manifest.stages[stage].status == "failed"
        # Earlier stages completed; nothing past the failure ran.
        assert all(
            s.status == "completed" for s in manifest.stages[:stage]
        )
        assert len(manifest.stages) == stage + 1
        codes = {r.code for r in manifest.rejections}
        assert code in codes
        assert all(r.stage == stage for r in manifest.rejections)

    @pytest.mark.parametrize("name", list(MALFORMED))
    def test_rejections_are_structured_and_json_safe(self, name):
        manifest = run_fixture(name).manifest
        assert manifest.rejections
        for rejection in manifest.rejections:
            record = rejection.to_json()
            assert json.loads(json.dumps(record)) == record
            assert record["stage_name"] == STAGE_NAMES[rejection.stage]
            assert record["code"] and record["detail"]
            assert IngestRejection.from_json(record) == rejection
        # The whole manifest round-trips through JSON too.
        dumped = json.dumps(manifest.to_json())
        assert Manifest.from_json(json.loads(dumped)).status == "failed"

    def test_jc_on_protein_fails_in_distance_stage(self):
        outcome = run_fixture("protein.fasta", distance="jc")
        manifest = outcome.manifest
        assert manifest.status == "failed"
        assert manifest.failed_stage == 2
        assert {r.code for r in manifest.rejections} == {"alphabet-mismatch"}


class TestLenientMode:
    def test_lenient_drops_offenders_and_continues(self):
        outcome = run_fixture("duplicate_id.fasta", mode="lenient")
        manifest = outcome.manifest
        # The duplicate is dropped but the survivors build a tree; the
        # run is "partial", which still exits 1 so scripts notice.
        assert manifest.status == "partial"
        assert outcome.exit_code == 1
        assert {r.code for r in manifest.rejections} == {"duplicate-id"}
        assert outcome.matrix.n == MIN_SEQUENCES
        assert "dup1" in outcome.matrix.labels

    def test_lenient_still_fails_when_too_few_survive(self):
        # Every record trips the ambiguity gate, so even lenient mode
        # cannot scrape together MIN_SEQUENCES survivors.
        outcome = run_fixture("ambiguous.fasta", mode="lenient")
        assert outcome.manifest.status == "failed"
        assert outcome.manifest.failed_stage == 1
        codes = {r.code for r in outcome.manifest.rejections}
        assert "too-few-sequences" in codes

    def test_relaxed_qc_admits_the_ambiguous_corpus(self):
        outcome = run_fixture(
            "ambiguous.fasta", qc=QCConfig(max_ambiguity=0.5)
        )
        assert outcome.manifest.status == "ok"
        assert outcome.exit_code == 0
