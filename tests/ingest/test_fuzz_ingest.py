"""Unit tests for the ingest fuzz family (``repro.verify.fuzz``).

The fuzzer's promise is the pipeline's robustness contract: *no mutated
FASTA ever escapes the structured-failure path*.  These tests pin the
fuzzer itself -- determinism per seed, mutation coverage, and the
failure-archiving machinery (exercised via an injected checker, since a
healthy pipeline gives the real one nothing to archive).
"""

import json
from pathlib import Path

import pytest

import repro.verify.fuzz as fuzz_mod
from repro.verify.fuzz import (
    INGEST_MUTATIONS,
    _ingest_case_failure,
    _mutate_fasta,
    run_ingest_fuzz,
)

FIXTURES = Path(__file__).resolve().parent.parent / "data" / "fasta"


def corpus_files():
    return sorted(FIXTURES.glob("*.fasta"))


class TestDeterminism:
    def test_same_seed_same_campaign(self, tmp_path):
        kwargs = dict(
            budget=12, seed_files=corpus_files(),
            corpus_dir=str(tmp_path / "corpus"),
        )
        first = run_ingest_fuzz(seed=7, **kwargs)
        second = run_ingest_fuzz(seed=7, **kwargs)
        assert first.ok and second.ok
        assert first.cases_run == second.cases_run == 12
        assert first.mutations == second.mutations

    def test_mutation_rotation_covers_every_operator(self, tmp_path):
        report = run_ingest_fuzz(
            seed=1, budget=len(INGEST_MUTATIONS),
            seed_files=corpus_files(),
            corpus_dir=str(tmp_path / "corpus"),
        )
        assert set(report.mutations) == set(INGEST_MUTATIONS)

    def test_mutate_fasta_is_deterministic_per_rng_seed(self):
        import numpy as np

        text = (FIXTURES / "clean_dna.fasta").read_text()
        for mutation in INGEST_MUTATIONS:
            a = _mutate_fasta(text, mutation, np.random.default_rng(5))
            b = _mutate_fasta(text, mutation, np.random.default_rng(5))
            assert a == b, mutation

    def test_synthetic_seeds_when_no_files_given(self, tmp_path):
        report = run_ingest_fuzz(
            seed=2, budget=4, corpus_dir=str(tmp_path / "corpus"),
        )
        assert report.ok
        assert report.cases_run == 4


class TestContract:
    @pytest.mark.parametrize("name", [p.name for p in corpus_files()])
    def test_unmutated_corpus_never_trips_the_checker(self, name):
        # The checker runs the *lenient* pipeline: malformed fixtures
        # must come back as structured rejections, never as failures.
        text = (FIXTURES / name).read_text()
        assert _ingest_case_failure(text, "p") is None


class TestArchiving:
    def test_failures_are_archived_with_a_repro_command(
        self, tmp_path, monkeypatch
    ):
        # Inject a checker that condemns every third case, then assert
        # the corpus entries + sidecars the real path would write.
        calls = {"n": 0}

        def fake_checker(fasta_text, distance):
            calls["n"] += 1
            return "injected failure" if calls["n"] % 3 == 0 else None

        monkeypatch.setattr(fuzz_mod, "_ingest_case_failure", fake_checker)
        corpus = tmp_path / "corpus"
        report = run_ingest_fuzz(
            seed=9, budget=6, seed_files=corpus_files(),
            corpus_dir=str(corpus), max_failures=2,
        )
        assert calls["n"] == 6
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            fasta = Path(failure.corpus_path)
            meta = Path(failure.meta_path)
            assert fasta.exists() and meta.exists()
            sidecar = json.loads(meta.read_text())
            assert sidecar["detail"] == "injected failure"
            assert "repro-mut ingest" in failure.repro_command
            assert str(fasta) in failure.repro_command
