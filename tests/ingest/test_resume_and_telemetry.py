"""Resume semantics and stage telemetry for the ingestion pipeline.

The manifest is the resume token: a re-run against the same input and
configuration must *skip* every already-completed stage (asserted by
counting ``ingest.stage`` spans vs ``ingest.stage.skipped`` counters in
the recorder, not by trusting the manifest's own word), while any drift
in input bytes or configuration must invalidate the token and re-run
everything.
"""

from pathlib import Path

import pytest

from repro.ingest import STAGE_NAMES, Manifest, run_pipeline
from repro.obs import CounterEvent, MetricsRegistry, Recorder, SpanEvent, trace_context

FIXTURES = Path(__file__).resolve().parent.parent / "data" / "fasta"
N_STAGES = len(STAGE_NAMES)


def stage_spans(recorder):
    return [
        e for e in recorder.events
        if isinstance(e, SpanEvent) and e.name == "ingest.stage"
    ]


def skip_counters(recorder):
    return [
        e for e in recorder.events
        if isinstance(e, CounterEvent) and e.name == "ingest.stage.skipped"
    ]


@pytest.fixture
def manifest_path(tmp_path):
    return tmp_path / "manifest.json"


def run(manifest_path, recorder, **kwargs):
    kwargs.setdefault("tree_method", "upgmm")
    return run_pipeline(
        str(FIXTURES / "clean_dna.fasta"),
        manifest_path=manifest_path,
        recorder=recorder,
        **kwargs,
    )


class TestResume:
    def test_first_run_executes_every_stage(self, manifest_path):
        rec = Recorder()
        outcome = run(manifest_path, rec)
        assert outcome.manifest.status == "ok"
        spans = stage_spans(rec)
        assert [s.attrs["stage"] for s in spans] == list(STAGE_NAMES)
        assert not skip_counters(rec)
        assert outcome.manifest.resumed_from == 0

    def test_rerun_skips_all_five_stages(self, manifest_path):
        first = run(manifest_path, Recorder())
        rec = Recorder()
        second = run(manifest_path, rec)
        assert not stage_spans(rec), "a completed run must not re-execute"
        skipped = skip_counters(rec)
        assert [c.attrs["stage"] for c in skipped] == list(STAGE_NAMES)
        assert second.manifest.resumed_from == N_STAGES
        assert second.manifest.status == "ok"
        assert second.manifest.result == first.manifest.result

    def test_partial_manifest_resumes_midway(self, manifest_path):
        run(manifest_path, Recorder())
        # Chop the saved manifest back to parse+qc, as if the process
        # died between stages; the re-run must pick up at `distance`.
        prior = Manifest.load(manifest_path)
        prior.stages = prior.stages[:2]
        prior.result = None
        prior.save(manifest_path)

        rec = Recorder()
        outcome = run(manifest_path, rec)
        assert [c.attrs["stage"] for c in skip_counters(rec)] == ["parse", "qc"]
        assert [s.attrs["stage"] for s in stage_spans(rec)] == [
            "distance", "repair", "tree",
        ]
        assert outcome.manifest.resumed_from == 2
        assert outcome.manifest.status == "ok"

    def test_changed_input_invalidates_the_token(self, manifest_path, tmp_path):
        run(manifest_path, Recorder())
        mutated = tmp_path / "mutated.fasta"
        text = (FIXTURES / "clean_dna.fasta").read_text()
        mutated.write_text(text.replace("ATGGCA", "ATGGCC", 1))
        rec = Recorder()
        outcome = run_pipeline(
            str(mutated), manifest_path=manifest_path,
            recorder=rec, tree_method="upgmm",
        )
        assert len(stage_spans(rec)) == N_STAGES
        assert not skip_counters(rec)
        assert outcome.manifest.resumed_from == 0

    def test_changed_config_invalidates_the_token(self, manifest_path):
        run(manifest_path, Recorder())
        rec = Recorder()
        run(manifest_path, rec, distance="jc")
        assert len(stage_spans(rec)) == N_STAGES
        assert not skip_counters(rec)

    def test_verify_flag_does_not_invalidate_the_token(self, manifest_path):
        # `verify` only adds oracle checks; the artifacts are identical,
        # so toggling it must not force a re-run.
        run(manifest_path, Recorder())
        rec = Recorder()
        outcome = run(manifest_path, rec, verify=True)
        assert not stage_spans(rec)
        assert outcome.manifest.resumed_from == N_STAGES

    def test_corrupt_manifest_starts_fresh(self, manifest_path):
        manifest_path.write_text("{not json")
        rec = Recorder()
        outcome = run(manifest_path, rec)
        assert len(stage_spans(rec)) == N_STAGES
        assert outcome.manifest.status == "ok"
        # ... and the corrupt token was replaced by a good one.
        assert Manifest.load(manifest_path).status == "ok"

    def test_failed_run_reruns_its_failed_stage(self, manifest_path):
        path = str(FIXTURES / "truncated.fasta")
        first = run_pipeline(path, manifest_path=manifest_path)
        assert first.manifest.status == "failed"
        rec = Recorder()
        second = run_pipeline(path, manifest_path=manifest_path, recorder=rec)
        # Nothing completed, so nothing skips; the failure reproduces
        # without the rejection list growing across attempts.
        assert not skip_counters(rec)
        assert [s.attrs["stage"] for s in stage_spans(rec)] == ["parse"]
        assert len(second.manifest.rejections) == len(first.manifest.rejections)


class TestTelemetry:
    def test_spans_carry_the_ambient_trace_id(self, manifest_path):
        rec = Recorder()
        with trace_context("ingest-trace-9"):
            run(manifest_path, rec)
        spans = stage_spans(rec)
        assert len(spans) == N_STAGES
        assert all(s.attrs["trace_id"] == "ingest-trace-9" for s in spans)

    def test_stage_latency_histogram_is_populated(self, manifest_path):
        registry = MetricsRegistry()
        run(manifest_path, Recorder(), metrics=registry)
        text = registry.render_prometheus()
        assert "ingest_stage_seconds" in text
        for stage in STAGE_NAMES:
            assert f'stage="{stage}"' in text

    def test_run_and_failure_counters(self, manifest_path, tmp_path):
        rec = Recorder()
        registry = MetricsRegistry()
        run(manifest_path, rec, metrics=registry)
        run_pipeline(
            str(FIXTURES / "truncated.fasta"),
            manifest_path=tmp_path / "bad.json",
            recorder=rec, metrics=registry,
        )
        text = registry.render_prometheus()
        assert "ingest_runs_total 1" in text
        assert "ingest_failures_total 1" in text
        names = [e.name for e in rec.events if isinstance(e, CounterEvent)]
        assert "ingest.records" in names
        assert "ingest.rejections" in names
