"""CLI contract for ``repro-mut ingest`` (and ``fuzz --ingest``).

Exit-code discipline is the whole point: 0 only for a clean end-to-end
run, 1 for any rejection (strict failure *or* a lenient run that had to
drop records), 2 for usage errors -- so shell pipelines can branch on
the outcome without parsing the report.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.ingest import STAGE_NAMES
from repro.obs import SpanEvent, read_jsonl

FIXTURES = Path(__file__).resolve().parent.parent / "data" / "fasta"


def fixture(name):
    return str(FIXTURES / name)


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["ingest", fixture("clean_dna.fasta")]) == 0
        out = capsys.readouterr().out
        assert "status : ok" in out
        for stage in STAGE_NAMES:
            assert stage in out

    @pytest.mark.parametrize("name", [
        "truncated.fasta", "ambiguous.fasta", "duplicate_id.fasta",
        "empty_sequence.fasta", "unaligned.fasta",
    ])
    def test_malformed_fixture_exits_one(self, name, capsys):
        assert main(["ingest", fixture(name)]) == 1
        err = capsys.readouterr().err
        assert "REJECTED stage=" in err

    def test_rejection_lines_name_stage_and_code(self, capsys):
        main(["ingest", fixture("truncated.fasta")])
        err = capsys.readouterr().err
        assert "stage=0(parse)" in err
        assert "code=truncated-record" in err

    def test_lenient_partial_run_still_exits_one(self, capsys):
        assert main([
            "ingest", fixture("duplicate_id.fasta"), "--mode", "lenient",
        ]) == 1
        captured = capsys.readouterr()
        assert "status : partial" in captured.out
        assert "code=duplicate-id" in captured.err

    def test_missing_file_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", "/nonexistent/reads.fasta"])
        assert excinfo.value.code == 2

    def test_bad_qc_flags_are_usage_errors(self):
        for argv in (
            ["ingest", fixture("clean_dna.fasta"), "--min-length", "0"],
            ["ingest", fixture("clean_dna.fasta"), "--max-ambiguity", "1.5"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2


class TestArtifacts:
    def test_manifest_and_json_report(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert main([
            "ingest", fixture("clean_dna.fasta"),
            "--manifest", str(manifest_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["result"]["newick"].endswith(";")
        on_disk = json.loads(manifest_path.read_text())
        assert on_disk["input"]["sha256"] == payload["input"]["sha256"]

    def test_resume_is_reported(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        argv = [
            "ingest", fixture("clean_dna.fasta"),
            "--manifest", str(manifest_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "resumed" in capsys.readouterr().out

    def test_trace_out_writes_stage_spans(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "ingest", fixture("clean_dna.fasta"),
            "--trace-out", str(trace_path),
        ]) == 0
        events = read_jsonl(trace_path)
        stages = [
            e.attrs["stage"] for e in events
            if isinstance(e, SpanEvent) and e.name == "ingest.stage"
        ]
        assert stages == list(STAGE_NAMES)


class TestFuzzIngest:
    def test_fuzz_ingest_over_the_corpus(self, tmp_path, capsys):
        assert main([
            "fuzz", "--ingest",
            "--fasta-dir", str(FIXTURES),
            "--budget", "8", "--seed", "3",
            "--corpus", str(tmp_path / "corpus"),
        ]) == 0
        out = capsys.readouterr().out
        assert "cases    : 8/8" in out
        assert "verdict  : OK" in out

    def test_fuzz_ingest_empty_dir_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "fuzz", "--ingest", "--fasta-dir", str(tmp_path),
                "--budget", "2",
            ])
        assert excinfo.value.code == 2
