"""Property tests backing the verification subsystem (PR satellite).

Two guarantees the oracles lean on are pinned here as properties:

* :func:`repro.matrix.repair.metric_closure` is idempotent and always
  produces a metric -- the fuzz families rely on it to turn raw noise
  into legal inputs;
* the Newick serialize -> parse round trip preserves the topology and
  the merge heights of randomly generated ultrametric trees -- the
  ``newick`` oracle and the service payload path both assume it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import metric_closure
from repro.tree.compare import robinson_foulds
from repro.tree.newick import parse_newick, to_newick
from repro.tree.ultrametric import UltrametricTree

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def raw_symmetric_matrices(draw, min_n=3, max_n=8):
    """Symmetric, zero-diagonal, positive matrices -- not yet metric."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.uniform(1.0, 100.0, size=(n, n))
    values = np.triu(values, k=1)
    values = values + values.T
    return DistanceMatrix(values, validate=False)


@st.composite
def random_ultrametric_trees(draw, min_n=3, max_n=10):
    """A random binary ultrametric tree via seeded agglomeration."""
    n = draw(st.integers(min_n, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    forest = [UltrametricTree.leaf(f"s{i}") for i in range(n)]
    height = 0.0
    while len(forest) > 1:
        i, j = sorted(rng.choice(len(forest), size=2, replace=False))
        height = height + float(rng.uniform(0.1, 5.0))
        joined = UltrametricTree.join(forest[int(i)], forest[int(j)], height)
        forest = [
            t for k, t in enumerate(forest) if k not in (int(i), int(j))
        ] + [joined]
    return forest[0]


class TestMetricClosureProperties:
    @RELAXED
    @given(raw_symmetric_matrices())
    def test_output_is_metric(self, matrix):
        closed = metric_closure(matrix)
        assert closed.is_metric()

    @RELAXED
    @given(raw_symmetric_matrices())
    def test_idempotent(self, matrix):
        # Idempotent up to float associativity: re-closing a closed
        # matrix re-derives the same shortest paths, but summing a path
        # in a different order can move the last bits.
        once = metric_closure(matrix)
        twice = metric_closure(once)
        assert np.allclose(once.values, twice.values, rtol=0, atol=1e-9)
        assert twice.labels == once.labels

    @RELAXED
    @given(raw_symmetric_matrices())
    def test_never_increases_distances(self, matrix):
        closed = metric_closure(matrix)
        assert (closed.values <= matrix.values + 1e-12).all()


class TestNewickRoundTripProperties:
    @RELAXED
    @given(random_ultrametric_trees())
    def test_topology_preserved(self, tree):
        parsed = parse_newick(to_newick(tree, precision=12))
        assert sorted(parsed.leaf_labels) == sorted(tree.leaf_labels)
        assert robinson_foulds(tree, parsed) == 0

    @RELAXED
    @given(random_ultrametric_trees())
    def test_heights_preserved(self, tree):
        parsed = parse_newick(to_newick(tree, precision=12))

        def merge_heights(t):
            return sorted(
                node.height
                for node in t.root.walk()
                if not node.is_leaf
            )

        assert merge_heights(parsed) == pytest.approx(
            merge_heights(tree), abs=1e-9
        )
        original = tree.distance_matrix(tree.leaf_labels)
        reparsed = parsed.distance_matrix(tree.leaf_labels)
        assert np.abs(original.values - reparsed.values).max() < 1e-9

    @RELAXED
    @given(random_ultrametric_trees())
    def test_cost_preserved(self, tree):
        parsed = parse_newick(to_newick(tree, precision=12))
        assert parsed.cost() == pytest.approx(tree.cost(), rel=1e-9)
