"""Property-based tests (hypothesis) for the ingestion distance layer.

The pipeline's correctness rests on three mathematical facts: sequence
distances are honest premetrics (symmetric, zero on the diagonal,
bounded), the Jukes-Cantor correction is a monotone transform of the
p-distance below saturation, and whatever matrix leaves the repair
stage satisfies the full metric axioms the compact-set construction
assumes.  Each gets a property here over hypothesis-generated inputs.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.matrix.distance_matrix import DistanceMatrix
from repro.sequences.distance import (
    SATURATION_THRESHOLD,
    distance_matrix_from_sequences,
    edit_distance,
    jukes_cantor_distance,
    p_distance,
    resolve_method,
    saturated_pairs,
)

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


@st.composite
def aligned_pairs(draw, min_length=1, max_length=40):
    length = draw(st.integers(min_length, max_length))
    fixed = st.text(alphabet="ACGT", min_size=length, max_size=length)
    return draw(fixed), draw(fixed)


@st.composite
def aligned_families(draw, min_n=3, max_n=6):
    n = draw(st.integers(min_n, max_n))
    length = draw(st.integers(4, 30))
    fixed = st.text(alphabet="ACGT", min_size=length, max_size=length)
    seqs = draw(
        st.lists(fixed, min_size=n, max_size=n, unique=True)
    )
    return {f"s{i}": seq for i, seq in enumerate(seqs)}


class TestPremetricAxioms:
    @RELAXED
    @given(aligned_pairs())
    def test_p_distance_symmetric_bounded(self, pair):
        a, b = pair
        d = p_distance(a, b)
        assert d == p_distance(b, a)
        assert 0.0 <= d <= 1.0
        assert p_distance(a, a) == 0.0

    @RELAXED
    @given(dna, dna)
    def test_edit_distance_symmetric_bounded(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert 0 <= d <= max(len(a), len(b))
        assert edit_distance(a, a) == 0

    @RELAXED
    @given(dna, dna, dna)
    def test_edit_distance_triangle(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @RELAXED
    @given(aligned_pairs())
    def test_jc_symmetric_nonnegative(self, pair):
        a, b = pair
        d = jukes_cantor_distance(a, b)
        assert d == jukes_cantor_distance(b, a)
        assert d >= 0.0
        assert jukes_cantor_distance(a, a) == 0.0


class TestJukesCantor:
    def test_monotone_in_p_below_saturation(self):
        # JC is a closed-form monotone transform of p; check it on a
        # dense sweep right up to the saturation threshold.
        grid = np.linspace(0.0, SATURATION_THRESHOLD - 1e-6, 200)
        corrected = [
            -0.75 * math.log1p(-4.0 * p / 3.0) for p in grid
        ]
        assert all(b > a for a, b in zip(corrected, corrected[1:]))
        # And JC always dominates p (correction only stretches).
        assert all(c >= p for p, c in zip(grid, corrected))

    @RELAXED
    @given(aligned_pairs(min_length=8))
    def test_jc_dominates_p_on_sequences(self, pair):
        a, b = pair
        p = p_distance(a, b)
        if p >= SATURATION_THRESHOLD:
            return  # saturated: JC is undefined/clamped there
        assert jukes_cantor_distance(a, b) >= p

    @RELAXED
    @given(aligned_families())
    def test_saturated_pairs_agree_with_p_distance(self, family):
        order = sorted(family)
        flagged = saturated_pairs(family, order=order, threshold=0.5)
        expected = {
            (a, b)
            for i, a in enumerate(order)
            for b in order[i + 1:]
            if p_distance(family[a], family[b]) >= 0.5
        }
        assert {(a, b) for a, b, _ in flagged} == expected


class TestPipelineMatrix:
    @RELAXED
    @given(aligned_families(), st.sampled_from(["p", "jc", "edit"]))
    def test_repaired_matrix_is_metric(self, family, method):
        matrix = distance_matrix_from_sequences(
            family, method=resolve_method(method), repair=True
        )
        assert isinstance(matrix, DistanceMatrix)
        assert matrix.is_metric()
        np.testing.assert_allclose(matrix.values, matrix.values.T)
        assert np.all(np.diag(matrix.values) == 0.0)

    @RELAXED
    @given(aligned_families())
    def test_raw_vs_repaired_perturbation_is_bounded(self, family):
        raw = distance_matrix_from_sequences(family, method="p", repair=False)
        fixed = distance_matrix_from_sequences(family, method="p", repair=True)
        # Repair never moves an entry past the largest raw distance.
        assert np.max(np.abs(fixed.values - raw.values)) <= np.max(raw.values) + 1e-12

    @pytest.mark.parametrize("alias,canonical", [
        ("jc", "jukes-cantor"), ("levenshtein", "edit"), ("hamming", "p-count"),
        ("p", "p"), ("edit", "edit"),
    ])
    def test_method_aliases_resolve(self, alias, canonical):
        assert resolve_method(alias) == canonical

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            resolve_method("manhattan")
