"""Property-based tests (hypothesis) for the core invariants.

Each property mirrors a lemma or guarantee stated in DESIGN.md:
metric-closure correctness, compact-set scan completeness and laminarity,
UPGMM feasibility, branch-and-bound optimality against exhaustive search,
lower-bound admissibility, merge safety, and serialization round trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bnb.bounds import LOWER_BOUNDS, half_matrix
from repro.bnb.sequential import exact_mut
from repro.bnb.topology import PartialTopology
from repro.core.pipeline import CompactSetTreeBuilder
from repro.graph.compact_sets import (
    compact_sets_brute_force,
    find_compact_sets,
    laminar_violations,
)
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin, is_maxmin_permutation
from repro.matrix.repair import metric_closure
from repro.parallel.pools import SortedPool
from repro.sequences.distance import edit_distance
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree
from repro.tree.newick import parse_newick, to_newick

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def raw_matrices(draw, min_n=3, max_n=7):
    """Symmetric non-negative matrices with zero diagonal (maybe non-metric)."""
    n = draw(st.integers(min_n, max_n))
    entries = draw(
        st.lists(
            st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    values = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            values[i, j] = values[j, i] = entries[k]
            k += 1
    return DistanceMatrix(values, validate=False)


@st.composite
def metric_matrices(draw, min_n=3, max_n=7):
    return metric_closure(draw(raw_matrices(min_n, max_n)))


class TestClosureProperties:
    @RELAXED
    @given(raw_matrices())
    def test_closure_is_metric_and_dominated(self, matrix):
        closed = metric_closure(matrix)
        assert closed.is_metric()
        assert (closed.values <= matrix.values + 1e-9).all()

    @RELAXED
    @given(raw_matrices())
    def test_closure_idempotent(self, matrix):
        once = metric_closure(matrix)
        twice = metric_closure(once)
        assert np.allclose(once.values, twice.values)


class TestMaxminProperties:
    @RELAXED
    @given(metric_matrices())
    def test_apply_maxmin_yields_maxmin_order(self, matrix):
        ordered, perm = apply_maxmin(matrix)
        assert sorted(perm) == list(range(matrix.n))
        assert is_maxmin_permutation(ordered)


class TestCompactSetProperties:
    @RELAXED
    @given(metric_matrices(max_n=7))
    def test_scan_equals_brute_force(self, matrix):
        assert set(find_compact_sets(matrix)) == set(
            compact_sets_brute_force(matrix)
        )

    @RELAXED
    @given(metric_matrices())
    def test_laminar_family(self, matrix):
        sets = find_compact_sets(
            matrix, include_singletons=True, include_universe=True
        )
        assert laminar_violations(sets) == []


class TestHeuristicProperties:
    @RELAXED
    @given(metric_matrices())
    def test_upgmm_dominates(self, matrix):
        tree = upgmm(matrix)
        assert is_valid_ultrametric_tree(tree)
        assert dominates_matrix(tree, matrix)

    @RELAXED
    @given(metric_matrices())
    def test_upgma_below_upgmm(self, matrix):
        assert upgma(matrix).cost() <= upgmm(matrix).cost() + 1e-9


class TestBnbProperties:
    @RELAXED
    @given(metric_matrices(max_n=6))
    def test_bnb_optimal_vs_exhaustive(self, matrix):
        best = float("inf")
        stack = [PartialTopology.initial(half_matrix(matrix))]
        while stack:
            t = stack.pop()
            if t.is_complete:
                best = min(best, t.cost)
                continue
            for pos in range(len(t.parent)):
                stack.append(t.child(pos))
        result = exact_mut(matrix)
        assert result.cost == pytest.approx(best)
        assert dominates_matrix(result.tree, matrix)

    @RELAXED
    @given(metric_matrices(max_n=6), st.sampled_from(sorted(LOWER_BOUNDS)))
    def test_lower_bound_admissible_at_root(self, matrix, bound):
        ordered, _ = apply_maxmin(matrix)
        tails = LOWER_BOUNDS[bound](ordered)
        root = PartialTopology.initial(half_matrix(ordered))
        assert root.cost + tails[2] <= exact_mut(matrix).cost + 1e-9


class TestPipelineProperties:
    @RELAXED
    @given(metric_matrices(max_n=7))
    def test_compact_pipeline_sandwich(self, matrix):
        """exact <= compact(maximum) <= UPGMM, and the tree is feasible."""
        result = CompactSetTreeBuilder().build(matrix)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, matrix)
        assert exact_mut(matrix).cost <= result.cost + 1e-9
        assert result.cost <= upgmm(matrix).cost() + 1e-9


class TestSerializationProperties:
    @RELAXED
    @given(metric_matrices())
    def test_newick_round_trip_preserves_distances(self, matrix):
        tree = upgmm(matrix)
        back = parse_newick(to_newick(tree, precision=12))
        labels = tree.leaf_labels
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                assert back.distance(a, b) == pytest.approx(
                    tree.distance(a, b), abs=1e-6
                )

    @RELAXED
    @given(metric_matrices())
    def test_induced_matrix_is_ultrametric(self, matrix):
        induced = upgmm(matrix).distance_matrix(matrix.labels)
        assert induced.is_ultrametric()


class TestPoolProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=0, max_size=40),
        st.lists(st.booleans(), min_size=40, max_size=40),
    )
    def test_pool_model(self, priorities, pop_best_flags):
        """The double-heap pool behaves like a sorted list."""
        pool = SortedPool()
        model = []
        for p in priorities:
            pool.push(p, p)
            model.append(p)
        model.sort()
        for take_best in pop_best_flags:
            if not model:
                assert pool.pop_best() is None
                break
            if take_best:
                assert pool.pop_best() == model.pop(0)
            else:
                assert pool.pop_worst() == model.pop()
            assert len(pool) == len(model)


class TestEditDistanceProperties:
    DNA = st.text(alphabet="ACGT", min_size=0, max_size=12)

    @settings(max_examples=50, deadline=None)
    @given(DNA, DNA)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=50, deadline=None)
    @given(DNA)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=30, deadline=None)
    @given(DNA, DNA, DNA)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=30, deadline=None)
    @given(DNA, DNA)
    def test_bounded_by_max_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))
