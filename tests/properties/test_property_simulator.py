"""Property-based tests of the cluster simulator.

The strongest guarantee the simulator can offer: for *any* cluster
configuration -- worker count, latencies, balancing flags, heterogeneous
speeds -- the run terminates and returns the exact optimum.  Hypothesis
explores that configuration space; a scheduling deadlock or a bound
leak would surface here as a hang or a wrong cost.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bnb.sequential import exact_mut
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import metric_closure
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound

SIM = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw):
    n = draw(st.integers(4, 7))
    entries = draw(
        st.lists(
            st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    values = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            values[i, j] = values[j, i] = entries[k]
            k += 1
    return metric_closure(DistanceMatrix(values, validate=False))


@st.composite
def configs(draw):
    workers = draw(st.integers(1, 12))
    speeds = None
    if draw(st.booleans()) and workers > 1:
        speeds = tuple(
            draw(
                st.lists(
                    st.floats(0.25, 2.0, allow_nan=False),
                    min_size=workers,
                    max_size=workers,
                )
            )
        )
    return ClusterConfig(
        n_workers=workers,
        ub_broadcast_latency=draw(st.floats(0.0, 300.0)),
        transfer_latency=draw(st.floats(0.0, 300.0)),
        prebranch_factor=draw(st.integers(1, 4)),
        donate_when_global_empty=draw(st.booleans()),
        steal_from_loaded=draw(st.booleans()),
        worker_speeds=speeds,
    )


class TestSimulatorProperties:
    @SIM
    @given(instances(), configs())
    def test_terminates_with_exact_optimum(self, matrix, config):
        result = ParallelBranchAndBound(config).solve(matrix)
        assert result.cost == pytest.approx(exact_mut(matrix).cost)

    @SIM
    @given(instances(), configs())
    def test_accounting_is_consistent(self, matrix, config):
        result = ParallelBranchAndBound(config).solve(matrix)
        assert result.makespan >= result.setup_time
        assert result.total_nodes_expanded >= 0
        assert result.messages >= 0
        assert len(result.workers) == config.n_workers
        for stats in result.workers:
            assert stats.busy_time >= 0
            assert stats.busy_time <= result.makespan + 1e-6

    @SIM
    @given(instances(), configs())
    def test_deterministic(self, matrix, config):
        a = ParallelBranchAndBound(config).solve(matrix)
        b = ParallelBranchAndBound(config).solve(matrix)
        assert a.makespan == b.makespan
        assert a.total_nodes_expanded == b.total_nodes_expanded
        assert a.messages == b.messages
