"""Property-based tests for the extension modules.

Covers the invariants introduced after the core reproduction: the O(n^2)
compact-set algorithm, greedy insertion, tree comparison metrics,
consensus, serialization surfaces (FASTA, scipy linkage), and the
matrix statistics.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bnb.sequential import exact_mut
from repro.graph.compact_linear import find_compact_sets_fast
from repro.graph.compact_sets import find_compact_sets
from repro.heuristics.greedy import greedy_insertion
from repro.heuristics.upgma import upgma, upgmm
from repro.interop.scipy_hierarchy import linkage_to_tree, tree_to_linkage
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import metric_closure
from repro.matrix.stats import structure_score, ultrametricity_defect
from repro.sequences.fasta import read_fasta, write_fasta
from repro.tree.compare import (
    cophenetic_correlation,
    normalized_robinson_foulds,
    robinson_foulds,
)
from repro.tree.consensus import majority_consensus
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def metric_matrices(draw, min_n=3, max_n=7):
    n = draw(st.integers(min_n, max_n))
    entries = draw(
        st.lists(
            st.floats(1.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    values = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            values[i, j] = values[j, i] = entries[k]
            k += 1
    return metric_closure(DistanceMatrix(values, validate=False))


class TestFastCompactSets:
    @RELAXED
    @given(metric_matrices())
    def test_fast_equals_scan(self, matrix):
        assert find_compact_sets_fast(matrix) == find_compact_sets(matrix)


class TestGreedyProperties:
    @RELAXED
    @given(metric_matrices(max_n=6))
    def test_greedy_sandwich(self, matrix):
        """optimal <= greedy, and the greedy tree is always feasible."""
        tree = greedy_insertion(matrix)
        assert is_valid_ultrametric_tree(tree)
        assert dominates_matrix(tree, matrix)
        assert tree.cost() >= exact_mut(matrix).cost - 1e-9


class TestComparisonProperties:
    @RELAXED
    @given(metric_matrices())
    def test_rf_is_a_pseudometric(self, matrix):
        a = upgma(matrix)
        b = upgmm(matrix)
        assert robinson_foulds(a, a.copy()) == 0
        assert robinson_foulds(a, b) == robinson_foulds(b, a)
        assert 0.0 <= normalized_robinson_foulds(a, b) <= 1.0

    @RELAXED
    @given(metric_matrices())
    def test_cophenetic_bounded(self, matrix):
        value = cophenetic_correlation(upgmm(matrix), matrix)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestConsensusProperties:
    @RELAXED
    @given(metric_matrices(max_n=6))
    def test_consensus_of_heuristics_is_valid(self, matrix):
        trees = [upgma(matrix), upgmm(matrix), greedy_insertion(matrix)]
        consensus = majority_consensus(trees)
        assert set(consensus.leaf_labels) == set(matrix.labels)
        assert is_valid_ultrametric_tree(consensus, binary=False)

    @RELAXED
    @given(metric_matrices(max_n=6))
    def test_self_consensus_reproduces_clades(self, matrix):
        from repro.tree.compare import clades

        tree = upgmm(matrix)
        consensus = majority_consensus([tree, tree.copy()])
        assert clades(consensus) == clades(tree)


class TestLinkageRoundTrip:
    @RELAXED
    @given(metric_matrices())
    def test_round_trip_preserves_distances(self, matrix):
        tree = upgmm(matrix)
        z, labels = tree_to_linkage(tree)
        back = linkage_to_tree(z, labels)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                assert back.distance(a, b) == pytest.approx(tree.distance(a, b))


class TestFastaRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll", "Nd"),
                    max_codepoint=127,
                ),
                min_size=1,
                max_size=12,
            ),
            st.text(alphabet="ACGT", min_size=1, max_size=60),
            min_size=1,
            max_size=6,
        )
    )
    def test_round_trip(self, sequences):
        import io

        buffer = io.StringIO()
        write_fasta(sequences, buffer, line_width=17)
        assert read_fasta(io.StringIO(buffer.getvalue())) == sequences


class TestStatsProperties:
    @RELAXED
    @given(metric_matrices())
    def test_scores_bounded(self, matrix):
        assert 0.0 <= structure_score(matrix) <= 1.0
        assert 0.0 <= ultrametricity_defect(matrix) <= 1.0

    @RELAXED
    @given(metric_matrices())
    def test_defect_zero_iff_ultrametric(self, matrix):
        defect = ultrametricity_defect(matrix)
        if matrix.is_ultrametric():
            assert defect == pytest.approx(0.0, abs=1e-9)
        else:
            assert defect > 0.0
