"""Tests for the streaming trace sink (`repro.obs.streaming`)."""

import json

import pytest

from repro.obs import (
    CounterEvent,
    SpanEvent,
    StreamingRecorder,
    read_jsonl,
)


def fake_clock():
    """Deterministic strictly increasing clock."""
    t = [0.0]

    def tick():
        t[0] += 1.0
        return t[0]

    return tick


@pytest.fixture
def sink(tmp_path):
    return tmp_path / "trace.jsonl"


class TestIncrementalFlush:
    def test_event_hits_the_file_before_close(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        with rec.span("work", n=3):
            pass
        rec.counter("hits", 2)
        # No flush/close: line buffering already pushed whole lines out.
        events = read_jsonl(sink)
        assert [type(e) for e in events] == [SpanEvent, CounterEvent]
        assert events[0].name == "work"
        assert events[1].value == 2
        rec.close()

    def test_meta_line_first(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        rec.counter("x")
        first = json.loads(sink.read_text().splitlines()[0])
        assert first["event"] == "meta"
        assert first["schema"] == 1
        assert "version" in first["engine"]  # engine fingerprint rides along
        rec.close()

    def test_file_order_matches_memory_order(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            rec.counter("c")
        rec.close()
        from_file = read_jsonl(sink)
        assert [e.to_json() for e in from_file] == [
            e.to_json() for e in rec.events
        ]


class TestRingBuffer:
    def test_ring_keeps_most_recent(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_events=4)
        for i in range(10):
            rec.counter("tick", i)
        assert len(rec.events) == 4
        assert [e.value for e in rec.counters("tick")] == [6, 7, 8, 9]
        assert rec.events_streamed == 10
        # The file still has all ten.
        rec.close()
        assert len(read_jsonl(sink)) == 10

    def test_max_events_validated(self, sink):
        with pytest.raises(ValueError, match="max_events"):
            StreamingRecorder(sink, max_events=0)

    def test_memory_stays_bounded_over_many_events(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_events=64)
        for _ in range(5000):
            rec.counter("n")
        assert len(rec._events) == 64
        assert rec.events_streamed == 5000
        rec.close()


class TestRotation:
    def test_max_bytes_validated(self, sink):
        with pytest.raises(ValueError, match="max_bytes"):
            StreamingRecorder(sink, max_bytes=100)

    def test_rotation_produces_previous_generation(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_bytes=1024)
        while rec.rotations == 0:
            rec.counter("fill", attrs_pad="x" * 80)
        rec.counter("after-rotate")
        rec.close()
        rotated = sink.with_name(sink.name + ".1")
        assert rotated.exists()
        # Each generation is independently a valid schema-v1 trace.
        old = read_jsonl(rotated)
        new = read_jsonl(sink)
        assert old.warning is None and new.warning is None
        names = [e.name for e in new]
        assert "after-rotate" in names
        # Nothing was lost across the boundary.
        total = rec.events_streamed
        assert len(old) + len(new) == total
        assert sink.stat().st_size <= 1024

    def test_second_rotation_replaces_first_generation(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_bytes=1024)
        while rec.rotations < 2:
            rec.counter("fill", attrs_pad="y" * 80)
        rec.close()
        generations = sorted(
            p.name for p in sink.parent.iterdir() if p.name.startswith(sink.name)
        )
        # Exactly two files ever: live + one previous generation.
        assert generations == [sink.name, sink.name + ".1"]

    def test_concatenated_generations_read_back(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_bytes=1024)
        while rec.rotations == 0:
            rec.counter("fill", attrs_pad="z" * 80)
        rec.close()
        rotated = sink.with_name(sink.name + ".1")
        merged = sink.parent / "merged.jsonl"
        merged.write_text(rotated.read_text() + sink.read_text())
        events = read_jsonl(merged)
        assert len(events) == rec.events_streamed
        assert events.warning is not None
        assert "repeated meta" in events.warning

    def test_no_rotation_without_max_bytes(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        for _ in range(200):
            rec.counter("fill", attrs_pad="w" * 80)
        rec.close()
        assert rec.rotations == 0
        assert not sink.with_name(sink.name + ".1").exists()


class TestLifecycle:
    def test_close_is_idempotent(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        rec.close()
        rec.close()
        assert rec.closed

    def test_events_after_close_stay_in_ring_only(self, sink):
        rec = StreamingRecorder(sink, clock=fake_clock())
        rec.counter("before")
        rec.close()
        rec.counter("after")
        assert [e.name for e in rec.counters()] == ["before", "after"]
        assert [e.name for e in read_jsonl(sink)] == ["before"]

    def test_context_manager_closes(self, sink):
        with StreamingRecorder(sink, clock=fake_clock()) as rec:
            rec.counter("x")
        assert rec.closed

    def test_write_jsonl_exports_ring_snapshot(self, sink, tmp_path):
        rec = StreamingRecorder(sink, clock=fake_clock(), max_events=3)
        for i in range(6):
            rec.counter("tick", i)
        out = tmp_path / "snapshot.jsonl"
        rec.write_jsonl(out)
        rec.close()
        snap = read_jsonl(out)
        assert [e.value for e in snap] == [3, 4, 5]
        # Atomic export left no temp litter behind.
        assert [p.name for p in tmp_path.iterdir() if p.name.startswith(".")] == []
