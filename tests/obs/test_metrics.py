"""Unit tests for the live metrics registry (`repro.obs.metrics`)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    OVERFLOW_LABEL,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    as_metrics,
    prometheus_name,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("cache.miss", "misses")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("cache.miss")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("jobs", labelnames=("state",))
        c.inc(state="done")
        c.inc(state="done")
        c.inc(state="failed")
        assert c.value(state="done") == 2
        assert c.value(state="failed") == 1
        assert c.value(state="cancelled") == 0

    def test_wrong_label_set_rejected(self, registry):
        c = registry.counter("jobs", labelnames=("state",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(status="done")
        with pytest.raises(ValueError, match="takes labels"):
            c.inc()  # missing the label entirely


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("queue.depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13

    def test_set_function_evaluates_at_read_time(self, registry):
        items = []
        g = registry.gauge("inflight")
        g.set_function(lambda: len(items))
        assert g.value() == 0
        items.extend([1, 2, 3])
        assert g.value() == 3  # never stale

    def test_set_function_exception_reads_as_zero(self, registry):
        g = registry.gauge("broken")
        g.set_function(lambda: 1 / 0)
        assert g.value() == 0.0

    def test_set_clears_callback(self, registry):
        g = registry.gauge("depth")
        g.set_function(lambda: 99)
        g.set(7)
        assert g.value() == 7


class TestHistogramBuckets:
    def test_boundary_is_le_inclusive(self, registry):
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        h.observe(0.01)  # exactly on a bound -> that bucket, not the next
        counts = h.bucket_counts()
        assert counts["0.01"] == 1
        assert counts["0.1"] == 1  # cumulative
        assert counts["+Inf"] == 1

    def test_counts_are_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts() == {
            "1": 1, "2": 3, "4": 4, "+Inf": 5,
        }
        assert h.count() == 5
        assert h.sum() == pytest.approx(106.5)

    def test_value_above_every_bound_lands_in_inf(self, registry):
        h = registry.histogram("lat", buckets=(0.001,))
        h.observe(5.0)
        assert h.bucket_counts() == {"0.001": 0, "+Inf": 1}

    def test_default_buckets_cover_latency_range(self, registry):
        h = registry.histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS
        assert h.buckets[0] == 0.001 and h.buckets[-1] == 30.0

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("dup", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("empty", buckets=())

    def test_labelled_histograms(self, registry):
        h = registry.histogram("lat", buckets=(1.0,), labelnames=("m",))
        h.observe(0.5, m="a")
        h.observe(2.0, m="b")
        assert h.count(m="a") == 1
        assert h.count(m="b") == 1
        assert h.bucket_counts(m="a") == {"1": 1, "+Inf": 1}
        assert h.bucket_counts(m="b") == {"1": 0, "+Inf": 1}


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        a = registry.counter("hits", "help text")
        b = registry.counter("hits")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_mismatch_raises(self, registry):
        registry.counter("x", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x", labelnames=("b",))

    def test_cardinality_cap_redirects_to_overflow(self):
        registry = MetricsRegistry(max_series_per_metric=2)
        c = registry.counter("c", labelnames=("k",))
        c.inc(k="a")
        c.inc(k="b")
        c.inc(k="c")  # third distinct combination -> overflow series
        c.inc(k="d")
        assert c.value(k="a") == 1
        assert c.value(k=OVERFLOW_LABEL) == 2
        assert registry.overflowed_series == 2
        # Bounded: the cap's series plus the single overflow series.
        assert len(c._series) == 3
        c.inc(k="e")
        assert len(c._series) == 3  # further novelty stays in overflow

    def test_cap_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series_per_metric=0)

    def test_snapshot_shape(self, registry):
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["hits"] == {
            "type": "counter", "series": [{"labels": {}, "value": 3.0}],
        }
        assert snap["depth"]["series"][0]["value"] == 2.0
        assert snap["lat"]["series"][0] == {
            "labels": {}, "count": 1, "sum": 0.5,
        }

    def test_thread_safety_under_contention(self, registry):
        c = registry.counter("n", labelnames=("t",))
        h = registry.histogram("lat", buckets=(0.5,))

        def hammer(tag):
            for _ in range(500):
                c.inc(t=tag)
                h.observe(0.1)

        threads = [
            threading.Thread(target=hammer, args=(str(i),)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(c.value(t=str(i)) for i in range(4)) == 2000
        assert h.count() == 2000


class TestPrometheusRendering:
    def test_golden_exposition(self):
        """Byte-exact golden: fixed workload -> fixed text."""
        registry = MetricsRegistry()
        jobs = registry.counter(
            "service.jobs", "Jobs by terminal state.", labelnames=("state",)
        )
        jobs.inc(state="completed")
        jobs.inc(2, state="failed")
        depth = registry.gauge("service.queue.depth", "Queued jobs.")
        depth.set(3)
        lat = registry.histogram(
            "service.job.seconds",
            "Job latency.",
            labelnames=("method",),
            buckets=(0.01, 0.1),
        )
        lat.observe(0.005, method="compact")
        lat.observe(0.05, method="compact")
        lat.observe(7.0, method="compact")
        expected = (
            "# HELP service_jobs_total Jobs by terminal state.\n"
            "# TYPE service_jobs_total counter\n"
            'service_jobs_total{state="completed"} 1\n'
            'service_jobs_total{state="failed"} 2\n'
            "# HELP service_queue_depth Queued jobs.\n"
            "# TYPE service_queue_depth gauge\n"
            "service_queue_depth 3\n"
            "# HELP service_job_seconds Job latency.\n"
            "# TYPE service_job_seconds histogram\n"
            'service_job_seconds_bucket{method="compact",le="0.01"} 1\n'
            'service_job_seconds_bucket{method="compact",le="0.1"} 2\n'
            'service_job_seconds_bucket{method="compact",le="+Inf"} 3\n'
            'service_job_seconds_sum{method="compact"} 7.055\n'
            'service_job_seconds_count{method="compact"} 3\n'
        )
        assert registry.render_prometheus() == expected

    def test_rendering_is_deterministic_across_insert_order(self):
        registry = MetricsRegistry()
        c = registry.counter("c", labelnames=("k",))
        c.inc(k="z")
        c.inc(k="a")
        text = registry.render_prometheus()
        assert text.index('k="a"') < text.index('k="z"')  # sorted series

    def test_label_values_escaped(self, registry):
        c = registry.counter("c", labelnames=("k",))
        c.inc(k='he said "hi"\nback\\slash')
        text = registry.render_prometheus()
        assert r'k="he said \"hi\"\nback\\slash"' in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""

    def test_name_mangling(self):
        assert prometheus_name("service.job.seconds") == "service_job_seconds"
        assert prometheus_name("a-b.c") == "a_b_c"


class TestNullRegistry:
    def test_null_accepts_everything_and_records_nothing(self):
        c = NULL_METRICS.counter("x")
        c.inc(5)
        g = NULL_METRICS.gauge("y")
        g.set(1)
        g.set_function(lambda: 9)
        h = NULL_METRICS.histogram("z")
        h.observe(0.5)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.count() == 0
        assert h.bucket_counts() == {}
        assert NULL_METRICS.render_prometheus() == ""
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.enabled is False

    def test_as_metrics(self):
        assert as_metrics(None) is REGISTRY
        own = MetricsRegistry()
        assert as_metrics(own) is own
        assert as_metrics(NULL_METRICS) is NULL_METRICS
        assert isinstance(NULL_METRICS, NullMetricsRegistry)


class TestInstrumentKinds:
    def test_kinds(self, registry):
        assert isinstance(registry.counter("a"), Counter)
        assert isinstance(registry.gauge("b"), Gauge)
        assert isinstance(registry.histogram("c"), Histogram)


class TestForwardingRegistry:
    """Cross-process metric forwarding: op log in the child, replay in
    the parent (the process-backend scheduler's transport)."""

    def _forwarded(self):
        from repro.obs.metrics import ForwardingMetricsRegistry

        child = ForwardingMetricsRegistry()
        child.counter("jobs.done", "Jobs finished.").inc()
        child.counter(
            "prunes", "Prunes by rule.", labelnames=("rule",)
        ).inc(3, rule="bound")
        child.histogram("solve.seconds", "Solve latency.").observe(0.25)
        return child

    def test_ops_replay_into_parent(self):
        from repro.obs.metrics import replay_metric_ops

        child = self._forwarded()
        parent = MetricsRegistry()
        replayed = replay_metric_ops(parent, child.drain_ops())
        assert replayed == 3
        snap = parent.snapshot()
        assert snap["jobs.done"]["series"][0]["value"] == 1.0
        prune = snap["prunes"]["series"][0]
        assert prune == {"labels": {"rule": "bound"}, "value": 3.0}
        solve = snap["solve.seconds"]["series"][0]
        assert solve["count"] == 1

    def test_child_still_records_locally(self):
        child = self._forwarded()
        assert child.snapshot()["jobs.done"]["series"][0]["value"] == 1.0

    def test_drain_clears_the_log(self):
        child = self._forwarded()
        assert child.drain_ops()
        assert child.drain_ops() == []

    def test_ops_survive_pickling(self):
        import pickle

        from repro.obs.metrics import replay_metric_ops

        ops = pickle.loads(pickle.dumps(self._forwarded().drain_ops()))
        parent = MetricsRegistry()
        assert replay_metric_ops(parent, ops) == 3

    def test_replay_accumulates_with_existing_series(self):
        from repro.obs.metrics import replay_metric_ops

        parent = MetricsRegistry()
        parent.counter("jobs.done", "Jobs finished.").inc(5)
        replay_metric_ops(parent, self._forwarded().drain_ops())
        assert parent.snapshot()["jobs.done"]["series"][0]["value"] == 6.0

    def test_unknown_op_kind_rejected(self):
        from repro.obs.metrics import replay_metric_ops

        with pytest.raises(ValueError):
            replay_metric_ops(
                MetricsRegistry(),
                [("gauge", "g", "h", [], None, "set", 1.0, {})],
            )
