"""Profile-view tests: tree rebuilding, aggregation, rendering."""

import itertools

from repro.obs import (
    Recorder,
    SpanEvent,
    aggregate_spans,
    build_span_tree,
    counter_totals,
    render_profile,
    render_span_tree,
    span_gauges,
)


def ticking_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def recorded_run():
    rec = Recorder(clock=ticking_clock())
    with rec.span("build", n=8):
        with rec.span("discover"):
            pass
        with rec.span("solve", size=5):
            rec.counter("nodes", 11)
        with rec.span("solve", size=3):
            rec.counter("nodes", 4)
    return rec


class TestBuildSpanTree:
    def test_forest_structure(self):
        roots = recorded_run().events
        (root,) = build_span_tree(roots)
        assert root.span.name == "build"
        assert [c.span.name for c in root.children] == [
            "discover", "solve", "solve",
        ]
        # Children are ordered by start time.
        starts = [c.span.start for c in root.children]
        assert starts == sorted(starts)

    def test_orphan_parent_becomes_root(self):
        orphan = SpanEvent(id=9, parent=999, name="lost", start=0.0, end=1.0)
        (root,) = build_span_tree([orphan])
        assert root.span is orphan

    def test_simulated_clock_spans_excluded(self):
        rec = recorded_run()
        rec.add_span("parallel.worker", 0.0, 50.0, worker=0, clock="simulated")
        (root,) = build_span_tree(rec.events)
        names = {c.span.name for c in root.children}
        assert "parallel.worker" not in names

    def test_self_seconds(self):
        (root,) = build_span_tree(recorded_run().events)
        child_total = sum(c.span.duration for c in root.children)
        assert root.self_seconds == root.span.duration - child_total


class TestAggregation:
    def test_aggregate_spans(self):
        totals = aggregate_spans(recorded_run().events)
        count, seconds = totals["solve"]
        assert count == 2
        assert seconds > 0
        assert totals["build"][0] == 1

    def test_counter_totals(self):
        assert counter_totals(recorded_run().events) == {"nodes": 15.0}


def gauge_run():
    """Two solves whose non-additive stats ride on the spans as attrs."""
    rec = Recorder(clock=ticking_clock())
    with rec.span("bnb.solve", n=8) as first:
        first.attrs["bnb.max_open_size"] = 4
        first.attrs["bnb.prune_fraction"] = 0.25
    with rec.span("bnb.solve", n=9) as second:
        second.attrs["bnb.max_open_size"] = 10
        second.attrs["bnb.prune_fraction"] = 0.75
    return rec


class TestSpanGauges:
    def test_min_mean_max_aggregation(self):
        gauges = span_gauges(gauge_run().events)
        assert gauges["bnb.max_open_size"] == (2, 4, 7.0, 10)
        assert gauges["bnb.prune_fraction"] == (2, 0.25, 0.5, 0.75)

    def test_structural_and_bool_attrs_excluded(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("bnb.solve", n=8, solver="bnb") as span:
            span.attrs["bnb.max_open_size"] = 3
            span.attrs["bnb.limit_hit"] = True  # bool is not a gauge
        gauges = span_gauges(rec.events)
        assert set(gauges) == {"bnb.max_open_size"}

    def test_simulated_clock_spans_excluded(self):
        rec = gauge_run()
        rec.add_span(
            "parallel.worker", 0.0, 50.0, clock="simulated",
            **{"bnb.max_open_size": 999},
        )
        gauges = span_gauges(rec.events)
        assert gauges["bnb.max_open_size"][3] == 10  # 999 not folded in

    def test_profile_renders_gauge_section(self):
        text = render_profile(gauge_run().events)
        assert "span gauges (min/mean/max):" in text
        assert "bnb.max_open_size" in text
        # A gauge-free stream renders no gauge section.
        assert "span gauges" not in render_profile(recorded_run().events)

    def test_gauges_never_summed_as_counters(self):
        """Regression shape: the old emission made two solves report a
        summed max (14) in counter totals; gauges keep runs separate."""
        events = gauge_run().events
        assert "bnb.max_open_size" not in counter_totals(events)
        assert span_gauges(events)["bnb.max_open_size"][3] == 10


class TestRendering:
    def test_tree_contains_names_and_percent(self):
        text = render_span_tree(recorded_run().events)
        assert "build" in text
        assert "└─ " in text
        assert "100.0%" in text
        assert "[size=5]" in text

    def test_min_fraction_hides_small_spans(self):
        text = render_span_tree(recorded_run().events, min_fraction=0.99)
        assert "build" in text
        assert "discover" not in text

    def test_empty_stream(self):
        assert render_span_tree([]) == "(no spans recorded)"
        assert render_profile([]) == "(no spans recorded)"

    def test_full_profile_sections(self):
        text = render_profile(recorded_run().events)
        assert "span totals by name:" in text
        assert "counters:" in text
        assert "nodes" in text
