"""Recorder unit tests: span nesting, counters, JSONL schema, no-op cost."""

import io
import itertools
import json
import time

import pytest

from repro.obs import (
    NULL_RECORDER,
    SCHEMA_VERSION,
    CounterEvent,
    NullRecorder,
    Recorder,
    SpanEvent,
    as_recorder,
    read_jsonl,
)


def ticking_clock():
    """A deterministic clock: 0.0, 1.0, 2.0, ... per call."""
    counter = itertools.count()
    return lambda: float(next(counter))


class TestSpanNesting:
    def test_single_span(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("work", n=5) as handle:
            assert handle.id == 1
            assert handle.start == 0.0
            assert handle.end is None
        assert handle.end == 1.0
        (event,) = rec.spans()
        assert event == SpanEvent(
            id=1, parent=None, name="work", start=0.0, end=1.0, attrs={"n": 5}
        )
        assert event.duration == 1.0

    def test_nested_spans_link_parents(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("outer"):
            with rec.span("middle"):
                with rec.span("inner"):
                    pass
        by_name = {e.name: e for e in rec.spans()}
        assert by_name["outer"].parent is None
        assert by_name["middle"].parent == by_name["outer"].id
        assert by_name["inner"].parent == by_name["middle"].id

    def test_siblings_share_parent(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("outer"):
            with rec.span("first"):
                pass
            with rec.span("second"):
                pass
        by_name = {e.name: e for e in rec.spans()}
        assert by_name["first"].parent == by_name["outer"].id
        assert by_name["second"].parent == by_name["outer"].id

    def test_span_closes_on_exception(self):
        rec = Recorder(clock=ticking_clock())
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        (event,) = rec.spans("doomed")
        assert event.end is not None
        # The stack unwound: a new span is a root again.
        with rec.span("after"):
            pass
        assert rec.spans("after")[0].parent is None

    def test_spans_appear_in_close_order(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        assert [e.name for e in rec.spans()] == ["inner", "outer"]

    def test_add_span_parents_to_open_span(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("outer"):
            event = rec.add_span("worker", 10.0, 12.5, worker=3)
        assert event.parent == rec.spans("outer")[0].id
        assert event.start == 10.0 and event.end == 12.5
        assert event.attrs == {"worker": 3}


class TestCounters:
    def test_counter_attaches_to_open_span(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("solve"):
            rec.counter("nodes", 7)
        rec.counter("nodes", 3)
        first, second = rec.counters("nodes")
        assert first.span == rec.spans("solve")[0].id
        assert second.span is None
        assert rec.counter_total("nodes") == 10

    def test_counter_default_value(self):
        rec = Recorder(clock=ticking_clock())
        rec.counter("ticks")
        rec.counter("ticks")
        assert rec.counter_total("ticks") == 2

    def test_counter_total_missing_name(self):
        rec = Recorder(clock=ticking_clock())
        assert rec.counter_total("nothing") == 0.0


class TestJsonl:
    def expected_events(self):
        return [
            {
                "event": "counter", "name": "hits", "value": 2,
                "time": 1.0, "span": 1, "attrs": {},
            },
            {
                "event": "span", "id": 2, "parent": 1, "name": "inner",
                "start": 2.0, "end": 3.0, "duration": 1.0, "attrs": {},
            },
            {
                "event": "span", "id": 1, "parent": None, "name": "outer",
                "start": 0.0, "end": 4.0, "duration": 4.0, "attrs": {"n": 3},
            },
        ]

    def record(self):
        rec = Recorder(clock=ticking_clock())
        with rec.span("outer", n=3):
            rec.counter("hits", 2)
            with rec.span("inner"):
                pass
        return rec

    def test_golden_schema(self):
        from repro.version import engine_fingerprint

        lines = self.record().json_lines()
        meta = json.loads(lines[0])
        assert meta["event"] == "meta"
        assert meta["schema"] == SCHEMA_VERSION
        # The meta line identifies the engine that produced the trace.
        assert meta["engine"] == engine_fingerprint()
        assert [json.loads(line) for line in lines[1:]] == self.expected_events()

    def test_write_and_read_round_trip(self, tmp_path):
        rec = self.record()
        path = tmp_path / "events.jsonl"
        rec.write_jsonl(path)
        assert read_jsonl(path) == rec.events

    def test_round_trip_via_file_object(self):
        rec = self.record()
        buffer = io.StringIO()
        rec.write_jsonl(buffer)
        buffer.seek(0)
        assert read_jsonl(buffer) == rec.events

    def test_read_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            read_jsonl(io.StringIO('{"event": "meta", "schema": 999}\n'))

    def test_read_rejects_unknown_event_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            read_jsonl(io.StringIO('{"event": "mystery"}\n'))

    def test_read_skips_blank_lines(self):
        events = read_jsonl(io.StringIO(
            '{"event": "meta", "schema": 1}\n\n'
            '{"event": "counter", "name": "x", "value": 1, "time": 0.0}\n'
        ))
        assert events == [CounterEvent(name="x", value=1, time=0.0)]


class TestNullRecorder:
    def test_records_nothing(self):
        rec = NullRecorder()
        with rec.span("work") as handle:
            rec.counter("nodes", 5)
            rec.add_span("worker", 0.0, 1.0)
        assert handle.start is None and handle.end is None
        assert handle.duration == 0.0
        assert rec.events == []
        assert rec.spans() == [] and rec.counters() == []
        assert rec.counter_total("nodes") == 0.0

    def test_as_recorder(self):
        assert as_recorder(None) is NULL_RECORDER
        rec = Recorder()
        assert as_recorder(rec) is rec

    def test_injected_clock_is_exposed(self):
        clock = ticking_clock()
        rec = NullRecorder(clock)
        assert rec.clock is clock
        assert rec.clock() == 0.0

    def test_null_span_overhead_smoke(self):
        # The engines call span() on the hot path with recording off; it
        # must stay allocation-free and cheap.  Extremely generous bound
        # so the test never flakes on slow CI: 100k no-op spans < 1s.
        rec = NULL_RECORDER
        start = time.perf_counter()
        for _ in range(100_000):
            with rec.span("hot"):
                pass
        assert time.perf_counter() - start < 1.0


class TestIngest:
    """Cross-process event forwarding: ``Recorder.ingest``."""

    def _child_events(self):
        """Events as a worker process would ship them: serialized, with
        children recorded (closed) before their parents."""
        child = Recorder(clock=ticking_clock())
        with child.span("outer", n=4):
            with child.span("inner"):
                child.counter("ticks", 3)
        return [e.to_json() for e in child.events]

    def test_parent_links_survive_remapping(self):
        parent = Recorder(clock=ticking_clock())
        ingested = parent.ingest(self._child_events())
        assert ingested == 3
        outer = parent.spans("outer")[0]
        inner = parent.spans("inner")[0]
        assert inner.parent == outer.id
        assert parent.counters("ticks")[0].span == inner.id

    def test_roots_nest_under_open_span(self):
        parent = Recorder(clock=ticking_clock())
        with parent.span("service.job") as job:
            parent.ingest(self._child_events())
        assert parent.spans("outer")[0].parent == job.id

    def test_offset_rebases_timestamps(self):
        parent = Recorder(clock=ticking_clock())
        parent.ingest(self._child_events(), offset=50.0)
        outer = parent.spans("outer")[0]
        assert outer.start >= 50.0
        assert outer.end > outer.start
        assert parent.counters("ticks")[0].time >= 50.0

    def test_meta_lines_are_skipped(self):
        parent = Recorder()
        assert parent.ingest([{"event": "meta", "schema": 1}]) == 0

    def test_null_recorder_ingests_nothing(self):
        assert NullRecorder().ingest([{"event": "counter"}]) == 0
