"""Ambient trace-id propagation and trace filtering."""

import itertools
import threading

from repro.obs import (
    Recorder,
    current_trace_id,
    filter_by_trace_id,
    trace_context,
)


def make_recorder():
    clock = itertools.count().__next__
    return Recorder(clock=lambda: float(clock()))


class TestTraceContext:
    def test_spans_and_counters_are_stamped(self):
        rec = make_recorder()
        with trace_context("req-1"):
            with rec.span("work"):
                rec.counter("hits")
            rec.add_span("external", 0.0, 1.0)
        for event in rec.events:
            assert event.attrs["trace_id"] == "req-1"

    def test_no_context_means_no_stamp(self):
        rec = make_recorder()
        with rec.span("work"):
            rec.counter("hits")
        for event in rec.events:
            assert "trace_id" not in event.attrs

    def test_explicit_attr_wins_over_ambient(self):
        rec = make_recorder()
        with trace_context("ambient"):
            rec.add_span("w", 0.0, 1.0, trace_id="explicit")
        assert rec.spans()[0].attrs["trace_id"] == "explicit"

    def test_none_is_a_no_op(self):
        with trace_context("outer"):
            with trace_context(None):
                assert current_trace_id() == "outer"

    def test_nesting_restores_previous_id(self):
        assert current_trace_id() is None
        with trace_context("a"):
            assert current_trace_id() == "a"
            with trace_context("b"):
                assert current_trace_id() == "b"
            assert current_trace_id() == "a"
        assert current_trace_id() is None

    def test_context_is_per_thread(self):
        seen = {}

        def work(tag):
            with trace_context(tag):
                seen[tag] = current_trace_id()

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        with trace_context("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert current_trace_id() == "main"
        assert seen == {f"t{i}": f"t{i}" for i in range(4)}

    def test_restores_even_on_exception(self):
        try:
            with trace_context("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace_id() is None


class TestFilterByTraceId:
    def test_keeps_only_the_requested_trace(self):
        rec = make_recorder()
        with trace_context("a"):
            with rec.span("job-a"):
                rec.counter("hits")
        with trace_context("b"):
            with rec.span("job-b"):
                pass
        kept = filter_by_trace_id(rec.events, "a")
        assert [e.name for e in kept] == ["hits", "job-a"]

    def test_descendants_of_stamped_span_are_included(self):
        # A child whose attrs lack the id but whose parent chain reaches
        # the stamped root span still belongs to the trace.
        rec2 = make_recorder()
        with rec2.span("root", trace_id="a"):
            with trace_context(None):
                with rec2.span("child"):
                    rec2.counter("c")
        kept = filter_by_trace_id(rec2.events, "a")
        assert {e.name for e in kept} == {"root", "child", "c"}

    def test_counters_attached_to_trace_spans_are_kept(self):
        rec = make_recorder()
        with rec.span("root", trace_id="a"):
            rec.counter("inside")
        rec.counter("outside")
        kept = filter_by_trace_id(rec.events, "a")
        assert {e.name for e in kept} == {"root", "inside"}

    def test_no_match_returns_empty(self):
        rec = make_recorder()
        with rec.span("x", trace_id="a"):
            pass
        assert filter_by_trace_id(rec.events, "nope") == []

    def test_order_preserved(self):
        rec = make_recorder()
        with trace_context("a"):
            with rec.span("s1"):
                pass
            rec.counter("c1")
            with rec.span("s2"):
                pass
        kept = filter_by_trace_id(rec.events, "a")
        assert [e.name for e in kept] == ["s1", "c1", "s2"]


class TestAtomicWriteJsonl:
    def test_write_leaves_no_temp_files(self, tmp_path):
        rec = make_recorder()
        with rec.span("w"):
            pass
        out = tmp_path / "trace.jsonl"
        rec.write_jsonl(out)
        rec.write_jsonl(out)  # overwrite is fine too
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_written_trace_reads_back(self, tmp_path):
        from repro.obs import read_jsonl

        rec = make_recorder()
        with trace_context("r"):
            with rec.span("w", n=2):
                rec.counter("c", 3)
        out = tmp_path / "trace.jsonl"
        rec.write_jsonl(out)
        events = read_jsonl(out)
        assert len(events) == 2
        assert all(e.attrs["trace_id"] == "r" for e in events)
