"""Tests for the live search-progress tracker (``repro.obs.progress``).

The tracker's contract has three legs: deterministic throttle/delta
gating under an injected clock, snapshot invariants (monotone lower
bound, final-report guarantee, schema-v1 ``bnb.progress`` events), and
a zero-cost disabled path in the solver's inner loop.
"""

import math
import time

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import hierarchical_matrix
from repro.obs import (
    NULL_RECORDER,
    CounterEvent,
    MetricsRegistry,
    ProgressTracker,
    Recorder,
    current_progress,
    format_progress_line,
    progress_context,
    trace_context,
)


class FakeClock:
    """A manually stepped clock for deterministic gating tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class FakeStats:
    def __init__(self, expanded=0, created=0):
        self.nodes_expanded = expanded
        self.nodes_created = created


class FakeNode:
    def __init__(self, lower_bound):
        self.lower_bound = lower_bound


class TestGating:
    def test_first_finite_incumbent_fires_immediately(self):
        clock = FakeClock()
        tracker = ProgressTracker(interval_seconds=10.0, clock=clock)
        tracker.tick(42.0, FakeStats(1, 2), [FakeNode(40.0)])
        assert tracker.reports == 1

    def test_unchanged_incumbent_is_gated_until_interval(self):
        clock = FakeClock()
        tracker = ProgressTracker(interval_seconds=1.0, clock=clock)
        tracker.tick(42.0, FakeStats(1, 2), [FakeNode(40.0)])
        for _ in range(50):
            clock.now += 0.01
            tracker.tick(42.0, FakeStats(2, 3), [FakeNode(40.0)])
        assert tracker.reports == 1  # interval never elapsed
        clock.now = 1.5
        tracker.tick(42.0, FakeStats(3, 4), [FakeNode(40.0)])
        assert tracker.reports == 2

    def test_interval_rearms_after_each_report(self):
        clock = FakeClock()
        tracker = ProgressTracker(interval_seconds=1.0, clock=clock)
        reports = []
        for step in range(1, 46):  # 0.1s ticks for 4.5s
            clock.now = step * 0.1
            tracker.tick(9.0, FakeStats(step, step), [FakeNode(5.0)])
            reports.append(tracker.reports)
        # immediate first report at t=0.1, then one per re-armed
        # interval: t=1.1, 2.1, 3.1, 4.1
        assert reports[-1] == 5

    def test_incumbent_improvement_beyond_min_delta_fires(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            interval_seconds=100.0, min_delta=0.5, clock=clock
        )
        tracker.tick(42.0, FakeStats(), [FakeNode(40.0)])
        assert tracker.reports == 1
        clock.now = 0.01
        tracker.tick(41.8, FakeStats(), [FakeNode(40.0)])  # within delta
        assert tracker.reports == 1
        tracker.tick(41.0, FakeStats(), [FakeNode(40.0)])  # beyond delta
        assert tracker.reports == 2

    def test_infinite_incumbent_does_not_fire_delta_gate(self):
        clock = FakeClock()
        tracker = ProgressTracker(interval_seconds=1.0, clock=clock)
        tracker.tick(math.inf, FakeStats(), [])
        assert tracker.reports == 0
        clock.now = 1.5
        tracker.tick(math.inf, FakeStats(), [])
        assert tracker.reports == 1  # interval gate only

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ProgressTracker(interval_seconds=-1.0)


class TestSnapshots:
    def test_snapshot_fields_and_gap(self):
        clock = FakeClock()
        tracker = ProgressTracker(interval_seconds=0.0, clock=clock)
        tracker.start()  # anchor t0 at 0, then solve for two seconds
        clock.now = 2.0
        tracker.tick(100.0, FakeStats(10, 25), [FakeNode(90.0), FakeNode(95.0)])
        snap = tracker.latest
        assert snap["incumbent_cost"] == 100.0
        assert snap["best_lower_bound"] == 90.0
        assert snap["gap"] == pytest.approx(0.1)
        assert snap["nodes_expanded"] == 10
        assert snap["nodes_created"] == 25
        assert snap["open_size"] == 2
        assert snap["elapsed"] == pytest.approx(2.0)
        assert snap["nodes_per_second"] == pytest.approx(5.0)
        assert snap["final"] is False

    def test_lower_bound_clamped_monotone_and_capped(self):
        tracker = ProgressTracker(
            interval_seconds=0.0, clock=FakeClock()
        )
        tracker.tick(100.0, FakeStats(), [FakeNode(90.0)])
        # A weaker frontier must not loosen the reported bound ...
        tracker.tick(100.0, FakeStats(), [FakeNode(80.0)])
        assert tracker.latest["best_lower_bound"] == 90.0
        # ... and the bound never exceeds the incumbent.
        tracker.tick(85.0, FakeStats(), [FakeNode(99.0)])
        assert tracker.latest["best_lower_bound"] == 85.0

    def test_final_guarantees_snapshot_and_closes_gap(self):
        tracker = ProgressTracker(
            interval_seconds=100.0, clock=FakeClock()
        )
        tracker.final(50.0, FakeStats(5, 9))
        assert tracker.reports == 1
        assert tracker.latest["final"] is True
        assert tracker.latest["best_lower_bound"] == 50.0
        assert tracker.latest["gap"] == 0.0

    def test_final_with_open_nodes_reports_honest_residual_gap(self):
        # A node-limited stop leaves open nodes; the closing snapshot
        # must not pretend the search proved optimality.
        tracker = ProgressTracker(
            interval_seconds=100.0, clock=FakeClock()
        )
        tracker.final(50.0, FakeStats(5, 9), [FakeNode(45.0)])
        assert tracker.latest["best_lower_bound"] == 45.0
        assert tracker.latest["gap"] == pytest.approx(0.1)

    def test_unsolved_search_reports_null_incumbent(self):
        tracker = ProgressTracker(interval_seconds=0.0, clock=FakeClock())
        tracker.tick(math.inf, FakeStats(), [FakeNode(10.0)])
        snap = tracker.latest
        assert snap["incumbent_cost"] is None
        assert snap["best_lower_bound"] == 10.0
        assert snap["gap"] == 1.0

    def test_sink_and_metrics_fire_per_report(self):
        seen = []
        metrics = MetricsRegistry()
        tracker = ProgressTracker(
            interval_seconds=0.0,
            metrics=metrics,
            sink=seen.append,
            clock=FakeClock(),
        )
        tracker.tick(100.0, FakeStats(4, 8), [FakeNode(90.0)])
        tracker.final(95.0, FakeStats(9, 12))
        assert [s["final"] for s in seen] == [False, True]
        snapshot = metrics.snapshot()
        gap = next(v for k, v in snapshot.items() if "bnb.gap" in str(k))
        assert gap["series"][0]["value"] == 0.0  # final report closed the gap

    def test_sink_exceptions_propagate_to_caller(self):
        # The tracker does not swallow sink errors; transport layers
        # (WorkerSlot.call) are the ones that guard their callbacks.
        def boom(_snap):
            raise RuntimeError("sink down")

        tracker = ProgressTracker(
            interval_seconds=0.0, sink=boom, clock=FakeClock()
        )
        with pytest.raises(RuntimeError):
            tracker.final(1.0, FakeStats())


class TestEvents:
    def test_reports_emit_schema_v1_counters_with_trace_id(self):
        rec = Recorder()
        tracker = ProgressTracker(
            interval_seconds=0.0, recorder=rec, clock=FakeClock()
        )
        with trace_context("trace-77"):
            tracker.tick(10.0, FakeStats(1, 2), [FakeNode(9.0)])
            tracker.final(10.0, FakeStats(2, 3))
        events = [e for e in rec.events if e.name == "bnb.progress"]
        assert len(events) == 2
        assert all(isinstance(e, CounterEvent) for e in events)
        assert all(e.value == 1 for e in events)
        assert all(e.attrs["trace_id"] == "trace-77" for e in events)
        assert events[-1].attrs["final"] is True

    def test_null_recorder_emits_nothing(self):
        tracker = ProgressTracker(
            interval_seconds=0.0, recorder=NULL_RECORDER, clock=FakeClock()
        )
        tracker.final(1.0, FakeStats())
        assert tracker.reports == 1  # tracked locally, no events


class TestContext:
    def test_progress_context_binds_and_restores(self):
        tracker = ProgressTracker()
        assert current_progress() is None
        with progress_context(tracker) as bound:
            assert bound is tracker
            assert current_progress() is tracker
        assert current_progress() is None

    def test_none_context_is_noop(self):
        with progress_context(None) as bound:
            assert bound is None
            assert current_progress() is None


class TestSolverIntegration:
    def test_tracked_solve_reports_and_matches_untracked(self):
        matrix = hierarchical_matrix([[4, 3], [4]], seed=11, jitter=0.3)
        plain = exact_mut(matrix)
        rec = Recorder()
        tracker = ProgressTracker(interval_seconds=0.0, recorder=rec)
        with progress_context(tracker):
            tracked = exact_mut(matrix)
        assert tracked.cost == plain.cost
        assert tracked.stats.nodes_expanded == plain.stats.nodes_expanded
        assert tracker.reports >= 1
        final = tracker.latest
        assert final["final"] is True
        assert final["incumbent_cost"] == pytest.approx(tracked.cost)
        assert final["gap"] == 0.0  # solved to proven optimality
        assert final["nodes_expanded"] == tracked.stats.nodes_expanded
        assert any(e.name == "bnb.progress" for e in rec.events)

    def test_node_limited_solve_reports_residual_gap(self):
        matrix = hierarchical_matrix([[5, 4], [5, 4]], seed=7, jitter=0.3)
        tracker = ProgressTracker(interval_seconds=0.0)
        with progress_context(tracker):
            result = exact_mut(matrix, node_limit=50)
        assert not result.optimal
        final = tracker.latest
        assert final["final"] is True
        assert final["open_size"] > 0
        assert final["gap"] > 0.0
        assert final["best_lower_bound"] < final["incumbent_cost"]

    def test_disabled_path_emits_nothing_and_stays_cheap(self):
        # No ambient tracker: the solve must produce zero progress
        # events and pay (near) nothing -- the tick guard is a single
        # `is not None` test.  Generous wall bound so CI never flakes.
        matrix = hierarchical_matrix([[4, 3], [4]], seed=11, jitter=0.3)
        rec = Recorder()
        start = time.perf_counter()
        result = exact_mut(matrix, recorder=rec)
        assert time.perf_counter() - start < 5.0
        assert result.optimal
        assert not any(e.name == "bnb.progress" for e in rec.events)
        assert current_progress() is None
