"""Crash-interrupted traces and multi-threaded recording."""

import threading

import pytest

from repro.obs import CounterEvent, Recorder, SpanEvent, read_jsonl


def make_trace_text() -> str:
    rec = Recorder(clock=iter(range(100)).__next__)
    with rec.span("outer", n=3):
        rec.counter("ticks", 2)
        with rec.span("inner"):
            pass
    return "\n".join(rec.json_lines()) + "\n"


class TestTruncatedFinalLine:
    def test_full_file_has_no_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(make_trace_text())
        events = read_jsonl(path)
        assert events.warning is None
        assert len(events) == 3

    def test_truncated_final_line_returns_prefix(self, tmp_path):
        text = make_trace_text()
        # Cut the file mid-way through its final record.
        cut = text.rstrip("\n")
        truncated = cut[: len(cut) - 17]
        path = tmp_path / "trace.jsonl"
        path.write_text(truncated)
        events = read_jsonl(path)
        assert events.warning is not None
        assert "truncated" in events.warning
        assert len(events) == 2  # complete prefix only

    def test_truncation_down_to_meta_line(self, tmp_path):
        text = make_trace_text()
        first_line_end = text.index("\n")
        path = tmp_path / "trace.jsonl"
        # Keep the meta line and half of the first span record.
        path.write_text(text[: first_line_end + 20])
        events = read_jsonl(path)
        assert events == []
        assert events.warning is not None

    def test_midstream_corruption_still_raises(self, tmp_path):
        lines = make_trace_text().splitlines()
        lines[1] = lines[1][:-10]  # corrupt a NON-final line
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="mid-stream"):
            read_jsonl(path)

    def test_empty_file_is_empty_and_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        events = read_jsonl(path)
        assert events == []
        assert events.warning is None


class TestRepeatedMeta:
    def test_concatenated_traces_read_with_warning(self, tmp_path):
        text = make_trace_text()
        path = tmp_path / "trace.jsonl"
        path.write_text(text + text)  # cat a.jsonl b.jsonl
        events = read_jsonl(path)
        assert len(events) == 6
        assert events.warning is not None
        assert "repeated meta" in events.warning

    def test_repeated_meta_is_still_schema_validated(self, tmp_path):
        text = make_trace_text()
        path = tmp_path / "trace.jsonl"
        path.write_text(text + '{"event": "meta", "schema": 99}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_jsonl(path)

    def test_three_generations(self, tmp_path):
        text = make_trace_text()
        path = tmp_path / "trace.jsonl"
        path.write_text(text * 3)
        events = read_jsonl(path)
        assert len(events) == 9
        assert events.warning.count("repeated meta") == 2

    def test_truncation_and_repeated_meta_warnings_combine(self, tmp_path):
        text = make_trace_text()
        doubled = (text + text).rstrip("\n")
        path = tmp_path / "trace.jsonl"
        path.write_text(doubled[:-17])  # cut the final record mid-way
        events = read_jsonl(path)
        assert "repeated meta" in events.warning
        assert "truncated" in events.warning
        assert len(events) == 5


class TestThreadedRecorder:
    def test_span_stacks_are_thread_local(self):
        rec = Recorder()
        barrier = threading.Barrier(4)

        def work(tag: int) -> None:
            barrier.wait(10.0)
            for i in range(25):
                with rec.span(f"outer-{tag}"):
                    with rec.span(f"inner-{tag}", i=i):
                        rec.counter(f"count-{tag}")

        threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)

        spans = [e for e in rec.events if isinstance(e, SpanEvent)]
        counters = [e for e in rec.events if isinstance(e, CounterEvent)]
        assert len(spans) == 4 * 25 * 2
        assert len(counters) == 4 * 25
        # Ids are unique despite concurrent allocation.
        ids = [s.id for s in spans]
        assert len(set(ids)) == len(ids)
        # Every inner span's parent is an outer span of the SAME thread,
        # and every counter is attached to its own thread's inner span.
        by_id = {s.id: s for s in spans}
        for span in spans:
            tag = span.name.split("-")[1]
            if span.name.startswith("inner"):
                parent = by_id[span.parent]
                assert parent.name == f"outer-{tag}"
        for counter in counters:
            tag = counter.name.split("-")[1]
            assert by_id[counter.span].name == f"inner-{tag}"

    def test_single_thread_ids_remain_deterministic(self):
        import itertools

        clock = itertools.count().__next__
        rec = Recorder(clock=lambda: float(clock()))
        with rec.span("a") as a:
            with rec.span("b") as b:
                pass
        assert (a.id, b.id) == (1, 2)
        assert [e.id for e in rec.spans()] == [2, 1]  # close order
