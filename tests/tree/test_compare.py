"""Tests for tree comparison metrics."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.generators import (
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.compare import (
    clades,
    cophenetic_correlation,
    normalized_robinson_foulds,
    robinson_foulds,
    shared_clades,
)
from repro.tree.ultrametric import TreeNode, UltrametricTree


def tree_from_nesting(spec, height=1.0):
    """Build a tree from nested tuples of labels, e.g. (("a","b"),"c")."""

    def build(node, h):
        if isinstance(node, str):
            return TreeNode(label=node)
        return TreeNode(h, [build(child, h / 2) for child in node])

    return UltrametricTree(build(spec, height))


class TestClades:
    def test_simple(self):
        t = tree_from_nesting((("a", "b"), "c"))
        assert clades(t) == {frozenset({"a", "b"})}

    def test_excludes_trivial(self):
        t = tree_from_nesting((("a", "b"), ("c", "d")))
        result = clades(t)
        assert frozenset({"a", "b", "c", "d"}) not in result
        assert all(len(c) > 1 for c in result)

    def test_count_for_binary_tree(self):
        # n-leaf rooted binary tree has n-2 non-trivial clades.
        t = upgmm(random_metric_matrix(8, seed=1))
        assert len(clades(t)) == 6


class TestRobinsonFoulds:
    def test_identical_trees(self):
        t = upgmm(random_metric_matrix(8, seed=2))
        assert robinson_foulds(t, t.copy()) == 0
        assert normalized_robinson_foulds(t, t.copy()) == 0.0

    def test_different_topologies(self):
        a = tree_from_nesting((("a", "b"), "c"), height=4.0)
        b = tree_from_nesting((("a", "c"), "b"), height=4.0)
        assert robinson_foulds(a, b) == 2
        assert normalized_robinson_foulds(a, b) == 1.0

    def test_symmetry(self):
        x = upgma(random_metric_matrix(9, seed=3))
        y = upgmm(random_metric_matrix(9, seed=3))
        assert robinson_foulds(x, y) == robinson_foulds(y, x)

    def test_leaf_set_mismatch_rejected(self):
        a = tree_from_nesting((("a", "b"), "c"))
        b = tree_from_nesting((("a", "b"), "z"))
        with pytest.raises(ValueError):
            robinson_foulds(a, b)

    def test_two_leaf_trees(self):
        a = tree_from_nesting(("a", "b"))
        b = tree_from_nesting(("b", "a"))
        assert robinson_foulds(a, b) == 0
        assert normalized_robinson_foulds(a, b) == 0.0

    def test_shared_clades(self):
        a = tree_from_nesting(((("a", "b"), "c"), "d"), height=8.0)
        b = tree_from_nesting((("a", "b"), ("c", "d")), height=8.0)
        assert frozenset({"a", "b"}) in shared_clades(a, b)

    def test_compact_tree_close_to_optimal_topology(self):
        """The paper's 'precise relations are kept' claim, quantified."""
        m = hierarchical_matrix([[3, 2], [4]], seed=5)
        compact = CompactSetTreeBuilder().build(m).tree
        optimal = exact_mut(m).tree
        assert normalized_robinson_foulds(compact, optimal) <= 0.25


class TestCopheneticCorrelation:
    def test_perfect_on_ultrametric_input(self):
        m = random_ultrametric_matrix(9, seed=6)
        tree = upgmm(m)
        assert cophenetic_correlation(tree, m) == pytest.approx(1.0)

    def test_high_for_good_trees(self):
        m = random_metric_matrix(10, seed=7)
        tree = exact_mut(m).tree
        assert cophenetic_correlation(tree, m) > 0.5

    def test_better_tree_correlates_at_least_as_well_on_clustered(self):
        m = hierarchical_matrix([[3, 2], [3]], seed=8)
        good = exact_mut(m).tree
        assert cophenetic_correlation(good, m) > 0.9

    def test_label_mismatch_rejected(self):
        m = random_metric_matrix(5, seed=9)
        wrong = upgmm(random_metric_matrix(5, seed=9).with_labels(list("vwxyz")))
        with pytest.raises(ValueError):
            cophenetic_correlation(wrong, m)
