"""Tests for tree validity, feasibility and 3-3 relation checks."""

import pytest

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.checks import (
    count_33_contradictions,
    dominates_matrix,
    is_valid_ultrametric_tree,
    triple_relations,
)
from repro.tree.ultrametric import TreeNode, UltrametricTree


def tree_ab_c(h_inner=1.0, h_root=4.0):
    inner = TreeNode(h_inner, [TreeNode(label="a"), TreeNode(label="b")])
    return UltrametricTree(TreeNode(h_root, [inner, TreeNode(label="c")]))


class TestStructuralValidity:
    def test_valid_tree(self):
        assert is_valid_ultrametric_tree(tree_ab_c())

    def test_leaf_tree_valid(self):
        assert is_valid_ultrametric_tree(UltrametricTree.leaf("x"))

    def test_height_inversion_invalid(self):
        inner = TreeNode(5.0, [TreeNode(label="a"), TreeNode(label="b")])
        bad = UltrametricTree(TreeNode(2.0, [inner, TreeNode(label="c")]))
        assert not is_valid_ultrametric_tree(bad)

    def test_nonbinary_rejected_by_default(self):
        root = TreeNode(
            1.0,
            [TreeNode(label="a"), TreeNode(label="b"), TreeNode(label="c")],
        )
        tree = UltrametricTree(root)
        assert not is_valid_ultrametric_tree(tree)
        assert is_valid_ultrametric_tree(tree, binary=False)

    def test_raised_leaf_invalid(self):
        leaf = TreeNode(0.5, label="a")
        root = TreeNode(1.0, [leaf, TreeNode(label="b")])
        assert not is_valid_ultrametric_tree(UltrametricTree(root))


class TestDominatesMatrix:
    def test_feasible(self, tiny_matrix):
        # heights 1 and 4 -> distances 2 and 8 == matrix.
        assert dominates_matrix(tree_ab_c(), tiny_matrix)

    def test_infeasible(self, tiny_matrix):
        # Root too low: d(a, c) = 6 < 8.
        assert not dominates_matrix(tree_ab_c(h_root=3.0), tiny_matrix)

    def test_strictly_dominating(self, tiny_matrix):
        assert dominates_matrix(tree_ab_c(h_inner=2.0, h_root=5.0), tiny_matrix)

    def test_label_mismatch_raises(self, tiny_matrix):
        wrong = UltrametricTree.join(
            UltrametricTree.leaf("x"), UltrametricTree.leaf("y"), 1.0
        )
        with pytest.raises(ValueError):
            dominates_matrix(wrong, tiny_matrix)


class TestTripleRelations:
    def test_consistent_tree(self, tiny_matrix):
        consistent, contradictory, bad = triple_relations(tree_ab_c(), tiny_matrix)
        assert (consistent, contradictory) == (1, 0)
        assert bad == []

    def test_contradictory_tree(self, tiny_matrix):
        # Tree joins a with c first although the matrix says (a, b) is
        # the closest pair.
        inner = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="c")])
        bad_tree = UltrametricTree(
            TreeNode(4.0, [inner, TreeNode(label="b")])
        )
        assert count_33_contradictions(bad_tree, tiny_matrix) == 1

    def test_tied_triple_counts_consistent(self):
        m = DistanceMatrix(
            [[0, 4, 4], [4, 0, 4], [4, 4, 0]], labels=["a", "b", "c"]
        )
        consistent, contradictory, _ = triple_relations(tree_ab_c(2, 2), m)
        assert contradictory == 0
        assert consistent == 1

    def test_count_over_larger_tree(self, square5):
        from repro.heuristics.upgma import upgmm

        tree = upgmm(square5)
        # UPGMM on clearly clustered data respects all relations.
        assert count_33_contradictions(tree, square5) == 0

    def test_exact_tree_has_fewer_contradictions_than_scrambled(self, square5):
        from repro.bnb.sequential import exact_mut

        good = exact_mut(square5).tree
        # Deliberately scrambled caterpillar tree.
        nodes = [TreeNode(label=name) for name in square5.labels]
        current = nodes[0]
        height = 1.0
        for leaf in nodes[1:]:
            current = TreeNode(height, [current, leaf])
            height += 3.0
        scrambled = UltrametricTree(current)
        assert count_33_contradictions(good, square5) <= count_33_contradictions(
            scrambled, square5
        )
