"""Tests for ASCII tree rendering."""

import pytest

from repro.heuristics.upgma import upgmm
from repro.matrix.generators import hierarchical_matrix, random_metric_matrix
from repro.tree.render import render_ascii, render_heights
from repro.tree.ultrametric import TreeNode, UltrametricTree


def simple_tree():
    inner = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="b")])
    return UltrametricTree(TreeNode(4.0, [inner, TreeNode(label="c")]))


class TestRenderAscii:
    def test_every_leaf_appears_once(self):
        art = render_ascii(simple_tree(), width=20)
        for label in ("a", "b", "c"):
            assert art.count(f" {label}") == 1

    def test_line_count_equals_leaf_count(self):
        # Binary dendrogram: one line per leaf.
        art = render_ascii(simple_tree(), width=20)
        assert len(art.splitlines()) == 3

    def test_proportional_columns(self):
        """Deeper merges start farther right."""
        art = render_ascii(simple_tree(), width=20).splitlines()
        # Line for 'c' hangs off the root (column 0); the (a, b) pair
        # joins at 3/4 of the width.
        c_line = next(line for line in art if line.endswith(" c"))
        a_line = next(line for line in art if line.endswith(" a"))
        assert c_line.startswith("+")
        # a's connector to the inner node sits at column ~15.
        assert a_line.index("+", 1) == pytest.approx(15, abs=1)

    def test_all_lines_equal_branch_width(self):
        tree = upgmm(random_metric_matrix(9, seed=1))
        art = render_ascii(tree, width=40)
        for line in art.splitlines():
            label_start = line.rindex(" ")
            assert label_start == 40  # labels start right after the branch area

    def test_single_leaf(self):
        art = render_ascii(UltrametricTree.leaf("only"))
        assert art == "- only"

    def test_larger_tree_smoke(self):
        tree = upgmm(hierarchical_matrix([[3, 2], [4]], seed=2))
        art = render_ascii(tree, width=50)
        assert len(art.splitlines()) == 9

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_ascii(simple_tree(), width=2)

    def test_rails_are_vertical(self):
        """Every '|' must sit directly under a '+' or another '|'."""
        tree = upgmm(random_metric_matrix(10, seed=3))
        lines = render_ascii(tree, width=30).splitlines()
        for row, line in enumerate(lines[1:], start=1):
            for col, ch in enumerate(line):
                if ch == "|":
                    above = lines[row - 1][col] if col < len(lines[row - 1]) else " "
                    assert above in "+|", (row, col, above)


class TestRenderHeights:
    def test_lists_internal_nodes(self):
        text = render_heights(simple_tree())
        lines = text.splitlines()
        assert len(lines) == 2
        assert "{a, b}" in lines[0]
        assert "{a, b, c}" in lines[1]

    def test_sorted_by_height(self):
        tree = upgmm(random_metric_matrix(8, seed=4))
        heights = [
            float(line.split("=", 1)[1].split()[0])
            for line in render_heights(tree).splitlines()
        ]
        assert heights == sorted(heights)
