"""Tests for majority-rule consensus trees."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.matrix.generators import random_metric_matrix
from repro.tree.compare import clades
from repro.tree.consensus import clade_support, majority_consensus
from repro.tree.checks import is_valid_ultrametric_tree
from repro.tree.ultrametric import TreeNode, UltrametricTree


def tree_from_nesting(spec, height=8.0):
    def build(node, h):
        if isinstance(node, str):
            return TreeNode(label=node)
        return TreeNode(h, [build(child, h / 2) for child in node])

    return UltrametricTree(build(spec, height))


@pytest.fixture
def three_trees():
    """Two trees agree on {a,b}; they disagree about c/d placement."""
    t1 = tree_from_nesting((("a", "b"), ("c", "d")))
    t2 = tree_from_nesting(((("a", "b"), "c"), "d"))
    t3 = tree_from_nesting(((("a", "c"), "b"), "d"))
    return [t1, t2, t3]


class TestCladeSupport:
    def test_fractions(self, three_trees):
        support = clade_support(three_trees)
        assert support[frozenset({"a", "b"})] == pytest.approx(2 / 3)
        assert support[frozenset({"c", "d"})] == pytest.approx(1 / 3)

    def test_identical_trees_full_support(self):
        t = tree_from_nesting((("a", "b"), ("c", "d")))
        support = clade_support([t, t.copy(), t.copy()])
        assert all(v == 1.0 for v in support.values())

    def test_leaf_set_mismatch_rejected(self):
        a = tree_from_nesting(("a", "b"))
        b = tree_from_nesting(("a", "z"))
        with pytest.raises(ValueError):
            clade_support([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            clade_support([])


class TestMajorityConsensus:
    def test_majority_clades_kept(self, three_trees):
        consensus = majority_consensus(three_trees)
        assert frozenset({"a", "b"}) in clades(consensus)
        assert frozenset({"c", "d"}) not in clades(consensus)

    def test_all_leaves_present(self, three_trees):
        consensus = majority_consensus(three_trees)
        assert set(consensus.leaf_labels) == {"a", "b", "c", "d"}

    def test_result_is_valid_nonbinary_tree(self, three_trees):
        consensus = majority_consensus(three_trees)
        assert is_valid_ultrametric_tree(consensus, binary=False)

    def test_identical_trees_reproduce_topology(self):
        t = tree_from_nesting(((("a", "b"), "c"), "d"))
        consensus = majority_consensus([t, t.copy(), t.copy()])
        assert clades(consensus) == clades(t)

    def test_strict_consensus_drops_majority_only_clades(self, three_trees):
        strict = majority_consensus(three_trees, threshold=1.0)
        # {a, b} appears in 2/3 trees only -> dropped at threshold 1.
        assert frozenset({"a", "b"}) not in clades(strict)

    def test_heights_averaged(self):
        tall = tree_from_nesting((("a", "b"), "c"), height=10.0)
        short = tree_from_nesting((("a", "b"), "c"), height=6.0)
        consensus = majority_consensus([tall, short])
        assert consensus.height() == pytest.approx(8.0)
        inner = consensus.lca("a", "b")
        assert inner.height == pytest.approx((5.0 + 3.0) / 2)

    def test_threshold_validated(self, three_trees):
        with pytest.raises(ValueError):
            majority_consensus(three_trees, threshold=0.3)
        with pytest.raises(ValueError):
            majority_consensus(three_trees, threshold=1.5)

    def test_consensus_of_all_optimal_trees(self):
        """Works on the solver's 'results set' output directly."""
        for seed in range(6):
            m = random_metric_matrix(7, seed=seed)
            result = exact_mut(m, collect_all=True)
            if len(result.all_trees) >= 2:
                consensus = majority_consensus(result.all_trees)
                assert set(consensus.leaf_labels) == set(m.labels)
                assert is_valid_ultrametric_tree(consensus, binary=False)
                return
        pytest.skip("no multi-optimum instance found in the seed range")
