"""Tests for Newick serialization."""

import pytest

from repro.heuristics.upgma import upgmm
from repro.matrix.generators import random_metric_matrix
from repro.tree.newick import NewickError, parse_newick, to_newick
from repro.tree.ultrametric import TreeNode, UltrametricTree


def simple_tree():
    inner = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="b")])
    return UltrametricTree(TreeNode(4.0, [inner, TreeNode(label="c")]))


class TestToNewick:
    def test_format(self):
        s = to_newick(simple_tree())
        assert s == "((a:1.000000,b:1.000000):3.000000,c:4.000000);"

    def test_single_leaf(self):
        assert to_newick(UltrametricTree.leaf("only")) == "only;"

    def test_quoting_special_labels(self):
        t = UltrametricTree.join(
            UltrametricTree.leaf("sp one"), UltrametricTree.leaf("x:y"), 1.0
        )
        s = to_newick(t)
        assert "'sp one'" in s
        assert "'x:y'" in s

    def test_precision(self):
        s = to_newick(simple_tree(), precision=2)
        assert ":1.00" in s


class TestParseNewick:
    def test_round_trip(self):
        t = simple_tree()
        back = parse_newick(to_newick(t, precision=10))
        assert back.leaf_labels == t.leaf_labels
        assert back.cost() == pytest.approx(t.cost())
        assert back.distance("a", "c") == pytest.approx(8.0)

    def test_round_trip_random_trees(self):
        for seed in range(4):
            t = upgmm(random_metric_matrix(9, seed=seed))
            back = parse_newick(to_newick(t, precision=12))
            assert back.cost() == pytest.approx(t.cost())
            for a in t.leaf_labels[:3]:
                for b in t.leaf_labels[3:6]:
                    assert back.distance(a, b) == pytest.approx(t.distance(a, b))

    def test_quoted_labels_round_trip(self):
        t = UltrametricTree.join(
            UltrametricTree.leaf("a b"), UltrametricTree.leaf("it's"), 2.0
        )
        back = parse_newick(to_newick(t))
        assert set(back.leaf_labels) == {"a b", "it's"}

    def test_single_leaf(self):
        t = parse_newick("x;")
        assert t.leaf_labels == ["x"]

    def test_whitespace_tolerated(self):
        t = parse_newick(" ( a:1 , b:1 ) ; ")
        assert set(t.leaf_labels) == {"a", "b"}

    def test_missing_semicolon_ok(self):
        t = parse_newick("(a:1,b:1)")
        assert t.n_leaves == 2

    def test_unbalanced_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("((a:1,b:1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(NewickError, match="trailing"):
            parse_newick("(a:1,b:1);xyz")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(NewickError, match="unterminated"):
            parse_newick("('a:1,b:1);")

    def test_leaf_without_label_rejected(self):
        with pytest.raises(NewickError, match="label"):
            parse_newick("(:1.0,b:1.0);")
