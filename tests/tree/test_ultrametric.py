"""Tests for the UltrametricTree data structure."""

import pytest

from repro.tree.ultrametric import TreeNode, UltrametricTree


def build_caterpillar():
    """((a:1, b:1):3, c:4) -- heights: inner 1, root 4."""
    inner = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="b")])
    root = TreeNode(4.0, [inner, TreeNode(label="c")])
    return UltrametricTree(root)


class TestConstruction:
    def test_leaf(self):
        t = UltrametricTree.leaf("x")
        assert t.n_leaves == 1
        assert t.cost() == 0.0
        assert t.height() == 0.0

    def test_join(self):
        t = UltrametricTree.join(
            UltrametricTree.leaf("a"), UltrametricTree.leaf("b"), 2.5
        )
        assert t.height() == 2.5
        assert t.cost() == 5.0

    def test_join_rejects_low_height(self):
        tall = build_caterpillar()
        with pytest.raises(ValueError, match="below"):
            UltrametricTree.join(tall, UltrametricTree.leaf("z"), 1.0)

    def test_duplicate_leaf_rejected(self):
        root = TreeNode(1.0, [TreeNode(label="a"), TreeNode(label="a")])
        with pytest.raises(ValueError, match="duplicate"):
            UltrametricTree(root)

    def test_unlabeled_leaf_rejected(self):
        root = TreeNode(1.0, [TreeNode(label="a"), TreeNode()])
        with pytest.raises(ValueError, match="label"):
            UltrametricTree(root)


class TestQueries:
    def test_leaf_labels_order(self):
        t = build_caterpillar()
        assert t.leaf_labels == ["a", "b", "c"]

    def test_has_leaf(self):
        t = build_caterpillar()
        assert t.has_leaf("b")
        assert not t.has_leaf("z")

    def test_cost(self):
        t = build_caterpillar()
        # edges: root->inner (3), root->c (4), inner->a (1), inner->b (1)
        assert t.cost() == pytest.approx(9.0)

    def test_cost_equals_height_identity(self):
        """omega(T) = h(root) + sum of internal heights."""
        t = build_caterpillar()
        internal = [n.height for n in t.root.walk() if not n.is_leaf]
        assert t.cost() == pytest.approx(t.height() + sum(internal))

    def test_lca(self):
        t = build_caterpillar()
        assert t.lca("a", "b").height == 1.0
        assert t.lca("a", "c").height == 4.0

    def test_distance(self):
        t = build_caterpillar()
        assert t.distance("a", "b") == 2.0
        assert t.distance("b", "c") == 8.0
        assert t.distance("a", "a") == 0.0

    def test_distance_matrix(self):
        t = build_caterpillar()
        m = t.distance_matrix(["a", "b", "c"])
        assert m["a", "b"] == 2.0
        assert m["a", "c"] == 8.0
        assert m.is_ultrametric()

    def test_distance_matrix_default_labels(self):
        t = build_caterpillar()
        m = t.distance_matrix()
        assert set(m.labels) == {"a", "b", "c"}


class TestCopy:
    def test_copy_is_deep(self):
        t = build_caterpillar()
        c = t.copy()
        c.root.height = 99.0
        assert t.root.height == 4.0

    def test_copy_preserves_cost(self):
        t = build_caterpillar()
        assert t.copy().cost() == t.cost()


class TestReplaceLeaf:
    def test_graft_subtree(self):
        t = build_caterpillar()
        sub = UltrametricTree.join(
            UltrametricTree.leaf("c1"), UltrametricTree.leaf("c2"), 0.5
        )
        merged = t.replace_leaf("c", sub)
        assert set(merged.leaf_labels) == {"a", "b", "c1", "c2"}
        assert merged.distance("c1", "c2") == 1.0
        # Grafting under the root: c1 is at root distance from a.
        assert merged.distance("a", "c1") == 8.0

    def test_graft_preserves_original(self):
        t = build_caterpillar()
        sub = UltrametricTree.leaf("z")
        merged = t.replace_leaf("c", sub)
        assert t.has_leaf("c")
        assert merged.has_leaf("z") and not merged.has_leaf("c")

    def test_graft_too_tall_rejected(self):
        t = build_caterpillar()
        tall = UltrametricTree.join(
            UltrametricTree.leaf("x"), UltrametricTree.leaf("y"), 100.0
        )
        with pytest.raises(ValueError, match="graft"):
            t.replace_leaf("a", tall)

    def test_graft_onto_single_leaf_tree(self):
        t = UltrametricTree.leaf("only")
        sub = UltrametricTree.join(
            UltrametricTree.leaf("x"), UltrametricTree.leaf("y"), 1.0
        )
        merged = t.replace_leaf("only", sub)
        assert set(merged.leaf_labels) == {"x", "y"}

    def test_missing_leaf_raises(self):
        t = build_caterpillar()
        with pytest.raises(KeyError):
            t.replace_leaf("nope", UltrametricTree.leaf("z"))

    def test_cost_after_graft(self):
        t = build_caterpillar()
        sub = UltrametricTree.join(
            UltrametricTree.leaf("c1"), UltrametricTree.leaf("c2"), 0.5
        )
        merged = t.replace_leaf("c", sub)
        # Old cost 9, minus c's pendant edge 4, plus edge root->sub
        # (4 - 0.5 = 3.5) plus the subtree's internal cost 1.0.
        assert merged.cost() == pytest.approx(9.0 - 4.0 + 3.5 + 1.0)


class TestTreeNode:
    def test_walk_counts(self):
        t = build_caterpillar()
        assert len(list(t.root.walk())) == 5

    def test_leaves(self):
        t = build_caterpillar()
        assert [leaf.label for leaf in t.root.leaves()] == ["a", "b", "c"]

    def test_parent_links(self):
        t = build_caterpillar()
        for node in t.root.walk():
            for child in node.children:
                assert child.parent is node

    def test_repr(self):
        assert "leaf" in repr(TreeNode(label="a"))
        assert "children" in repr(build_caterpillar().root)
