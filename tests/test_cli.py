"""Tests for the repro-mut command-line interface."""

import json

import pytest

from repro.cli import main
from repro.matrix.generators import clustered_matrix
from repro.matrix.io import read_phylip, write_phylip


@pytest.fixture
def matrix_file(tmp_path):
    path = tmp_path / "matrix.phy"
    write_phylip(clustered_matrix([3, 3], seed=1), path)
    return str(path)


class TestBuild:
    def test_default_method(self, matrix_file, capsys):
        assert main(["build", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "method : compact" in out
        assert "cost" in out

    @pytest.mark.parametrize("method", ["bnb", "upgma", "upgmm", "nj"])
    def test_methods(self, matrix_file, method, capsys):
        assert main(["build", matrix_file, "--method", method]) == 0
        assert f"method : {method}" in capsys.readouterr().out

    def test_parallel_method(self, matrix_file, capsys):
        assert main([
            "build", matrix_file, "--method", "parallel-bnb", "--workers", "4"
        ]) == 0
        assert "cost" in capsys.readouterr().out

    def test_json_output(self, matrix_file, capsys):
        assert main(["build", matrix_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_species"] == 6
        assert payload["newick"].endswith(";")

    def test_newick_out(self, matrix_file, tmp_path, capsys):
        out = tmp_path / "tree.nwk"
        assert main(["build", matrix_file, "--newick-out", str(out)]) == 0
        from repro.tree.newick import parse_newick

        tree = parse_newick(out.read_text())
        assert tree.n_leaves == 6

    def test_reduction_option(self, matrix_file, capsys):
        assert main(["build", matrix_file, "--reduction", "average"]) == 0

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit, match="no such matrix"):
            main(["build", "/nonexistent/file.phy"])

    def test_csv_input(self, tmp_path, capsys):
        from repro.matrix.io import write_csv_matrix

        path = tmp_path / "m.csv"
        write_csv_matrix(clustered_matrix([2, 3], seed=2), path)
        assert main(["build", str(path), "--method", "upgmm"]) == 0

    def test_trace_out(self, matrix_file, tmp_path, capsys):
        from repro.obs import SpanEvent, read_jsonl

        trace = tmp_path / "events.jsonl"
        assert main(["build", matrix_file, "--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "trace event(s)" in captured.err
        events = read_jsonl(trace)
        names = {e.name for e in events if isinstance(e, SpanEvent)}
        assert "pipeline.build" in names
        assert "pipeline.solve" in names

    def test_trace_out_solve_spans_match_reported_elapsed(
        self, matrix_file, tmp_path, capsys
    ):
        """Acceptance: the JSONL solve spans account for the run's time."""
        from repro.obs import SpanEvent, read_jsonl

        trace = tmp_path / "events.jsonl"
        assert main([
            "build", matrix_file, "--trace-out", str(trace), "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        spans = [
            e for e in read_jsonl(trace)
            if isinstance(e, SpanEvent) and e.name == "pipeline.build"
        ]
        (build,) = spans
        assert build.duration == pytest.approx(payload["elapsed_seconds"])


class TestBuildProgress:
    def test_progress_prints_heartbeats_to_stderr(self, matrix_file, capsys):
        assert main([
            "build", matrix_file, "--method", "bnb", "--progress",
            "--progress-interval", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "cost" in captured.out
        lines = [
            line for line in captured.err.splitlines()
            if line.startswith("[bnb]")
        ]
        assert lines, captured.err
        assert "incumbent=" in lines[-1]
        assert "gap=" in lines[-1]

    def test_progress_events_land_in_trace(self, matrix_file, tmp_path,
                                           capsys):
        from repro.obs import CounterEvent, read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert main([
            "build", matrix_file, "--method", "bnb", "--progress",
            "--trace-out", str(trace),
        ]) == 0
        events = read_jsonl(trace)
        assert any(
            isinstance(e, CounterEvent) and e.name == "bnb.progress"
            for e in events
        )

    def test_without_flag_no_heartbeats(self, matrix_file, capsys):
        assert main(["build", matrix_file, "--method", "bnb"]) == 0
        assert "[bnb]" not in capsys.readouterr().err


class TestProfile:
    def test_prints_span_tree(self, matrix_file, capsys):
        assert main(["profile", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "pipeline.build" in out
        assert "span totals by name:" in out
        assert "counters:" in out
        assert "%" in out

    def test_method_option(self, matrix_file, capsys):
        assert main(["profile", matrix_file, "--method", "bnb"]) == 0
        out = capsys.readouterr().out
        assert "bnb.solve" in out

    def test_min_percent_filters(self, matrix_file, capsys):
        assert main(["profile", matrix_file, "--min-percent", "100"]) == 0
        out = capsys.readouterr().out
        # Only the 100% root line survives in the tree section.
        tree_lines = [
            line for line in out.splitlines() if "pipeline." in line
        ]
        assert all("pipeline.build" in line or "totals" in line
                   for line in tree_lines if "x" not in line)

    def test_trace_out_also_written(self, matrix_file, tmp_path, capsys):
        from repro.obs import read_jsonl

        trace = tmp_path / "profile.jsonl"
        assert main([
            "profile", matrix_file, "--trace-out", str(trace)
        ]) == 0
        assert read_jsonl(trace)

    def test_chrome_trace_written(self, matrix_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main([
            "profile", matrix_file, "--chrome-trace", str(out)
        ]) == 0
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert "X" in phases  # spans as complete events
        names = {event["name"] for event in trace["traceEvents"]}
        assert "pipeline.build" in names

    def test_chrome_trace_from_trace_file(self, matrix_file, tmp_path,
                                          capsys):
        jsonl = tmp_path / "profile.jsonl"
        chrome = tmp_path / "chrome.json"
        assert main([
            "profile", matrix_file, "--trace-out", str(jsonl)
        ]) == 0
        assert main([
            "profile", str(jsonl), "--chrome-trace", str(chrome)
        ]) == 0
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]


class TestCompactSets:
    def test_text_output(self, matrix_file, capsys):
        assert main(["compact-sets", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "compact set" in out
        assert "largest reduced matrix" in out

    def test_json_output(self, matrix_file, capsys):
        assert main(["compact-sets", matrix_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_species"] == 6
        assert isinstance(payload["compact_sets"], list)
        # The two generated clusters must appear.
        sets = {tuple(sorted(s)) for s in payload["compact_sets"]}
        assert ("s0", "s1", "s2") in sets
        assert ("s3", "s4", "s5") in sets


class TestGenerate:
    def test_hmdna(self, tmp_path, capsys):
        out = tmp_path / "gen.phy"
        assert main([
            "generate", "--kind", "hmdna", "--species", "8",
            "--seed", "5", "--out", str(out),
        ]) == 0
        matrix = read_phylip(out)
        assert matrix.n == 8
        assert matrix.is_metric()

    def test_random(self, tmp_path, capsys):
        out = tmp_path / "gen.phy"
        assert main([
            "generate", "--kind", "random", "--species", "7",
            "--seed", "2", "--out", str(out),
        ]) == 0
        assert read_phylip(out).n == 7

    def test_roundtrip_build(self, tmp_path, capsys):
        out = tmp_path / "gen.phy"
        main(["generate", "--species", "8", "--seed", "1", "--out", str(out)])
        assert main(["build", str(out), "--method", "compact"]) == 0


class TestDistances:
    def test_fasta_to_matrix(self, tmp_path, capsys):
        from repro.sequences.fasta import write_fasta

        fasta = tmp_path / "seqs.fasta"
        write_fasta({"a": "AAAA", "b": "AACC", "c": "CCCC"}, fasta)
        out = tmp_path / "m.phy"
        assert main(["distances", str(fasta), "--out", str(out)]) == 0
        matrix = read_phylip(out)
        assert matrix.n == 3
        assert matrix["a", "c"] == 4.0

    def test_distance_method(self, tmp_path, capsys):
        from repro.sequences.fasta import write_fasta

        fasta = tmp_path / "seqs.fasta"
        write_fasta({"a": "ACGT", "b": "ACG"}, fasta)
        out = tmp_path / "m.phy"
        assert main([
            "distances", str(fasta), "--out", str(out), "--distance", "edit"
        ]) == 0
        assert read_phylip(out)["a", "b"] == 1.0

    def test_missing_fasta(self, tmp_path):
        with pytest.raises(SystemExit, match="no such FASTA"):
            main(["distances", "/nope.fasta", "--out", str(tmp_path / "m.phy")])


class TestRender:
    def test_render_output(self, matrix_file, capsys):
        assert main(["render", matrix_file, "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "cost" in out
        assert "+" in out and "-" in out
        for label in ("s0", "s5"):
            assert label in out

    def test_render_rejects_nj(self, matrix_file):
        with pytest.raises(SystemExit, match="ultrametric"):
            main(["render", matrix_file, "--method", "nj"])


class TestValidate:
    def test_validate_ok(self, matrix_file, capsys):
        assert main(["validate", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "verdict            : OK" in out

    def test_validate_with_optimal(self, matrix_file, capsys):
        assert main(["validate", matrix_file, "--compare-optimal"]) == 0
        assert "exact optimum" in capsys.readouterr().out

    def test_validate_rejects_nj(self, matrix_file):
        with pytest.raises(SystemExit, match="ultrametric"):
            main(["validate", matrix_file, "--method", "nj"])


class TestCompare:
    def test_identical_trees(self, matrix_file, tmp_path, capsys):
        a = tmp_path / "a.nwk"
        b = tmp_path / "b.nwk"
        main(["build", matrix_file, "--newick-out", str(a)])
        main(["build", matrix_file, "--newick-out", str(b)])
        capsys.readouterr()
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Robinson-Foulds distance : 0" in out

    def test_json_output(self, matrix_file, tmp_path, capsys):
        a = tmp_path / "a.nwk"
        main(["build", matrix_file, "--newick-out", str(a)])
        capsys.readouterr()
        assert main(["compare", str(a), str(a), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["robinson_foulds"] == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such tree"):
            main(["compare", "/nope.nwk", "/nope2.nwk"])


class TestGenerateFasta:
    def test_fasta_out(self, tmp_path, capsys):
        out = tmp_path / "m.phy"
        fasta = tmp_path / "seqs.fasta"
        assert main([
            "generate", "--kind", "hmdna", "--species", "6", "--seed", "3",
            "--out", str(out), "--fasta-out", str(fasta),
        ]) == 0
        from repro.sequences.fasta import read_fasta

        assert len(read_fasta(fasta)) == 6

    def test_fasta_out_requires_hmdna(self, tmp_path):
        with pytest.raises(SystemExit, match="hmdna"):
            main([
                "generate", "--kind", "random", "--species", "5",
                "--out", str(tmp_path / "m.phy"),
                "--fasta-out", str(tmp_path / "s.fasta"),
            ])


class TestInspect:
    def test_text_output(self, matrix_file, capsys):
        assert main(["inspect", matrix_file]) == 0
        out = capsys.readouterr().out
        assert "species" in out
        assert "compact sets" in out
        assert "recommendation" in out

    def test_json_output(self, matrix_file, capsys):
        assert main(["inspect", matrix_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 6
        assert payload["is_metric"] is True
        assert 0.0 <= payload["structure_score"] <= 1.0


class TestBootstrapCommand:
    @pytest.fixture
    def fasta_file(self, tmp_path):
        from repro.sequences.fasta import write_fasta
        from repro.sequences.hmdna import generate_hmdna_dataset

        dataset = generate_hmdna_dataset(6, seed=4, sequence_length=200)
        path = tmp_path / "seqs.fasta"
        write_fasta(dataset.sequences, path)
        return str(path)

    def test_text_output(self, fasta_file, capsys):
        assert main([
            "bootstrap", fasta_file, "--replicates", "5", "--seed", "1"
        ]) == 0
        out = capsys.readouterr().out
        assert "clade support" in out
        assert "%" in out

    def test_json_output(self, fasta_file, capsys):
        assert main([
            "bootstrap", fasta_file, "--replicates", "4", "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replicates"] == 4
        assert payload["newick"].endswith(";")
        for entry in payload["support"]:
            assert 0.0 <= entry["support"] <= 1.0

    def test_missing_fasta(self):
        with pytest.raises(SystemExit, match="no such FASTA"):
            main(["bootstrap", "/nope.fasta"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro-mut {__version__}" in capsys.readouterr().out


class TestProfileFromTrace:
    @pytest.fixture
    def trace_file(self, matrix_file, tmp_path):
        trace = tmp_path / "build.jsonl"
        assert main([
            "profile", matrix_file, "--trace-out", str(trace)
        ]) == 0
        return trace

    def test_profiles_recorded_trace(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["profile", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.build" in out
        assert str(trace_file) in out

    def test_from_trace_flag_overrides_suffix(self, trace_file, tmp_path, capsys):
        renamed = tmp_path / "trace.dat"
        renamed.write_text(trace_file.read_text())
        capsys.readouterr()
        assert main(["profile", str(renamed), "--from-trace"]) == 0
        assert "pipeline.build" in capsys.readouterr().out

    def test_empty_trace_prints_no_spans_message(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_span_free_trace_prints_no_spans_message(self, tmp_path, capsys):
        span_free = tmp_path / "counters_only.jsonl"
        span_free.write_text(
            '{"event": "meta", "schema": 1}\n'
            '{"event": "counter", "name": "c", "value": 1, "time": 0.0}\n'
        )
        assert main(["profile", str(span_free)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_truncated_trace_warns_but_profiles(self, trace_file, capsys):
        text = trace_file.read_text().rstrip("\n")
        trace_file.write_text(text[:-15])
        capsys.readouterr()
        assert main(["profile", str(trace_file)]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "pipeline." in captured.out

    def test_missing_trace_file_errors(self):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["profile", "/nope/trace.jsonl"])


class TestServeParser:
    def test_serve_registered_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8533
        assert args.workers == 4
        assert args.queue_size == 64
        assert args.cache_size == 256
        assert args.cache_dir is None


class TestProfileTraceId:
    @pytest.fixture
    def two_trace_file(self, tmp_path):
        """A trace holding two requests' worth of stamped spans."""
        import itertools

        from repro.obs import Recorder, trace_context

        clock = itertools.count().__next__
        rec = Recorder(clock=lambda: float(clock()))
        with trace_context("req-a"):
            with rec.span("job.a"):
                rec.counter("hits")
        with trace_context("req-b"):
            with rec.span("job.b"):
                pass
        trace = tmp_path / "two.jsonl"
        rec.write_jsonl(trace)
        return trace

    def test_filters_to_one_request(self, two_trace_file, capsys):
        assert main([
            "profile", str(two_trace_file), "--trace-id", "req-a"
        ]) == 0
        out = capsys.readouterr().out
        assert "trace_id: req-a" in out
        assert "job.a" in out
        assert "job.b" not in out

    def test_unmatched_id_reports_cleanly(self, two_trace_file, capsys):
        assert main([
            "profile", str(two_trace_file), "--trace-id", "nope"
        ]) == 0
        assert "no events with trace_id" in capsys.readouterr().out

    def test_trace_id_requires_trace_input(self, matrix_file):
        with pytest.raises(SystemExit, match="--trace-id"):
            main(["profile", matrix_file, "--trace-id", "x"])


class TestServeTraceArgs:
    def test_streaming_args_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.trace_max_mb is None
        assert args.trace_ring == 4096
        args = build_parser().parse_args([
            "serve", "--trace-out", "t.jsonl",
            "--trace-max-mb", "64", "--trace-ring", "512",
        ])
        assert args.trace_max_mb == 64.0
        assert args.trace_ring == 512


def _break_bnb(monkeypatch):
    """Patch the construction entry point so bnb lies about its cost."""
    import repro.core.api as api

    real = api.construct_tree

    def broken(matrix, method, **kwargs):
        result = real(matrix, method, **kwargs)
        if method == "bnb":
            result.cost = result.cost * 1.001
        return result

    monkeypatch.setattr(api, "construct_tree", broken)


class TestVerify:
    def test_clean_matrix_exits_zero(self, matrix_file, capsys):
        assert main([
            "verify", matrix_file, "--methods", "bnb,parallel-bnb,upgmm"
        ]) == 0
        captured = capsys.readouterr()
        assert "verdict: OK" in captured.out
        assert captured.err == ""

    def test_json_output(self, matrix_file, capsys):
        assert main([
            "verify", matrix_file, "--methods", "bnb,upgmm", "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["methods"] == ["bnb", "upgmm"]

    def test_missing_file_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "/nonexistent/matrix.phy"])
        assert excinfo.value.code == 2
        assert "no such matrix file" in capsys.readouterr().err

    def test_unknown_method_is_usage_error(self, matrix_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", matrix_file, "--methods", "bnb,astrology"])
        assert excinfo.value.code == 2
        assert "unknown methods" in capsys.readouterr().err

    def test_broken_engine_exits_one_with_repro_line(
        self, matrix_file, monkeypatch, capsys
    ):
        _break_bnb(monkeypatch)
        code = main([
            "verify", matrix_file,
            "--methods", "bnb,parallel-bnb,upgmm", "--seed", "3",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "VIOLATION [" in err
        assert (
            f"reproduce with: repro-mut verify {matrix_file} "
            "--methods bnb,parallel-bnb,upgmm --seed 3"
        ) in err


class TestFuzz:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main([
            "fuzz", "--seed", "0", "--budget", "8",
            "--methods", "bnb,upgmm", "--corpus", str(corpus),
        ]) == 0
        captured = capsys.readouterr()
        assert "verdict : OK" in captured.out
        assert not corpus.exists()

    def test_json_output(self, tmp_path, capsys):
        assert main([
            "fuzz", "--seed", "1", "--budget", "4",
            "--methods", "upgmm", "--corpus", str(tmp_path / "c"), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cases_run"] == 4

    def test_bad_budget_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--budget", "0"])
        assert excinfo.value.code == 2
        assert "--budget" in capsys.readouterr().err

    def test_bad_species_range_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--min-species", "9", "--max-species", "5"])
        assert excinfo.value.code == 2

    def test_broken_engine_exits_one_and_writes_corpus(
        self, tmp_path, monkeypatch, capsys
    ):
        _break_bnb(monkeypatch)
        corpus = tmp_path / "corpus"
        code = main([
            "fuzz", "--seed", "0", "--budget", "8",
            "--methods", "bnb,parallel-bnb,upgmm",
            "--corpus", str(corpus), "--max-failures", "2",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "FUZZ FAILURE seed=0" in err
        assert f"corpus={corpus}" in err
        assert "reproduce: repro-mut verify" in err
        assert "replay the campaign with: repro-mut fuzz --seed 0" in err
        phy_files = sorted(corpus.glob("fail-seed0-case*.phy"))
        assert phy_files
        assert all(p.with_suffix(".json").exists() for p in phy_files)
