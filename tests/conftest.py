"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix.distance_matrix import DistanceMatrix

#: Reconstruction of the paper's Figure 3 worked example.  The exact edge
#: weights are not recoverable from the scan, so these were chosen to
#: reproduce every structural fact the paper states: the Kruskal MST edge
#: order is (1,3), (4,6), (1,2), (3,5), (5,6) and the compact sets are
#: exactly {1,3}, {4,6}, {1,2,3}, {1,2,3,5} (species named "1".."6").
PAPER_EXAMPLE_VALUES = [
    [0.0, 3.0, 1.0, 6.2, 4.5, 6.4],
    [3.0, 0.0, 3.5, 6.1, 4.6, 6.3],
    [1.0, 3.5, 0.0, 5.8, 4.0, 5.9],
    [6.2, 6.1, 5.8, 0.0, 5.5, 2.0],
    [4.5, 4.6, 4.0, 5.5, 0.0, 5.0],
    [6.4, 6.3, 5.9, 2.0, 5.0, 0.0],
]

PAPER_EXAMPLE_LABELS = ["1", "2", "3", "4", "5", "6"]


@pytest.fixture
def paper_example() -> DistanceMatrix:
    """The Figure 3 six-species example matrix."""
    return DistanceMatrix(PAPER_EXAMPLE_VALUES, PAPER_EXAMPLE_LABELS)


@pytest.fixture
def tiny_matrix() -> DistanceMatrix:
    """A hand-checkable three-species matrix.

    The unique optimal ultrametric tree joins a and b at height 1 and
    c at height 4: omega = 1 + 1 + 4 + (4 - 1) = 9... computed as
    h(root) + sum internal heights = 4 + (4 + 1) = 9.
    """
    return DistanceMatrix(
        [[0, 2, 8], [2, 0, 8], [8, 8, 0]], labels=["a", "b", "c"]
    )


@pytest.fixture
def square5() -> DistanceMatrix:
    """A five-species metric with two obvious clusters {a, b} / {c, d, e}."""
    return DistanceMatrix(
        [
            [0, 2, 10, 11, 12],
            [2, 0, 11, 10, 12],
            [10, 11, 0, 3, 4],
            [11, 10, 3, 0, 4],
            [12, 12, 4, 4, 0],
        ],
        labels=list("abcde"),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
