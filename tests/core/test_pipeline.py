"""Tests for the end-to-end compact-set pipeline."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    clustered_matrix,
    hierarchical_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.obs import Recorder
from repro.parallel.config import ClusterConfig
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


class TestBuild:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_tree_on_clustered_data(self, seed):
        m = hierarchical_matrix([[3, 2], [3]], seed=seed)
        result = CompactSetTreeBuilder().build(m)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, m)
        assert result.cost == pytest.approx(result.tree.cost())

    def test_cost_between_optimum_and_upgmm(self):
        for seed in range(4):
            m = clustered_matrix([3, 3, 2], seed=seed)
            result = CompactSetTreeBuilder().build(m)
            assert result.cost >= exact_mut(m).cost - 1e-9
            assert result.cost <= upgmm(m).cost() + 1e-9

    def test_near_optimal_on_clustered_data(self):
        """The Figure 9/10 claim: cost within a few percent of optimal."""
        for seed in range(5):
            m = hierarchical_matrix([[3, 2], [4]], seed=seed)
            compact_cost = CompactSetTreeBuilder().build(m).cost
            optimal = exact_mut(m).cost
            assert compact_cost <= optimal * 1.05 + 1e-9

    def test_subproblems_small_on_clustered_data(self):
        m = hierarchical_matrix([[3, 3], [3, 3]], seed=1)
        result = CompactSetTreeBuilder().build(m)
        assert result.max_subproblem_size <= 4
        assert result.max_subproblem_size < m.n

    def test_no_compact_sets_degenerates_to_plain_bnb(self):
        # All-equal distances: the root reduced matrix is the full matrix.
        m = DistanceMatrix(
            [[0, 5, 5, 5], [5, 0, 5, 5], [5, 5, 0, 5], [5, 5, 5, 0]]
        )
        result = CompactSetTreeBuilder().build(m)
        assert result.max_subproblem_size == 4
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_ultrametric_input_exactly_recovered(self):
        m = random_ultrametric_matrix(10, seed=6)
        result = CompactSetTreeBuilder().build(m)
        assert result.cost == pytest.approx(exact_mut(m).cost)

    def test_single_species(self):
        m = DistanceMatrix([[0.0]], labels=["only"])
        result = CompactSetTreeBuilder().build(m)
        assert result.tree.leaf_labels == ["only"]
        assert result.cost == 0.0

    def test_two_species(self):
        m = DistanceMatrix([[0, 6], [6, 0]], labels=["x", "y"])
        result = CompactSetTreeBuilder().build(m)
        assert result.cost == pytest.approx(6.0)

    def test_zero_species_rejected(self):
        import numpy as np

        m = DistanceMatrix(np.zeros((0, 0)), labels=[])
        with pytest.raises(ValueError):
            CompactSetTreeBuilder().build(m)

    def test_labels_preserved(self):
        m = clustered_matrix([2, 3], seed=3, labels=list("vwxyz"))
        result = CompactSetTreeBuilder().build(m)
        assert set(result.tree.leaf_labels) == set("vwxyz")

    def test_paper_example(self, paper_example):
        result = CompactSetTreeBuilder().build(paper_example)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, paper_example)
        assert result.max_subproblem_size <= 3


class TestReports:
    def test_one_report_per_internal_node(self):
        m = hierarchical_matrix([[3, 2], [3]], seed=2)
        result = CompactSetTreeBuilder().build(m)
        assert len(result.reports) == len(result.hierarchy.internal_nodes())

    def test_report_fields(self):
        m = clustered_matrix([3, 3], seed=4)
        result = CompactSetTreeBuilder().build(m)
        for report in result.reports:
            assert report.size >= 2
            assert report.elapsed_seconds >= 0.0
            assert report.solver in ("bnb", "parallel", "upgmm")
            assert report.cost > 0

    def test_elapsed_recorded(self):
        m = clustered_matrix([3, 3], seed=4)
        result = CompactSetTreeBuilder().build(m)
        assert result.elapsed_seconds > 0


class TestObservability:
    def test_one_solve_span_per_subproblem_report(self):
        recorder = Recorder()
        m = hierarchical_matrix([[3, 2], [3]], seed=2)
        result = CompactSetTreeBuilder(recorder=recorder).build(m)
        solves = recorder.spans("pipeline.solve")
        assert len(solves) == len(result.reports)
        # Each report's elapsed time IS its span's duration.
        for report, span in zip(result.reports, solves):
            assert report.elapsed_seconds == pytest.approx(span.duration)
            assert span.attrs["size"] == report.size
            assert span.attrs["solver"] == report.solver

    def test_span_hierarchy(self):
        recorder = Recorder()
        m = clustered_matrix([3, 3], seed=4)
        result = CompactSetTreeBuilder(recorder=recorder).build(m)
        (build,) = recorder.spans("pipeline.build")
        assert build.attrs["n"] == m.n
        assert result.elapsed_seconds == pytest.approx(build.duration)
        (discover,) = recorder.spans("pipeline.discover")
        assert discover.parent == build.id
        for node_span in recorder.spans("pipeline.node"):
            assert node_span.parent is not None
        # Every internal node produced reduce and merge spans.
        n_nodes = len(recorder.spans("pipeline.node"))
        assert len(recorder.spans("pipeline.reduce")) == n_nodes
        assert len(recorder.spans("pipeline.merge")) == n_nodes

    def test_solve_spans_cover_most_of_build_time(self):
        """Acceptance check: per-subproblem timings are consistent with
        the run's total, not a separate hand-rolled measurement."""
        recorder = Recorder()
        m = hierarchical_matrix([[3, 2], [3]], seed=2)
        result = CompactSetTreeBuilder(recorder=recorder).build(m)
        span_total = sum(s.duration for s in recorder.spans("pipeline.solve"))
        report_total = sum(r.elapsed_seconds for r in result.reports)
        assert span_total == pytest.approx(report_total)
        assert span_total <= result.elapsed_seconds

    def test_recorder_does_not_change_result(self):
        m = clustered_matrix([3, 3], seed=4)
        plain = CompactSetTreeBuilder().build(m)
        traced = CompactSetTreeBuilder(recorder=Recorder()).build(m)
        assert traced.cost == pytest.approx(plain.cost)
        assert len(traced.reports) == len(plain.reports)


class TestOptions:
    def test_parallel_solver(self):
        m = hierarchical_matrix([[3, 2], [3]], seed=5)
        result = CompactSetTreeBuilder(
            solver="parallel", cluster=ClusterConfig(n_workers=4)
        ).build(m)
        sequential = CompactSetTreeBuilder().build(m)
        assert result.cost == pytest.approx(sequential.cost)

    def test_parallel_solver_records_makespan_on_big_subproblems(self):
        # A near-uniform matrix keeps a large root subproblem, so the
        # simulated cluster actually runs (size-2 subproblems fall back).
        m = random_metric_matrix(7, seed=11)
        result = CompactSetTreeBuilder(
            solver="parallel", cluster=ClusterConfig(n_workers=4)
        ).build(m)
        if result.max_subproblem_size >= 3:
            assert result.total_simulated_makespan > 0

    def test_upgmm_solver_is_upper_bound(self):
        m = clustered_matrix([3, 3], seed=6)
        heuristic = CompactSetTreeBuilder(solver="upgmm").build(m)
        exact = CompactSetTreeBuilder().build(m)
        assert heuristic.cost >= exact.cost - 1e-9

    def test_max_exact_size_triggers_fallback(self):
        m = random_metric_matrix(9, seed=7)  # few compact sets -> big root
        result = CompactSetTreeBuilder(max_exact_size=4).build(m)
        fallbacks = [r for r in result.reports if r.solver == "upgmm"]
        if result.max_subproblem_size > 4:
            assert fallbacks

    @pytest.mark.parametrize("mode", ["maximum", "minimum", "average"])
    def test_reduction_modes_run(self, mode):
        m = clustered_matrix([3, 3], seed=8)
        result = CompactSetTreeBuilder(reduction=mode).build(m)
        assert is_valid_ultrametric_tree(result.tree)

    def test_reduction_cost_ordering(self):
        """minimum <= average <= maximum reduction cost."""
        m = clustered_matrix([3, 3, 2], seed=9)
        costs = {
            mode: CompactSetTreeBuilder(reduction=mode).build(m).cost
            for mode in ("minimum", "average", "maximum")
        }
        assert costs["minimum"] <= costs["average"] + 1e-9
        assert costs["average"] <= costs["maximum"] + 1e-9

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            CompactSetTreeBuilder(reduction="median")

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            CompactSetTreeBuilder(solver="quantum")

    def test_solver_options_forwarded(self):
        m = clustered_matrix([3, 3], seed=10)
        result = CompactSetTreeBuilder(lower_bound="trivial").build(m)
        assert is_valid_ultrametric_tree(result.tree)


class TestSubproblemWorkers:
    def report_key(self, report):
        return (report.members, report.size, report.solver, report.cost)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_threaded_matches_sequential(self, workers):
        from repro.tree.newick import to_newick

        m = hierarchical_matrix([[3, 3], [3, 3]], seed=12)
        sequential = CompactSetTreeBuilder().build(m)
        threaded = CompactSetTreeBuilder(
            subproblem_workers=workers
        ).build(m)
        assert threaded.cost == sequential.cost
        assert to_newick(threaded.tree) == to_newick(sequential.tree)
        # The report list is deterministic pre-order, independent of how
        # the thread pool scheduled the sibling subtrees.
        assert [self.report_key(r) for r in threaded.reports] == [
            self.report_key(r) for r in sequential.reports
        ]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="subproblem_workers"):
            CompactSetTreeBuilder(subproblem_workers=0)

    def test_spans_recorded_from_pool_threads(self):
        recorder = Recorder()
        m = hierarchical_matrix([[3, 2], [3, 2]], seed=13)
        result = CompactSetTreeBuilder(
            subproblem_workers=4, recorder=recorder
        ).build(m)
        # Still exactly one solve span per report, even when siblings
        # solved concurrently on worker threads.
        assert len(recorder.spans("pipeline.solve")) == len(result.reports)


class TestAggregateSearchStats:
    def test_aggregates_over_exact_reports(self):
        m = hierarchical_matrix([[3, 2], [3]], seed=14)
        result = CompactSetTreeBuilder().build(m)
        with_stats = [r.stats for r in result.reports if r.stats is not None]
        assert with_stats  # the exact solver ran somewhere
        agg = result.aggregate_search_stats
        assert agg.nodes_created == sum(s.nodes_created for s in with_stats)
        assert agg.nodes_expanded == sum(s.nodes_expanded for s in with_stats)
        assert agg.initial_upper_bound == pytest.approx(
            sum(s.initial_upper_bound for s in with_stats)
        )
        assert agg.best_cost == min(s.best_cost for s in with_stats)
        assert agg.max_open_size == max(s.max_open_size for s in with_stats)

    def test_none_for_heuristic_solver(self):
        m = clustered_matrix([3, 3], seed=15)
        result = CompactSetTreeBuilder(solver="upgmm").build(m)
        assert all(r.stats is None for r in result.reports)
        assert result.aggregate_search_stats is None

    def test_fallback_reports_carry_no_stats(self):
        m = random_metric_matrix(9, seed=7)  # few compact sets -> big root
        result = CompactSetTreeBuilder(max_exact_size=4).build(m)
        for report in result.reports:
            if report.solver == "upgmm":
                assert report.stats is None
            else:
                assert report.stats is not None
