"""The cache-aware construction entry point (``construct_tree_cached``)."""

from repro.core.api import construct_tree, construct_tree_cached
from repro.obs import Recorder
from repro.service.cache import ResultCache
from repro.tree.newick import to_newick


class TestConstructTreeCached:
    def test_miss_then_hit(self, square5):
        cache = ResultCache()
        rec = Recorder()
        first = construct_tree_cached(
            square5, "compact", cache=cache, recorder=rec
        )
        second = construct_tree_cached(
            square5, "compact", cache=cache, recorder=rec
        )
        assert to_newick(first.tree) == to_newick(second.tree)
        assert first.cost == second.cost
        assert rec.counter_total("cache.miss") == 1
        assert rec.counter_total("cache.hit") == 1
        # The hit's details is the cached payload, not an engine result.
        assert second.details["newick"] == to_newick(first.tree)

    def test_matches_uncached_result(self, square5):
        plain = construct_tree(square5, "upgmm")
        cached = construct_tree_cached(square5, "upgmm", cache=ResultCache())
        assert cached.cost == plain.cost
        assert to_newick(cached.tree) == to_newick(plain.tree)

    def test_hit_survives_cache_restart_via_disk(self, square5, tmp_path):
        first = construct_tree_cached(
            square5, "upgmm", cache=ResultCache(directory=tmp_path)
        )
        rec = Recorder()
        second = construct_tree_cached(
            square5, "upgmm",
            cache=ResultCache(directory=tmp_path), recorder=rec,
        )
        assert rec.counter_total("cache.hit") == 1
        assert to_newick(second.tree) == to_newick(first.tree)

    def test_nj_bypasses_cache(self, square5):
        cache = ResultCache()
        rec = Recorder()
        result = construct_tree_cached(
            square5, "nj", cache=cache, recorder=rec
        )
        assert result.method == "nj"
        assert len(cache) == 0
        assert rec.counter_total("cache.miss") == 0

    def test_options_partition_the_cache(self, square5):
        cache = ResultCache()
        construct_tree_cached(
            square5, "compact", cache=cache, reduction="maximum"
        )
        construct_tree_cached(
            square5, "compact", cache=cache, reduction="minimum"
        )
        assert len(cache) == 2

    def test_metrics_counters_track_hits_and_misses(self, square5):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache()
        construct_tree_cached(
            square5, "compact", cache=cache, metrics=registry
        )
        construct_tree_cached(
            square5, "compact", cache=cache, metrics=registry
        )
        assert registry.counter("cache.miss").value() == 1
        assert registry.counter("cache.hit").value() == 1
        # The miss also timed the underlying solve.
        hist = registry.histogram("solve.seconds", labelnames=("method",))
        assert hist.count(method="compact") == 1
