"""Tests for group-matrix reduction."""

import pytest

from repro.core.reduction import REDUCTIONS, reduce_matrix
from repro.matrix.generators import clustered_matrix, random_metric_matrix


class TestReduceMatrix:
    def test_maximum(self, square5):
        reduced = reduce_matrix(
            square5, [[0, 1], [2, 3, 4]], ["AB", "CDE"], mode="maximum"
        )
        assert reduced["AB", "CDE"] == 12.0

    def test_minimum(self, square5):
        reduced = reduce_matrix(
            square5, [[0, 1], [2, 3, 4]], ["AB", "CDE"], mode="minimum"
        )
        assert reduced["AB", "CDE"] == 10.0

    def test_average(self, square5):
        reduced = reduce_matrix(
            square5, [[0, 1], [2, 3, 4]], ["AB", "CDE"], mode="average"
        )
        expected = (10 + 11 + 12 + 11 + 10 + 12) / 6
        assert reduced["AB", "CDE"] == pytest.approx(expected)

    def test_singleton_groups_reproduce_matrix(self, square5):
        groups = [[i] for i in range(5)]
        reduced = reduce_matrix(square5, groups, square5.labels)
        assert (reduced.values == square5.values).all()

    def test_three_groups(self, square5):
        reduced = reduce_matrix(
            square5, [[0, 1], [2, 3], [4]], ["AB", "CD", "E"], mode="maximum"
        )
        assert reduced.n == 3
        assert reduced["AB", "E"] == 12.0
        assert reduced["CD", "E"] == 4.0

    def test_maximum_reduction_of_metric_is_metric(self):
        """max linkage preserves the triangle inequality."""
        for seed in range(4):
            m = random_metric_matrix(9, seed=seed)
            reduced = reduce_matrix(
                m, [[0, 1, 2], [3, 4], [5, 6], [7, 8]], list("wxyz")
            )
            assert reduced.is_metric()

    def test_minimum_reduction_can_break_metricity(self):
        """min linkage offers no such guarantee; find a witness."""
        found = False
        for seed in range(30):
            m = random_metric_matrix(9, seed=seed)
            reduced = reduce_matrix(
                m,
                [[0, 1, 2], [3, 4], [5, 6], [7, 8]],
                list("wxyz"),
                mode="minimum",
            )
            if not reduced.is_metric():
                found = True
                break
        assert found

    def test_compact_groups_ordering(self):
        """For compact groups: minimum reduction >= every within-group
        distance of either group (compactness pushes cross distances up)."""
        m = clustered_matrix([3, 3], seed=1)
        low = reduce_matrix(m, [[0, 1, 2], [3, 4, 5]], ["A", "B"], mode="minimum")
        within_max = max(
            m.values[i, j]
            for block in ([0, 1, 2], [3, 4, 5])
            for i in block
            for j in block
            if i < j
        )
        assert low["A", "B"] > within_max


class TestValidation:
    def test_unknown_mode(self, square5):
        with pytest.raises(ValueError, match="reduction"):
            reduce_matrix(square5, [[0], [1]], ["a", "b"], mode="median")

    def test_label_count_mismatch(self, square5):
        with pytest.raises(ValueError, match="label"):
            reduce_matrix(square5, [[0], [1]], ["only"])

    def test_empty_group(self, square5):
        with pytest.raises(ValueError, match="non-empty"):
            reduce_matrix(square5, [[0], []], ["a", "b"])

    def test_overlapping_groups(self, square5):
        with pytest.raises(ValueError, match="disjoint"):
            reduce_matrix(square5, [[0, 1], [1, 2]], ["a", "b"])

    def test_registry_contents(self):
        assert set(REDUCTIONS) == {"maximum", "minimum", "average"}
