"""Tests for the one-call construct_tree API."""

import pytest

from repro.core.api import METHODS, ConstructionResult, construct_tree
from repro.heuristics.nj import AdditiveTree
from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.parallel.config import ClusterConfig
from repro.tree.checks import dominates_matrix
from repro.tree.ultrametric import UltrametricTree


class TestConstructTree:
    @pytest.mark.parametrize("method", [m for m in METHODS if m != "nj"])
    def test_every_method_returns_ultrametric_tree(self, method):
        matrix = clustered_matrix([3, 3], seed=1)
        result = construct_tree(
            matrix, method, cluster=ClusterConfig(n_workers=2)
        )
        assert isinstance(result, ConstructionResult)
        assert isinstance(result.tree, UltrametricTree)
        assert result.method == method
        assert result.cost == pytest.approx(result.tree.cost())

    def test_nj_returns_additive_tree(self):
        matrix = random_metric_matrix(7, seed=2)
        result = construct_tree(matrix, "nj")
        assert isinstance(result.tree, AdditiveTree)
        assert result.cost > 0

    def test_exact_methods_agree(self):
        matrix = random_metric_matrix(8, seed=3)
        bnb = construct_tree(matrix, "bnb")
        par = construct_tree(matrix, "parallel-bnb", cluster=ClusterConfig(n_workers=4))
        assert bnb.cost == pytest.approx(par.cost)

    def test_compact_methods_agree(self):
        matrix = clustered_matrix([3, 2, 3], seed=4)
        a = construct_tree(matrix, "compact")
        b = construct_tree(
            matrix, "compact-parallel", cluster=ClusterConfig(n_workers=4)
        )
        assert a.cost == pytest.approx(b.cost)

    def test_cost_hierarchy(self):
        """bnb <= compact <= upgmm on metric input."""
        matrix = clustered_matrix([3, 3], seed=5)
        bnb = construct_tree(matrix, "bnb").cost
        compact = construct_tree(matrix, "compact").cost
        heuristic = construct_tree(matrix, "upgmm").cost
        assert bnb <= compact + 1e-9
        assert compact <= heuristic + 1e-9

    def test_feasibility_of_feasible_methods(self):
        matrix = clustered_matrix([3, 3], seed=6)
        for method in ("bnb", "compact", "upgmm"):
            result = construct_tree(matrix, method)
            assert dominates_matrix(result.tree, matrix), method

    def test_details_carry_statistics(self):
        matrix = random_metric_matrix(7, seed=7)
        result = construct_tree(matrix, "bnb")
        assert result.details.stats.nodes_expanded > 0

    def test_options_forwarded(self):
        matrix = clustered_matrix([3, 3], seed=8)
        result = construct_tree(matrix, "compact", reduction="average")
        assert result.details.reduction == "average"

    def test_unknown_method_rejected(self):
        matrix = random_metric_matrix(5, seed=9)
        with pytest.raises(ValueError, match="unknown method"):
            construct_tree(matrix, "magic")


class TestConstructTreeMetrics:
    def test_solve_latency_recorded_per_method(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        matrix = clustered_matrix([3, 3], seed=10)
        construct_tree(matrix, "upgmm", metrics=registry)
        construct_tree(matrix, "upgmm", metrics=registry)
        construct_tree(matrix, "compact", metrics=registry)
        hist = registry.histogram("solve.seconds", labelnames=("method",))
        assert hist.count(method="upgmm") == 2
        assert hist.count(method="compact") == 1
        assert hist.sum(method="upgmm") > 0

    def test_default_registry_used_when_omitted(self):
        from repro.obs.metrics import REGISTRY

        matrix = clustered_matrix([3, 3], seed=11)
        hist = REGISTRY.histogram("solve.seconds", labelnames=("method",))
        before = hist.count(method="upgmm")
        construct_tree(matrix, "upgmm")
        assert hist.count(method="upgmm") == before + 1

    def test_invalid_method_not_timed(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        matrix = random_metric_matrix(5, seed=12)
        with pytest.raises(ValueError, match="unknown method"):
            construct_tree(matrix, "magic", metrics=registry)
        assert registry.snapshot() == {}

    def test_multiprocess_method_matches_bnb(self):
        matrix = random_metric_matrix(8, seed=13)
        bnb = construct_tree(matrix, "bnb")
        mp = construct_tree(
            matrix, "multiprocess", cluster=ClusterConfig(n_workers=2)
        )
        assert mp.cost == pytest.approx(bnb.cost)
        assert mp.details.n_workers == 2
