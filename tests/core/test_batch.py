"""Tests for the batch experiment runner."""

import itertools
import math

import pytest

from repro.core.batch import BatchReport, BatchRunner
from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.obs import Recorder


@pytest.fixture
def small_batch():
    return [clustered_matrix([3, 3], seed=s) for s in range(3)]


class TestBatchRunner:
    def test_runs_every_method_on_every_matrix(self, small_batch):
        report = BatchRunner(["upgmm", "compact"]).run(small_batch)
        assert len(report.costs["upgmm"]) == 3
        assert len(report.costs["compact"]) == 3
        assert len(report.seconds["compact"]) == 3

    def test_costs_ordered(self, small_batch):
        report = BatchRunner(["bnb", "compact", "upgmm"]).run(small_batch)
        for i in range(3):
            assert report.costs["bnb"][i] <= report.costs["compact"][i] + 1e-9
            assert report.costs["compact"][i] <= report.costs["upgmm"][i] + 1e-9

    def test_aggregate_statistics(self, small_batch):
        fake_times = itertools.count()
        runner = BatchRunner(["upgmm"], clock=lambda: next(fake_times))
        report = runner.run(small_batch)
        agg = report.aggregate("upgmm")
        assert agg.runs == 3
        # Injected clock ticks once per call: every run lasts 1 "second".
        assert agg.median_seconds == 1.0
        assert agg.worst_seconds == 1.0
        assert agg.median_cost == sorted(report.costs["upgmm"])[1]

    def test_table_contains_all_methods(self, small_batch):
        report = BatchRunner(["upgma", "upgmm"]).run(small_batch)
        table = report.table()
        assert "upgma" in table and "upgmm" in table
        assert "median" in table

    def test_cost_ratio(self, small_batch):
        report = BatchRunner(["bnb", "upgmm"]).run(small_batch)
        ratios = report.cost_ratio("upgmm", "bnb")
        assert len(ratios) == 3
        assert all(r >= 1.0 - 1e-9 for r in ratios)

    def test_method_options_forwarded(self, small_batch):
        runner = BatchRunner(
            ["compact"], method_options={"compact": {"reduction": "minimum"}}
        )
        low = runner.run(small_batch)
        high = BatchRunner(["compact"]).run(small_batch)
        for a, b in zip(low.costs["compact"], high.costs["compact"]):
            assert a <= b + 1e-9

    def test_empty_inputs_rejected(self, small_batch):
        with pytest.raises(ValueError):
            BatchRunner([])
        with pytest.raises(ValueError):
            BatchRunner(["upgmm"]).run([])

    def test_nsc_table_style(self):
        """Median/average/worst over a batch, the NSC report's table shape."""
        matrices = [random_metric_matrix(8, seed=s) for s in range(5)]
        report = BatchRunner(["bnb"]).run(matrices)
        agg = report.aggregate("bnb")
        assert agg.median_seconds <= agg.worst_seconds
        assert agg.mean_seconds <= agg.worst_seconds

    def test_zero_cost_baseline_does_not_raise(self):
        report = BatchReport(methods=["a", "b"])
        report.costs["a"] = [3.0, 0.0, 2.0]
        report.costs["b"] = [0.0, 0.0, 1.0]
        ratios = report.cost_ratio("a", "b")
        assert ratios[0] == math.inf
        assert math.isnan(ratios[1])
        assert ratios[2] == 2.0

    def test_effort_recorded_per_instance(self):
        # Seeds chosen so the UPGMM seed is beatable and B&B must expand.
        matrices = [random_metric_matrix(8, seed=s) for s in (1, 2)]
        report = BatchRunner(["bnb", "upgmm"]).run(matrices)
        assert all(nodes > 0 for nodes in report.effort["bnb"])
        assert report.effort["upgmm"] == [0, 0]
        agg = report.aggregate("bnb")
        assert agg.total_nodes_expanded == sum(report.effort["bnb"])
        assert f"nodes={agg.total_nodes_expanded}" in agg.row()

    def test_recorder_threads_through_engines(self, small_batch):
        recorder = Recorder()
        report = BatchRunner(["bnb", "upgmm"], recorder=recorder).run(small_batch)
        # One batch.run span per (method, instance) pair.
        runs = recorder.spans("batch.run")
        assert len(runs) == 2 * len(small_batch)
        # The engines recorded through the same recorder.
        assert len(recorder.spans("bnb.solve")) == len(small_batch)
        assert len(recorder.spans("heuristic.upgmm")) == len(small_batch)
        assert recorder.counter_total("batch.nodes_expanded") == sum(
            report.effort["bnb"]
        )
