"""Tests for subtree merging."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.core.merge import merge_group_tree
from repro.core.reduction import reduce_matrix
from repro.matrix.generators import clustered_matrix
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree
from repro.tree.ultrametric import UltrametricTree


class TestMergeGroupTree:
    def test_merge_single_placeholder(self):
        group_tree = UltrametricTree.join(
            UltrametricTree.leaf("__g__"), UltrametricTree.leaf("c"), 10.0
        )
        sub = UltrametricTree.join(
            UltrametricTree.leaf("a"), UltrametricTree.leaf("b"), 1.0
        )
        merged = merge_group_tree(group_tree, {"__g__": sub})
        assert set(merged.leaf_labels) == {"a", "b", "c"}
        assert merged.distance("a", "b") == 2.0
        assert merged.distance("a", "c") == 20.0

    def test_merge_multiple_placeholders(self):
        group_tree = UltrametricTree.join(
            UltrametricTree.leaf("__g1__"), UltrametricTree.leaf("__g2__"), 8.0
        )
        g1 = UltrametricTree.join(
            UltrametricTree.leaf("a"), UltrametricTree.leaf("b"), 1.0
        )
        g2 = UltrametricTree.join(
            UltrametricTree.leaf("c"), UltrametricTree.leaf("d"), 2.0
        )
        merged = merge_group_tree(group_tree, {"__g1__": g1, "__g2__": g2})
        assert merged.n_leaves == 4
        assert merged.distance("a", "d") == 16.0
        assert is_valid_ultrametric_tree(merged)

    def test_missing_placeholder_raises(self):
        group_tree = UltrametricTree.leaf("x")
        with pytest.raises(KeyError, match="placeholder"):
            merge_group_tree(group_tree, {"y": UltrametricTree.leaf("z")})

    def test_no_placeholders_is_identity(self):
        tree = UltrametricTree.join(
            UltrametricTree.leaf("a"), UltrametricTree.leaf("b"), 1.0
        )
        assert merge_group_tree(tree, {}) is tree


class TestMergeSafetyTheorem:
    """The paper's central claim: merging solved compact-set subtrees into
    the maximum-reduction group tree yields a feasible ultrametric tree."""

    @pytest.mark.parametrize("seed", range(5))
    def test_merged_tree_dominates_original(self, seed):
        m = clustered_matrix([3, 3, 2], seed=seed)
        blocks = [[0, 1, 2], [3, 4, 5], [6, 7]]
        names = ["__a__", "__b__", "__c__"]
        reduced = reduce_matrix(m, blocks, names, mode="maximum")
        group_tree = exact_mut(reduced).tree
        subtrees = {
            name: exact_mut(m.submatrix(block)).tree
            for name, block in zip(names, blocks)
        }
        merged = merge_group_tree(group_tree, subtrees)
        assert is_valid_ultrametric_tree(merged)
        assert dominates_matrix(merged, m)

    @pytest.mark.parametrize("mode", ["maximum", "minimum", "average"])
    def test_graft_height_always_legal_for_compact_groups(self, mode):
        """Compactness keeps subtree roots below group-tree parents for
        all three reductions (feasibility differs, graftability doesn't)."""
        m = clustered_matrix([3, 3], seed=7)
        blocks = [[0, 1, 2], [3, 4, 5]]
        names = ["__a__", "__b__"]
        reduced = reduce_matrix(m, blocks, names, mode=mode)
        group_tree = exact_mut(reduced).tree
        subtrees = {
            name: exact_mut(m.submatrix(block)).tree
            for name, block in zip(names, blocks)
        }
        merged = merge_group_tree(group_tree, subtrees)  # must not raise
        assert is_valid_ultrametric_tree(merged)

    def test_minimum_reduction_can_lose_feasibility(self):
        """The documented trade-off of the minimum reduction."""
        found = False
        for seed in range(10):
            m = clustered_matrix([3, 3, 2], seed=seed)
            blocks = [[0, 1, 2], [3, 4, 5], [6, 7]]
            names = ["__a__", "__b__", "__c__"]
            reduced = reduce_matrix(m, blocks, names, mode="minimum")
            group_tree = exact_mut(reduced).tree
            subtrees = {
                name: exact_mut(m.submatrix(block)).tree
                for name, block in zip(names, blocks)
            }
            merged = merge_group_tree(group_tree, subtrees)
            if not dominates_matrix(merged, m):
                found = True
                break
        assert found
