"""Tests for the end-to-end tree validator."""

import pytest

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder
from repro.core.validation import validate_tree
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.generators import (
    clustered_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.tree.ultrametric import TreeNode, UltrametricTree


class TestValidateTree:
    def test_exact_tree_passes(self):
        m = random_metric_matrix(8, seed=1)
        report = validate_tree(exact_mut(m).tree, m)
        assert report.ok
        assert report.structurally_valid
        assert report.feasible
        assert report.cost <= report.upgmm_cost + 1e-9

    def test_compact_tree_passes(self):
        m = clustered_matrix([3, 3], seed=2)
        tree = CompactSetTreeBuilder().build(m).tree
        report = validate_tree(tree, m)
        assert report.ok

    def test_upgma_flagged_infeasible(self):
        # Find a UPGMA tree that underestimates some distance.
        for seed in range(12):
            m = random_metric_matrix(8, seed=seed)
            tree = upgma(m)
            report = validate_tree(tree, m)
            if not report.feasible:
                assert not report.ok
                assert any("d_T" in p for p in report.problems)
                return
        pytest.fail("no infeasible UPGMA instance found")

    def test_compare_optimal(self):
        m = random_metric_matrix(7, seed=3)
        report = validate_tree(
            upgmm(m), m, compare_optimal=True
        )
        assert report.optimal_cost is not None
        assert report.gap_vs_optimal is not None
        assert report.gap_vs_optimal >= -1e-12

    def test_compare_optimal_respects_limit(self):
        m = random_metric_matrix(9, seed=4)
        report = validate_tree(
            upgmm(m), m, compare_optimal=True, optimal_limit=8
        )
        assert report.optimal_cost is None

    def test_structural_problem_reported(self):
        m = random_metric_matrix(3, seed=5)
        # Hand-build an invalid tree (child above parent).
        inner = TreeNode(99.0, [TreeNode(label=m.labels[0]), TreeNode(label=m.labels[1])])
        bad = UltrametricTree(TreeNode(1.0, [inner, TreeNode(label=m.labels[2])]))
        report = validate_tree(bad, m)
        assert not report.structurally_valid
        assert not report.ok

    def test_label_mismatch_rejected(self):
        m = random_metric_matrix(4, seed=6)
        wrong = upgmm(random_metric_matrix(4, seed=6).with_labels(list("wxyz")))
        with pytest.raises(ValueError):
            validate_tree(wrong, m)

    def test_cophenetic_perfect_on_ultrametric(self):
        m = random_ultrametric_matrix(8, seed=7)
        report = validate_tree(upgmm(m), m)
        assert report.cophenetic == pytest.approx(1.0)
        assert report.contradictions_33 == 0

    def test_summary_text(self):
        m = random_metric_matrix(6, seed=8)
        report = validate_tree(exact_mut(m).tree, m, compare_optimal=True)
        text = report.summary()
        assert "tree cost" in text
        assert "verdict" in text
        assert "OK" in text
        assert "exact optimum" in text

    def test_gap_vs_upgmm_nonpositive_for_exact(self):
        m = random_metric_matrix(8, seed=9)
        report = validate_tree(exact_mut(m).tree, m)
        assert report.gap_vs_upgmm <= 1e-12
