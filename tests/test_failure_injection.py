"""Failure injection: how the pipeline behaves on hostile inputs.

A tool shipped to biologists sees malformed files, non-metric data and
degenerate matrices.  These tests pin down the contract: structural
garbage fails fast with a clear error, while mathematically unusual but
well-formed inputs (ties, zeros, non-metric symmetric data) are handled
gracefully and still yield feasible trees.
"""

import math

import numpy as np
import pytest

from repro.bnb.sequential import exact_mut
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError
from repro.matrix.repair import metric_closure
from repro.tree.checks import dominates_matrix, is_valid_ultrametric_tree


class TestStructuralGarbage:
    def test_nan_rejected_at_construction(self):
        with pytest.raises(MatrixValidationError, match="finite"):
            DistanceMatrix([[0, math.nan], [math.nan, 0]])

    def test_inf_rejected_at_construction(self):
        with pytest.raises(MatrixValidationError, match="finite"):
            DistanceMatrix([[0, math.inf], [math.inf, 0]])

    def test_asymmetry_rejected(self):
        with pytest.raises(MatrixValidationError, match="symmetric"):
            DistanceMatrix([[0, 1, 2], [1, 0, 3], [2, 3.5, 0]])

    def test_ragged_input_rejected(self):
        with pytest.raises((MatrixValidationError, ValueError)):
            DistanceMatrix([[0, 1], [1, 0, 2]])

    def test_string_entries_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            DistanceMatrix([[0, "far"], ["far", 0]])


class TestDegenerateButLegal:
    def test_all_zero_distances(self):
        """Identical species: every tree collapses to zero cost."""
        m = DistanceMatrix(np.zeros((4, 4)))
        result = exact_mut(m)
        assert result.cost == pytest.approx(0.0)
        assert is_valid_ultrametric_tree(result.tree)

    def test_all_equal_distances(self):
        m = DistanceMatrix(
            5.0 * (np.ones((5, 5)) - np.eye(5))
        )
        result = exact_mut(m)
        # Every topology costs the same: root at 2.5, all internals 2.5.
        assert result.cost == pytest.approx(upgmm(m).cost())
        assert dominates_matrix(result.tree, m)

    def test_heavily_tied_matrix(self):
        values = np.array(
            [
                [0, 1, 2, 2, 2],
                [1, 0, 2, 2, 2],
                [2, 2, 0, 1, 2],
                [2, 2, 1, 0, 2],
                [2, 2, 2, 2, 0],
            ],
            dtype=float,
        )
        m = DistanceMatrix(values)
        result = exact_mut(m)
        assert dominates_matrix(result.tree, m)
        pipeline = CompactSetTreeBuilder().build(m)
        assert dominates_matrix(pipeline.tree, m)

    def test_huge_dynamic_range(self):
        m = metric_closure(DistanceMatrix(
            [[0, 1e-6, 1e6], [1e-6, 0, 1e6], [1e6, 1e6, 0]]
        ))
        result = exact_mut(m)
        assert is_valid_ultrametric_tree(result.tree)
        assert dominates_matrix(result.tree, m)


class TestNonMetricInput:
    """The MUT constraint d_T >= M never needs the triangle inequality;
    the solvers must stay correct (if slower) on raw non-metric data."""

    def non_metric(self):
        return DistanceMatrix(
            [[0, 1, 10, 2], [1, 0, 1, 9], [10, 1, 0, 1], [2, 9, 1, 0]]
        )

    def test_input_really_is_non_metric(self):
        assert not self.non_metric().is_metric()

    def test_upgmm_still_dominates(self):
        m = self.non_metric()
        assert dominates_matrix(upgmm(m), m)

    def test_bnb_still_optimal(self):
        from repro.bnb.enumeration import brute_force_mut

        m = self.non_metric()
        result = exact_mut(m)
        _, certified = brute_force_mut(m)
        assert result.cost == pytest.approx(certified)
        assert dominates_matrix(result.tree, m)

    def test_compact_pipeline_still_feasible(self):
        m = self.non_metric()
        result = CompactSetTreeBuilder().build(m)
        assert dominates_matrix(result.tree, m)


class TestFileLevelFailures:
    def test_truncated_phylip(self, tmp_path):
        from repro.matrix.io import read_phylip

        path = tmp_path / "bad.phy"
        path.write_text("5\nonly_one 0 1 2 3 4\n")
        with pytest.raises(MatrixValidationError):
            read_phylip(path)

    def test_binary_garbage_fasta(self, tmp_path):
        from repro.sequences.fasta import FastaError, read_fasta

        path = tmp_path / "bad.fasta"
        path.write_text("\x00\x01\x02 not fasta at all")
        with pytest.raises((FastaError, ValueError)):
            read_fasta(path)

    def test_cli_survives_bad_matrix_gracefully(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.phy"
        path.write_text("not a matrix")
        with pytest.raises((SystemExit, MatrixValidationError)):
            main(["build", str(path)])
