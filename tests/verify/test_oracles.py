"""Unit tests for the single-tree verification oracles.

Every oracle is exercised both ways: a clean engine result passes, and a
deliberately corrupted tree (the "mutation") is caught with a structured
violation naming the right oracle.
"""

import pytest

from repro.core.api import construct_tree
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.obs import Recorder
from repro.obs.metrics import MetricsRegistry
from repro.verify.oracles import (
    COST_RTOL,
    DEFAULT_ORACLES,
    ORACLE_NAMES,
    CostOracle,
    FeasibilityOracle,
    LabelsOracle,
    NewickOracle,
    Oracle,
    StructureOracle,
    VerificationContext,
    Violation,
    run_oracles,
)


@pytest.fixture
def matrix():
    return clustered_matrix([3, 3], seed=1)


@pytest.fixture
def result(matrix):
    return construct_tree(matrix, "bnb")


def _ctx(result, matrix, **overrides):
    params = dict(
        tree=result.tree,
        matrix=matrix,
        reported_cost=result.cost,
        method="bnb",
    )
    params.update(overrides)
    return VerificationContext(**params)


class TestViolation:
    def test_str_format(self):
        violation = Violation("cost", "off by 1")
        assert str(violation) == "[cost] off by 1"

    def test_to_json_is_plain_data(self):
        violation = Violation("labels", "missing", {"missing": ["s1"]})
        payload = violation.to_json()
        assert payload == {
            "oracle": "labels",
            "message": "missing",
            "details": {"missing": ["s1"]},
        }
        import json

        json.dumps(payload)  # must be JSON-serializable as-is


class TestCleanResult:
    def test_all_default_oracles_pass(self, result, matrix):
        assert run_oracles(
            result.tree, matrix, reported_cost=result.cost, method="bnb"
        ) == []

    def test_oracle_names_cover_issue_catalogue(self):
        assert ORACLE_NAMES == (
            "labels", "structure", "feasibility", "cost", "newick"
        )
        assert len(DEFAULT_ORACLES) == len(ORACLE_NAMES)


class TestLabelsOracle:
    def test_missing_and_extra(self, result):
        base = random_metric_matrix(6, seed=9)
        other = DistanceMatrix(  # labels disjoint from the tree's s0..s5
            base.values, [f"t{i}" for i in range(6)]
        )
        found = LabelsOracle()(_ctx(result, other))
        oracles = {v.oracle for v in found}
        assert oracles == {"labels"}
        messages = " ".join(v.message for v in found)
        assert "missing" in messages and "not in the matrix" in messages

    def test_duplicate_leaf_label(self, result, matrix):
        leaves = result.tree.root.leaves()
        leaves[0].label = leaves[1].label  # mutate behind the constructor
        found = LabelsOracle()(_ctx(result, matrix))
        assert any("duplicate" in v.message for v in found)


class TestStructureOracle:
    def test_raised_leaf(self, result, matrix):
        result.tree.root.leaves()[0].height = 0.5
        found = StructureOracle()(_ctx(result, matrix))
        assert any("must be 0" in v.message for v in found)

    def test_child_above_parent(self, result, matrix):
        root = result.tree.root
        child = next(c for c in root.children if not c.is_leaf)
        child.height = root.height + 1.0
        found = StructureOracle()(_ctx(result, matrix))
        assert any("negative edge" in v.message for v in found)

    def test_non_binary_internal_node(self, result, matrix):
        from repro.tree.ultrametric import TreeNode

        result.tree.root.add_child(TreeNode(0.0, label="intruder"))
        found = StructureOracle()(_ctx(result, matrix))
        assert any("binary" in v.message for v in found)


class TestFeasibilityOracle:
    def test_squashed_tree_is_infeasible(self, result, matrix):
        # Halving every internal height halves every d_T, so some pair
        # must drop below M.
        for node in result.tree.root.walk():
            if not node.is_leaf:
                node.height *= 0.5
        found = FeasibilityOracle()(_ctx(result, matrix))
        assert len(found) == 1
        violation = found[0]
        assert "d_T >= M violated" in violation.message
        assert violation.details["tree_distance"] < violation.details[
            "matrix_distance"
        ]
        assert violation.details["violating_pairs"] >= 1

    def test_label_mismatch_is_owned_by_labels_oracle(self, result):
        base = random_metric_matrix(6, seed=9)
        other = DistanceMatrix(base.values, [f"t{i}" for i in range(6)])
        assert FeasibilityOracle()(_ctx(result, other)) == []


class TestCostOracle:
    def test_inflated_cost_caught(self, result, matrix):
        ctx = _ctx(result, matrix, reported_cost=result.cost * 1.001)
        found = CostOracle()(ctx)
        assert len(found) == 1
        assert found[0].oracle == "cost"
        assert found[0].details["recomputed"] == pytest.approx(result.cost)

    def test_within_tolerance_passes(self, result, matrix):
        nudged = result.cost * (1 + COST_RTOL / 10)
        assert CostOracle()(_ctx(result, matrix, reported_cost=nudged)) == []

    def test_no_reported_cost_skips(self, result, matrix):
        assert CostOracle()(_ctx(result, matrix, reported_cost=None)) == []


class TestNewickOracle:
    def test_round_trip_clean(self, result, matrix):
        assert NewickOracle()(_ctx(result, matrix)) == []


class TestCrashIsolation:
    def test_raising_oracle_becomes_violation(self, result, matrix):
        class Exploding(Oracle):
            name = "exploding"

            def check(self, ctx):
                raise RuntimeError("kaboom")

        found = Exploding()(_ctx(result, matrix))
        assert len(found) == 1
        assert found[0].oracle == "exploding"
        assert "crashed: RuntimeError: kaboom" in found[0].message


class TestObservabilityWiring:
    def test_spans_and_counters(self, result, matrix):
        recorder = Recorder()
        registry = MetricsRegistry()
        result.tree.root.leaves()[0].height = 0.5  # trip structure oracle
        found = run_oracles(
            result.tree,
            matrix,
            reported_cost=result.cost,
            method="bnb",
            recorder=recorder,
            metrics=registry,
        )
        assert found
        spans = recorder.spans("verify.oracle")
        assert [s.attrs["oracle"] for s in spans] == list(ORACLE_NAMES)
        assert all(s.attrs["method"] == "bnb" for s in spans)
        structure_span = next(
            s for s in spans if s.attrs["oracle"] == "structure"
        )
        assert structure_span.attrs["violations"] >= 1
        counter = registry.counter(
            "verify.violations", labelnames=("oracle",)
        )
        assert counter.value(oracle="structure") >= 1

    def test_null_recorder_span_not_polluted(self, result, matrix):
        # The NullRecorder hands out one shared span; run_oracles must
        # not write per-call attrs into it.
        from repro.obs.recorder import as_recorder

        run_oracles(result.tree, matrix, reported_cost=result.cost)
        null_span = as_recorder(None)._null_context._span
        assert "violations" not in null_span.attrs
