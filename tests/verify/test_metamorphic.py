"""Metamorphic relation tests: clean engines pass, broken ones are caught."""

from types import SimpleNamespace

import pytest

from repro.core.api import construct_tree
from repro.matrix.generators import clustered_matrix, random_metric_matrix
from repro.verify.metamorphic import (
    DEFAULT_RELATIONS,
    PermutationRelation,
    ScalingRelation,
    SubsetRelation,
    run_metamorphic,
)


class TestCleanEngine:
    @pytest.mark.parametrize("method", ["bnb", "multiprocess"])
    def test_exact_methods_satisfy_all_relations(self, method):
        matrix = random_metric_matrix(6, seed=21)
        assert run_metamorphic(matrix, method, seed=0) == []

    def test_heuristics_only_get_scaling(self):
        # Permutation and subset need the optimum's invariances; for a
        # heuristic only linear scaling applies.
        applicable = [
            r for r in DEFAULT_RELATIONS if r.applies_to("upgmm")
        ]
        assert [type(r) for r in applicable] == [ScalingRelation]
        matrix = clustered_matrix([3, 3], seed=22)
        assert run_metamorphic(matrix, "upgmm", seed=0) == []

    def test_compact_excluded_from_permutation(self):
        # Tie-breaking in the compact decomposition is order-dependent.
        assert not PermutationRelation().applies_to("compact")
        assert PermutationRelation().applies_to("bnb")


class TestDeterminism:
    def test_same_seed_same_transformations(self):
        matrix = random_metric_matrix(6, seed=23)
        calls_a, calls_b = [], []

        def spying_build(calls):
            def build(m, method, **kwargs):
                calls.append(m.digest())
                return construct_tree(m, method, **kwargs)

            return build

        run_metamorphic(matrix, "bnb", seed=7, build_fn=spying_build(calls_a))
        run_metamorphic(matrix, "bnb", seed=7, build_fn=spying_build(calls_b))
        assert calls_a == calls_b


class TestMutationDetection:
    def test_permutation_sensitivity_caught(self):
        # A builder whose cost depends on the label *order* is exactly
        # the bug class this relation exists for.
        matrix = random_metric_matrix(6, seed=24)

        def build(m, method, **kwargs):
            result = construct_tree(m, method, **kwargs)
            if m.labels[0] != "s0":
                result.cost = result.cost + 1.0
            return result

        found = run_metamorphic(
            matrix,
            "bnb",
            seed=0,
            relations=[PermutationRelation()],
            build_fn=build,
        )
        assert len(found) == 1
        assert found[0].oracle == "metamorphic.permutation"
        assert "permutation" in found[0].details

    def test_nonlinear_scaling_caught(self):
        matrix = random_metric_matrix(5, seed=25)

        def build(m, method, **kwargs):
            result = construct_tree(m, method, **kwargs)
            result.cost = result.cost + 1.0  # affine, not linear
            return result

        found = run_metamorphic(
            matrix, "bnb", seed=0, relations=[ScalingRelation()], build_fn=build
        )
        assert len(found) == 1
        assert found[0].oracle == "metamorphic.scaling"

    def test_subset_monotonicity_breach_caught(self):
        matrix = random_metric_matrix(7, seed=26)

        def build(m, method, **kwargs):
            # Cost grows as species are removed: opt(M|S) > opt(M).
            return SimpleNamespace(cost=100.0 - m.n)

        found = run_metamorphic(
            matrix,
            "bnb",
            seed=0,
            relations=[SubsetRelation()],
            build_fn=build,
        )
        assert len(found) == 1
        assert found[0].oracle == "metamorphic.subset"
        assert found[0].details["subset_cost"] > found[0].details["full_cost"]

    def test_crashing_builder_isolated(self):
        matrix = random_metric_matrix(5, seed=27)

        def build(m, method, **kwargs):
            raise RuntimeError("engine on fire")

        found = run_metamorphic(matrix, "bnb", seed=0, build_fn=build)
        assert found
        assert all("crashed: RuntimeError" in v.message for v in found)


class TestRelationConfig:
    def test_scaling_factor_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ScalingRelation(factor=0.0)

    def test_subset_skips_tiny_matrices(self):
        matrix = random_metric_matrix(3, seed=28)
        assert run_metamorphic(
            matrix, "bnb", seed=0, relations=[SubsetRelation()]
        ) == []
