"""Fuzz-loop tests: families, determinism, shrinking, corpus output.

``TestMutationAcceptance`` is the PR's acceptance criterion: a
deliberately broken engine must be caught by the fuzz loop, shrunk, and
written to the corpus with a working repro command.
"""

import json

import numpy as np
import pytest

from repro.core.api import construct_tree
from repro.matrix.generators import random_metric_matrix
from repro.matrix.io import read_phylip
from repro.verify.fuzz import (
    FAMILIES,
    FuzzReport,
    run_fuzz,
    shrink_matrix,
    verify_matrix,
)

FAST_METHODS = ("bnb", "parallel-bnb", "upgmm")


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_yields_a_metric(self, family):
        rng = np.random.default_rng(42)
        matrix = FAMILIES[family](rng, 6)
        assert matrix.n >= 3
        assert matrix.is_metric()

    def test_degenerate_families_present(self):
        # The two families the generators module cannot produce.
        assert "all-ties" in FAMILIES
        assert "near-ultrametric-noise" in FAMILIES

    def test_all_ties_is_constant_off_diagonal(self):
        matrix = FAMILIES["all-ties"](np.random.default_rng(1), 5)
        off = matrix.values[~np.eye(5, dtype=bool)]
        assert len(set(off.tolist())) == 1


class TestVerifyMatrix:
    def test_clean_matrix(self):
        matrix = random_metric_matrix(6, seed=31)
        assert verify_matrix(matrix, FAST_METHODS, seed=0) == []

    def test_metamorphic_can_be_skipped(self):
        matrix = random_metric_matrix(5, seed=32)
        calls = []

        def build(m, method, **kwargs):
            calls.append(method)
            return construct_tree(m, method, **kwargs)

        verify_matrix(
            matrix, ("bnb",), seed=0, metamorphic=False, build_fn=build
        )
        without = len(calls)
        calls.clear()
        verify_matrix(
            matrix, ("bnb",), seed=0, metamorphic=True, build_fn=build
        )
        assert len(calls) > without  # relations re-solve the instance


class TestShrinker:
    def test_drops_leaves_to_the_floor(self):
        matrix = random_metric_matrix(8, seed=33)
        shrunk = shrink_matrix(matrix, lambda m: True, min_species=3)
        assert shrunk.n == 3
        assert shrunk.is_metric()

    def test_respects_predicate(self):
        matrix = random_metric_matrix(8, seed=34)
        shrunk = shrink_matrix(matrix, lambda m: m.n >= 5, min_species=3)
        assert shrunk.n == 5

    def test_rounds_float_entries(self):
        matrix = random_metric_matrix(6, seed=35, integer=False)
        shrunk = shrink_matrix(matrix, lambda m: True, min_species=3)
        # Coarsest legal rounding is integral for this family.
        assert np.array_equal(shrunk.values, np.round(shrunk.values))

    def test_never_returns_a_non_metric(self):
        matrix = random_metric_matrix(7, seed=36, integer=False)
        shrunk = shrink_matrix(matrix, lambda m: True)
        assert shrunk.is_metric()


class TestCleanCampaign:
    def test_smoke_budget_runs_clean(self, tmp_path):
        report = run_fuzz(
            seed=0,
            budget=16,
            methods=FAST_METHODS,
            corpus_dir=str(tmp_path / "corpus"),
        )
        assert report.ok
        assert report.cases_run == 16
        assert sum(report.families.values()) == 16
        assert set(report.families) == set(FAMILIES)  # 16 = 2 full cycles
        assert not (tmp_path / "corpus").exists()  # nothing written

    def test_deterministic_replay(self, tmp_path):
        kwargs = dict(
            seed=7, budget=8, methods=("bnb", "upgmm"), corpus_dir=None
        )
        assert run_fuzz(**kwargs).to_json() == run_fuzz(**kwargs).to_json()

    def test_bad_arguments(self):
        with pytest.raises(ValueError, match="budget"):
            run_fuzz(seed=0, budget=0)
        with pytest.raises(ValueError, match="min_species"):
            run_fuzz(seed=0, budget=1, min_species=2)
        with pytest.raises(ValueError, match="min_species"):
            run_fuzz(seed=0, budget=1, min_species=8, max_species=5)

    def test_progress_callback(self):
        seen = []
        run_fuzz(
            seed=0,
            budget=4,
            methods=("upgmm",),
            corpus_dir=None,
            progress=lambda i, family: seen.append((i, family)),
        )
        assert [i for i, _ in seen] == [0, 1, 2, 3]


def _broken_bnb_builder(matrix, method, **kwargs):
    """The acceptance-criterion mutant: bnb lies about its cost."""
    result = construct_tree(matrix, method, **kwargs)
    if method == "bnb":
        result.cost = result.cost * 1.001
    return result


class TestMutationAcceptance:
    """A deliberately broken engine is caught, shrunk and archived."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        corpus = tmp_path_factory.mktemp("corpus")
        report = run_fuzz(
            seed=0,
            budget=24,
            methods=("bnb", "parallel-bnb", "upgmm"),
            corpus_dir=str(corpus),
            max_failures=3,
            build_fn=_broken_bnb_builder,
        )
        return report

    def test_failures_found_and_capped(self, report):
        assert not report.ok
        assert 1 <= len(report.failures) <= 3  # max_failures early stop

    def test_failures_are_shrunk(self, report):
        for failure in report.failures:
            assert failure.shrunk_n_species <= failure.n_species
            assert failure.shrunk_n_species >= 3
            oracles = {v.oracle for v in failure.violations}
            assert oracles & {"cost", "differential.exact_agreement"}

    def test_corpus_entries_written(self, report):
        for failure in report.failures:
            matrix = read_phylip(failure.corpus_path)
            assert matrix.n == failure.shrunk_n_species
            with open(failure.meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            assert meta["master_seed"] == 0
            assert meta["iteration"] == failure.iteration
            assert meta["violations"]
            assert meta["repro_command"].startswith("repro-mut verify ")
            assert failure.corpus_path in meta["repro_command"]

    def test_shrunk_case_still_fails_via_repro_path(self, report):
        # Replaying the corpus entry with the same mutant reproduces the
        # failure; with the healthy engine it passes (the bug was in the
        # engine, not the matrix).
        failure = report.failures[0]
        matrix = read_phylip(failure.corpus_path)
        case_seed = 0 + failure.iteration
        assert verify_matrix(
            matrix,
            ("bnb", "parallel-bnb", "upgmm"),
            seed=case_seed,
            build_fn=_broken_bnb_builder,
        )
        assert verify_matrix(
            matrix, ("bnb", "parallel-bnb", "upgmm"), seed=case_seed
        ) == []


class TestReportModel:
    def test_to_json_shape(self):
        report = FuzzReport(seed=3, budget=10, cases_run=10)
        payload = report.to_json()
        assert payload == {
            "seed": 3,
            "budget": 10,
            "cases_run": 10,
            "families": {},
            "ok": True,
            "failures": [],
        }
