"""Cross-engine differential harness tests.

The headline case is the PR's satellite requirement: the real
multi-core engine (``multiprocess``) pinned against the sequential
branch-and-bound (``bnb``) on five small matrices -- optimal costs agree
to 1e-9 relative and both trees pass every single-tree oracle.
"""

import pytest

from repro.core.api import construct_tree
from repro.matrix.generators import (
    clustered_matrix,
    perturbed_ultrametric_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.verify.differential import (
    BRACKET_METHODS,
    DEFAULT_DIFFERENTIAL_METHODS,
    EXACT_METHODS,
    DifferentialReport,
    MethodOutcome,
    run_differential,
)
from repro.verify.oracles import Violation, run_oracles

FIVE_MATRICES = [
    random_metric_matrix(5, seed=11),
    random_metric_matrix(6, seed=12, integer=False),
    clustered_matrix([3, 3], seed=13),
    random_ultrametric_matrix(6, seed=14),
    perturbed_ultrametric_matrix(7, seed=15, noise=0.2),
]


class TestMultiprocessAgainstExact:
    """Satellite: multiprocess vs bnb on 5 small matrices."""

    @pytest.mark.parametrize("index", range(len(FIVE_MATRICES)))
    def test_cost_agreement_and_oracles(self, index):
        matrix = FIVE_MATRICES[index]
        exact = construct_tree(matrix, "bnb")
        multi = construct_tree(matrix, "multiprocess")
        assert multi.cost == pytest.approx(exact.cost, rel=1e-9)
        for result, method in ((exact, "bnb"), (multi, "multiprocess")):
            assert run_oracles(
                result.tree,
                matrix,
                reported_cost=result.cost,
                method=method,
            ) == []


class TestDefaults:
    def test_method_sets(self):
        assert EXACT_METHODS == (
            "bnb", "bnb-scalar", "parallel-bnb", "multiprocess"
        )
        assert set(BRACKET_METHODS) == {"compact", "compact-parallel"}
        # All four exact engines (the batched kernel and its scalar
        # reference count separately), the compact pipeline and one
        # feasible upper-bound heuristic cross-check each other by
        # default.
        assert set(EXACT_METHODS) < set(DEFAULT_DIFFERENTIAL_METHODS)
        assert "compact" in DEFAULT_DIFFERENTIAL_METHODS
        assert "upgmm" in DEFAULT_DIFFERENTIAL_METHODS
        assert "upgma" not in DEFAULT_DIFFERENTIAL_METHODS  # infeasible

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown methods"):
            run_differential(FIVE_MATRICES[0], ["bnb", "nope"])


class TestCleanRun:
    def test_report_is_clean_and_structured(self):
        matrix = clustered_matrix([3, 3], seed=2)
        report = run_differential(matrix)
        assert report.ok
        assert report.violations == []
        assert set(report.outcomes) == set(DEFAULT_DIFFERENTIAL_METHODS)
        assert report.exact_cost == pytest.approx(
            report.outcomes["bnb"].cost
        )
        payload = report.to_json()
        assert payload["ok"] is True
        assert payload["n_species"] == 6
        assert set(payload["methods"]) == set(DEFAULT_DIFFERENTIAL_METHODS)
        import json

        json.dumps(payload)

    def test_bracket_holds(self):
        matrix = random_metric_matrix(7, seed=3)
        report = run_differential(matrix)
        optimum = report.exact_cost
        compact = report.outcomes["compact"].cost
        upgmm = report.outcomes["upgmm"].cost
        assert optimum - 1e-7 <= compact <= upgmm + 1e-7


def _corrupting_builder(method_to_break, factor):
    """A build_fn that inflates one method's reported cost."""

    def build(matrix, method, **kwargs):
        result = construct_tree(matrix, method, **kwargs)
        if method == method_to_break:
            result.cost = result.cost * factor
        return result

    return build


class TestMutationDetection:
    def test_exact_disagreement_caught(self):
        matrix = random_metric_matrix(6, seed=4)
        report = run_differential(
            matrix,
            EXACT_METHODS,
            build_fn=_corrupting_builder("parallel-bnb", 1.001),
        )
        assert not report.ok
        oracles = {v.oracle for v in report.violations}
        # Both the cross-check and the per-tree cost oracle fire.
        assert "differential.exact_agreement" in oracles
        assert "cost" in oracles

    def test_crashing_engine_isolated(self):
        matrix = random_metric_matrix(5, seed=5)

        def build(m, method, **kwargs):
            if method == "multiprocess":
                raise RuntimeError("worker pool exploded")
            return construct_tree(m, method, **kwargs)

        report = run_differential(matrix, EXACT_METHODS, build_fn=build)
        outcome = report.outcomes["multiprocess"]
        assert outcome.error == "RuntimeError: worker pool exploded"
        assert any(
            v.oracle == "differential.engine" for v in outcome.violations
        )
        # The surviving engines still cross-checked cleanly.
        assert report.outcomes["bnb"].ok
        assert report.outcomes["parallel-bnb"].ok

    def test_bracket_breach_caught(self):
        matrix = random_metric_matrix(6, seed=6)
        report = run_differential(
            matrix,
            ("bnb", "compact", "upgmm"),
            build_fn=_corrupting_builder("compact", 0.5),
        )
        assert any(
            v.oracle == "differential.bracket" and "below the exact optimum"
            in v.message
            for v in report.violations
        )

    def test_heuristic_beating_optimum_caught(self):
        matrix = random_metric_matrix(6, seed=7)
        report = run_differential(
            matrix,
            ("bnb", "upgmm"),
            build_fn=_corrupting_builder("upgmm", 0.1),
        )
        assert any(
            v.oracle == "differential.optimality" for v in report.violations
        )


class TestOutcomeModel:
    def test_ok_property(self):
        outcome = MethodOutcome("bnb", cost=1.0)
        assert outcome.ok
        outcome.violations.append(Violation("cost", "off"))
        assert not outcome.ok

    def test_exact_cost_none_when_no_exact_engine(self):
        report = DifferentialReport(n_species=4, outcomes={})
        assert report.exact_cost is None
