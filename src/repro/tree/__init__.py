"""Ultrametric-tree substrate.

Implements the tree model of the paper's Definitions 5-8: rooted,
leaf-labelled, edge-weighted binary trees in which every internal node is
equidistant from the leaves below it.  Includes the minimal-height
realization used to cost a topology, feasibility checks against a distance
matrix, the 3-3 relation consistency measure, and Newick serialization.
"""

from repro.tree.ultrametric import TreeNode, UltrametricTree
from repro.tree.checks import (
    is_valid_ultrametric_tree,
    dominates_matrix,
    count_33_contradictions,
    triple_relations,
)
from repro.tree.newick import to_newick, parse_newick
from repro.tree.render import render_ascii, render_heights
from repro.tree.consensus import majority_consensus, clade_support
from repro.tree.compare import (
    clades,
    robinson_foulds,
    normalized_robinson_foulds,
    shared_clades,
    cophenetic_correlation,
)

__all__ = [
    "TreeNode",
    "UltrametricTree",
    "is_valid_ultrametric_tree",
    "dominates_matrix",
    "count_33_contradictions",
    "triple_relations",
    "to_newick",
    "parse_newick",
    "render_ascii",
    "render_heights",
    "clades",
    "robinson_foulds",
    "normalized_robinson_foulds",
    "shared_clades",
    "cophenetic_correlation",
    "majority_consensus",
    "clade_support",
]
