"""ASCII rendering of ultrametric trees.

The project report promises a tool biologists can read without extra
software; this module draws the tree as a left-to-right dendrogram whose
column positions are proportional to node heights, e.g.::

    +--+------- a
    |  +------- b
    +---------- c

Used by the CLI's ``render`` subcommand and handy in notebooks/tests.
"""

from __future__ import annotations

from typing import List

from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["render_ascii", "render_heights"]


def render_ascii(tree: UltrametricTree, *, width: int = 60) -> str:
    """Draw ``tree`` as an ASCII dendrogram.

    ``width`` is the number of columns of the branch area; leaf labels
    follow it.  Node heights map linearly onto columns -- the root sits
    at column 0 and leaves at column ``width`` -- so the length of every
    horizontal run is proportional to the edge weight.
    """
    if width < 4:
        raise ValueError("width must be at least 4")
    root_height = tree.root.height
    if root_height <= 0:
        return "\n".join(f"- {label}" for label in tree.leaf_labels)

    def column(node: TreeNode) -> int:
        return int(round(width * (1.0 - node.height / root_height)))

    def emit(node: TreeNode, node_col: int) -> List[str]:
        """Lines of this subtree, relative to the node's rail column."""
        if node.is_leaf:
            return [f" {node.label}"]
        lines: List[str] = []
        for index, child in enumerate(node.children):
            child_col = max(column(child), node_col + 1)
            dashes = "-" * (child_col - node_col - 1)
            connector = "+" + dashes
            rail = "|" if index < len(node.children) - 1 else " "
            continuation = rail + " " * len(dashes)
            sub = emit(child, child_col)
            lines.append(connector + sub[0])
            lines.extend(continuation + line for line in sub[1:])
        return lines

    return "\n".join(emit(tree.root, 0))


def render_heights(tree: UltrametricTree) -> str:
    """A compact textual summary: each internal node's height and leaves.

    Useful when the dendrogram is too wide; one line per internal node,
    sorted by height (deepest merges first).
    """
    entries = []
    for node in tree.root.walk():
        if node.is_leaf:
            continue
        leaves = sorted(leaf.label or "" for leaf in node.leaves())
        entries.append((node.height, leaves))
    entries.sort(key=lambda e: (e[0], e[1]))
    return "\n".join(
        f"h={height:10.4f}  {{{', '.join(leaves)}}}" for height, leaves in entries
    )
