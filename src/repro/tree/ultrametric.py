"""The :class:`UltrametricTree` data structure.

An ultrametric tree (UT) is a rooted, leaf-labelled, edge-weighted binary
tree in which every internal node has the same path length to all leaves
of its subtree (Definition 6).  We store the *height* of every node (its
distance to any leaf below it, Definition 7); edge weights are height
differences, and the weight of the tree is

    omega(T) = sum over edges of (height(parent) - height(child))
             = height(root) + sum over internal nodes of height(node)

which is the quantity the Minimum Ultrametric Tree problem minimises
(Definition 8).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["TreeNode", "UltrametricTree"]


class TreeNode:
    """A node of an ultrametric tree.

    Leaves carry a ``label`` and height ``0``; internal nodes carry a
    positive ``height`` and exactly two children (binary trees, per the
    paper's model), except transiently during construction.
    """

    __slots__ = ("height", "children", "label", "parent")

    def __init__(
        self,
        height: float = 0.0,
        children: Optional[List["TreeNode"]] = None,
        label: Optional[str] = None,
    ) -> None:
        self.height = float(height)
        self.children: List[TreeNode] = list(children) if children else []
        self.label = label
        self.parent: Optional[TreeNode] = None
        for child in self.children:
            child.parent = self

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "TreeNode") -> None:
        child.parent = self
        self.children.append(child)

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order traversal."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> List["TreeNode"]:
        """All leaf nodes below (or equal to) this node, left to right."""
        return [node for node in self.walk() if node.is_leaf]

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"TreeNode(leaf {self.label!r})"
        return f"TreeNode(h={self.height:.4g}, {len(self.children)} children)"


class UltrametricTree:
    """A rooted ultrametric tree over named species.

    The class is a thin, well-checked wrapper around a :class:`TreeNode`
    root.  It provides the paper's cost function ``omega``, LCA queries,
    the induced tree metric, leaf substitution (the merge primitive of the
    compact-set pipeline) and Newick export via :mod:`repro.tree.newick`.
    """

    def __init__(self, root: TreeNode) -> None:
        self.root = root
        self._leaf_index: Dict[str, TreeNode] = {}
        for leaf in root.leaves():
            if leaf.label is None:
                raise ValueError("every leaf must carry a label")
            if leaf.label in self._leaf_index:
                raise ValueError(f"duplicate leaf label {leaf.label!r}")
            self._leaf_index[leaf.label] = leaf

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, label: str) -> "UltrametricTree":
        """A single-leaf tree (height 0)."""
        return cls(TreeNode(0.0, label=label))

    @classmethod
    def join(
        cls, left: "UltrametricTree", right: "UltrametricTree", height: float
    ) -> "UltrametricTree":
        """Join two trees under a new root at ``height``.

        ``height`` must be at least the heights of both subtree roots,
        otherwise an edge would have negative weight.
        """
        if height < left.root.height or height < right.root.height:
            raise ValueError(
                f"join height {height} is below a subtree root "
                f"({left.root.height}, {right.root.height})"
            )
        return cls(TreeNode(height, [left.root, right.root]))

    def copy(self) -> "UltrametricTree":
        """Deep structural copy."""

        def clone(node: TreeNode) -> TreeNode:
            return TreeNode(
                node.height, [clone(c) for c in node.children], node.label
            )

        return UltrametricTree(clone(self.root))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def leaf_labels(self) -> List[str]:
        """Labels in left-to-right leaf order."""
        return [leaf.label for leaf in self.root.leaves()]  # type: ignore[misc]

    @property
    def n_leaves(self) -> int:
        return len(self._leaf_index)

    def has_leaf(self, label: str) -> bool:
        return label in self._leaf_index

    def height(self) -> float:
        """Height of the root (distance from root to every leaf)."""
        return self.root.height

    def cost(self) -> float:
        """Total edge weight ``omega(T)`` (Definition 4)."""
        total = 0.0
        for node in self.root.walk():
            for child in node.children:
                total += node.height - child.height
        return total

    def lca(self, a: str, b: str) -> TreeNode:
        """Lowest common ancestor of two leaves."""
        path_a = self._path_to_root(a)
        ancestors = set(map(id, path_a))
        node: Optional[TreeNode] = self._leaf(b)
        while node is not None:
            if id(node) in ancestors:
                return node
            node = node.parent
        raise RuntimeError("leaves are not in the same tree")  # pragma: no cover

    def distance(self, a: str, b: str) -> float:
        """Induced tree metric: ``d_T(a, b) = 2 * height(LCA(a, b))``."""
        if a == b:
            return 0.0
        return 2.0 * self.lca(a, b).height

    def distance_matrix(self, labels: Optional[Sequence[str]] = None) -> DistanceMatrix:
        """The full matrix of induced distances (useful in tests)."""
        labels = list(labels) if labels is not None else self.leaf_labels
        n = len(labels)
        values = np.zeros((n, n))
        heights = self._lca_heights(labels)
        for i in range(n):
            for j in range(i + 1, n):
                values[i, j] = values[j, i] = 2.0 * heights[i, j]
        return DistanceMatrix(values, labels, validate=False)

    def _lca_heights(self, labels: Sequence[str]) -> np.ndarray:
        """Matrix of LCA heights for the given leaf labels.

        Computed in one post-order pass instead of quadratic LCA queries.
        """
        index = {label: i for i, label in enumerate(labels)}
        n = len(labels)
        heights = np.zeros((n, n))

        def collect(node: TreeNode) -> List[int]:
            if node.is_leaf:
                i = index.get(node.label)  # type: ignore[arg-type]
                return [i] if i is not None else []
            groups = [collect(child) for child in node.children]
            for gi in range(len(groups)):
                for gj in range(gi + 1, len(groups)):
                    for a in groups[gi]:
                        for b in groups[gj]:
                            heights[a, b] = heights[b, a] = node.height
            merged: List[int] = []
            for g in groups:
                merged.extend(g)
            return merged

        collect(self.root)
        return heights

    # ------------------------------------------------------------------
    # mutation used by the compact-set merge
    # ------------------------------------------------------------------
    def replace_leaf(self, label: str, subtree: "UltrametricTree") -> "UltrametricTree":
        """Return a new tree with leaf ``label`` replaced by ``subtree``.

        This is the merge primitive of Section 3 of the paper: the leaf
        that stood for a compact set in the reduced-matrix tree is grafted
        with the compact set's own solved subtree.  The graft is legal only
        when the leaf's parent height is at least the subtree root height
        (guaranteed by compactness when the *maximum* reduction is used);
        violations raise ``ValueError``.
        """
        target = self._leaf(label)
        parent = target.parent
        grafted = subtree.copy()
        if parent is not None and parent.height < grafted.root.height - 1e-9:
            raise ValueError(
                f"cannot graft subtree of height {grafted.root.height} under "
                f"a parent of height {parent.height}"
            )
        result = self.copy()
        new_target = result._leaf(label)
        new_parent = new_target.parent
        if new_parent is None:
            # Replacing the whole (single-leaf) tree.
            return grafted
        position = new_parent.children.index(new_target)
        new_parent.children[position] = grafted.root
        grafted.root.parent = new_parent
        return UltrametricTree(result.root)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _leaf(self, label: str) -> TreeNode:
        try:
            return self._leaf_index[label]
        except KeyError:
            raise KeyError(f"tree has no leaf {label!r}") from None

    def _path_to_root(self, label: str) -> List[TreeNode]:
        path = []
        node: Optional[TreeNode] = self._leaf(label)
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def __repr__(self) -> str:
        return (
            f"UltrametricTree(n_leaves={self.n_leaves}, "
            f"height={self.height():.4g}, cost={self.cost():.4g})"
        )
