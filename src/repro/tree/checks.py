"""Validity and quality checks for ultrametric trees.

Three families of checks:

* structural -- the tree really is an ultrametric tree (binary, heights
  non-decreasing toward the root, leaves at height 0);
* feasibility -- ``d_T(i, j) >= M[i, j]`` for every pair, the constraint
  the Minimum Ultrametric Tree problem imposes (Definition 8);
* 3-3 relation consistency -- Fan's evaluation measure quoted by the
  HPCAsia paper (Definition 11): a triple ``(i, j, k)`` is *consistent*
  when ``M[i, j] < min(M[i, k], M[j, k])`` holds exactly when
  ``LCA(i, j)`` lies strictly below ``LCA(i, k) = LCA(j, k)``; otherwise
  it is *contradictory*.  Fewer contradictions means the tree reflects the
  matrix more faithfully -- this is the sense in which compact sets "keep
  the precise relations among species".
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import UltrametricTree

__all__ = [
    "is_valid_ultrametric_tree",
    "dominates_matrix",
    "count_33_contradictions",
    "triple_relations",
]

_TOL = 1e-9


def is_valid_ultrametric_tree(tree: UltrametricTree, *, binary: bool = True) -> bool:
    """Structural validity.

    Checks that leaves sit at height 0, every internal node is strictly
    above its children (non-negative edge weights; equality tolerated
    within a small numerical slack), and -- when ``binary`` -- that every
    internal node has exactly two children, per the paper's tree model.
    """
    for node in tree.root.walk():
        if node.is_leaf:
            if abs(node.height) > _TOL:
                return False
            continue
        if binary and len(node.children) != 2:
            return False
        for child in node.children:
            if child.height > node.height + _TOL:
                return False
    return True


def dominates_matrix(tree: UltrametricTree, matrix: DistanceMatrix) -> bool:
    """Feasibility: ``d_T(i, j) >= M[i, j]`` for every leaf pair."""
    labels = matrix.labels
    if set(labels) != set(tree.leaf_labels):
        raise ValueError("tree leaves and matrix labels differ")
    induced = tree.distance_matrix(labels)
    return bool((induced.values - matrix.values >= -_TOL).all())


def triple_relations(
    tree: UltrametricTree, matrix: DistanceMatrix
) -> Tuple[int, int, List[Tuple[str, str, str]]]:
    """Classify every leaf triple as consistent or contradictory.

    Returns ``(consistent, contradictory, contradictions)`` where
    ``contradictions`` lists the offending triples.  A triple with no
    strict closest pair in the matrix (ties) imposes no constraint and is
    counted as consistent.
    """
    labels = matrix.labels
    if set(labels) != set(tree.leaf_labels):
        raise ValueError("tree leaves and matrix labels differ")
    heights = {}
    induced = tree.distance_matrix(labels)
    for i, label_i in enumerate(labels):
        for j in range(i + 1, len(labels)):
            heights[(i, j)] = induced.values[i, j] / 2.0

    def lca_height(a: int, b: int) -> float:
        return heights[(a, b) if a < b else (b, a)]

    consistent = 0
    contradictions: List[Tuple[str, str, str]] = []
    values = matrix.values
    for i, j, k in combinations(range(len(labels)), 3):
        # Find the strictly closest pair of the triple in the matrix.
        pairs = [
            (values[i, j], (i, j, k)),
            (values[i, k], (i, k, j)),
            (values[j, k], (j, k, i)),
        ]
        pairs.sort(key=lambda item: item[0])
        if pairs[0][0] >= pairs[1][0] - _TOL:
            consistent += 1  # tie: no constraint
            continue
        a, b, c = pairs[0][1]
        # Consistency: LCA(a, b) strictly below LCA(a, c) == LCA(b, c).
        h_ab = lca_height(a, b)
        h_ac = lca_height(a, c)
        h_bc = lca_height(b, c)
        if h_ab < h_ac - _TOL and abs(h_ac - h_bc) <= _TOL:
            consistent += 1
        else:
            contradictions.append((labels[a], labels[b], labels[c]))
    return consistent, len(contradictions), contradictions


def count_33_contradictions(tree: UltrametricTree, matrix: DistanceMatrix) -> int:
    """Number of contradictory triples (lower is better)."""
    _, contradictory, _ = triple_relations(tree, matrix)
    return contradictory
