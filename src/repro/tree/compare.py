"""Tree comparison metrics.

The papers argue that compact sets "keep the precise relations among
species"; these metrics let the experiments quantify that claim:

* **Robinson-Foulds distance** -- the symmetric difference of the two
  trees' clade sets (rooted version); 0 means identical topologies;
* **cophenetic correlation** -- Pearson correlation between the tree's
  induced distances and the input matrix, the classic measure of how
  faithfully a dendrogram represents its data.
"""

from __future__ import annotations

from typing import FrozenSet, Set

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import UltrametricTree

__all__ = [
    "clades",
    "robinson_foulds",
    "normalized_robinson_foulds",
    "shared_clades",
    "cophenetic_correlation",
]


def clades(tree: UltrametricTree) -> Set[FrozenSet[str]]:
    """The non-trivial clades of a rooted tree.

    A clade is the leaf-label set below an internal node; singletons and
    the full leaf set are excluded (every tree has those).
    """
    all_labels = frozenset(tree.leaf_labels)
    result: Set[FrozenSet[str]] = set()
    for node in tree.root.walk():
        if node.is_leaf:
            continue
        members = frozenset(leaf.label or "" for leaf in node.leaves())
        if 1 < len(members) < len(all_labels):
            result.add(members)
    return result


def _check_same_leaves(a: UltrametricTree, b: UltrametricTree) -> None:
    if set(a.leaf_labels) != set(b.leaf_labels):
        raise ValueError("trees must share the same leaf set")


def robinson_foulds(a: UltrametricTree, b: UltrametricTree) -> int:
    """Rooted Robinson-Foulds distance: ``|clades(a) XOR clades(b)|``."""
    _check_same_leaves(a, b)
    return len(clades(a) ^ clades(b))


def normalized_robinson_foulds(a: UltrametricTree, b: UltrametricTree) -> float:
    """RF distance scaled into [0, 1] by the total clade count."""
    _check_same_leaves(a, b)
    ca, cb = clades(a), clades(b)
    total = len(ca) + len(cb)
    if total == 0:
        return 0.0
    return len(ca ^ cb) / total


def shared_clades(a: UltrametricTree, b: UltrametricTree) -> Set[FrozenSet[str]]:
    """The clades the two trees agree on."""
    _check_same_leaves(a, b)
    return clades(a) & clades(b)


def cophenetic_correlation(
    tree: UltrametricTree, matrix: DistanceMatrix
) -> float:
    """Pearson correlation of induced tree distances vs matrix distances.

    1.0 means the dendrogram reproduces the input metric perfectly (only
    possible when the input is itself ultrametric); values near 1 mean
    the tree distorts the data little.
    """
    labels = matrix.labels
    if set(labels) != set(tree.leaf_labels):
        raise ValueError("tree leaves and matrix labels differ")
    induced = tree.distance_matrix(labels).values
    n = len(labels)
    iu = np.triu_indices(n, k=1)
    x = matrix.values[iu]
    y = induced[iu]
    if x.size < 2 or np.std(x) == 0 or np.std(y) == 0:
        return 1.0 if np.allclose(x, y) else 0.0
    return float(np.corrcoef(x, y)[0, 1])
