"""Newick serialization for ultrametric trees.

Trees are written with branch lengths equal to edge weights
(``height(parent) - height(child)``), the format every phylogenetics
viewer understands.  The parser reconstructs node heights bottom-up, so a
round trip preserves the tree exactly (up to floating point formatting).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["to_newick", "parse_newick", "NewickError"]


class NewickError(ValueError):
    """Raised on malformed Newick input."""


def _escape(label: str) -> str:
    if any(ch in label for ch in "(),:;' \t\n"):
        return "'" + label.replace("'", "''") + "'"
    return label


def to_newick(tree: UltrametricTree, *, precision: int = 6) -> str:
    """Serialize ``tree`` to a Newick string with branch lengths."""

    def render(node: TreeNode, parent_height: float) -> str:
        length = parent_height - node.height
        suffix = f":{length:.{precision}f}"
        if node.is_leaf:
            return f"{_escape(node.label or '')}{suffix}"
        inner = ",".join(render(child, node.height) for child in node.children)
        return f"({inner}){suffix}"

    root = tree.root
    if root.is_leaf:
        return f"{_escape(root.label or '')};"
    inner = ",".join(render(child, root.height) for child in root.children)
    return f"({inner});"


class _Parser:
    """Recursive-descent Newick parser producing ``(label, length, children)``."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Tuple:
        node = self._node()
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ";":
            self.pos += 1
        self._skip_ws()
        if self.pos != len(self.text):
            raise NewickError(
                f"trailing characters at position {self.pos}: "
                f"{self.text[self.pos:self.pos + 10]!r}"
            )
        return node

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _node(self) -> Tuple:
        self._skip_ws()
        children: List[Tuple] = []
        if self.pos < len(self.text) and self.text[self.pos] == "(":
            self.pos += 1
            while True:
                children.append(self._node())
                self._skip_ws()
                if self.pos >= len(self.text):
                    raise NewickError("unbalanced parentheses")
                if self.text[self.pos] == ",":
                    self.pos += 1
                    continue
                if self.text[self.pos] == ")":
                    self.pos += 1
                    break
                raise NewickError(
                    f"expected ',' or ')' at position {self.pos}"
                )
        label = self._label()
        length = self._length()
        return (label, length, children)

    def _label(self) -> str:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == "'":
            self.pos += 1
            chars: List[str] = []
            while self.pos < len(self.text):
                ch = self.text[self.pos]
                if ch == "'":
                    if self.pos + 1 < len(self.text) and self.text[self.pos + 1] == "'":
                        chars.append("'")
                        self.pos += 2
                        continue
                    self.pos += 1
                    return "".join(chars)
                chars.append(ch)
                self.pos += 1
            raise NewickError("unterminated quoted label")
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "(),:;":
            self.pos += 1
        return self.text[start : self.pos].strip()

    def _length(self) -> float:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ":":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isdigit() or self.text[self.pos] in ".eE+-"
            ):
                self.pos += 1
            try:
                return float(self.text[start : self.pos])
            except ValueError:
                raise NewickError(
                    f"bad branch length at position {start}"
                ) from None
        return 0.0


def parse_newick(text: str) -> UltrametricTree:
    """Parse a Newick string into an :class:`UltrametricTree`.

    Heights are reconstructed bottom-up: a node sits at the maximum of
    ``child height + child branch length`` over its children (for genuinely
    ultrametric input all children agree).  Raises :class:`NewickError`
    on malformed input.
    """
    label, _, children = _Parser(text).parse()

    def build(spec: Tuple) -> TreeNode:
        spec_label, _, spec_children = spec
        if not spec_children:
            if not spec_label:
                raise NewickError("leaf without a label")
            return TreeNode(0.0, label=spec_label)
        built = [build(child) for child in spec_children]
        height = max(
            child.height + child_spec[1]
            for child, child_spec in zip(built, spec_children)
        )
        return TreeNode(height, built, label=spec_label or None)

    root = build((label, 0.0, children))
    return UltrametricTree(root)
