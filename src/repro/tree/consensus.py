"""Consensus trees over a collection of ultrametric trees.

Branch-and-bound with ``collect_all`` returns *every* cost-optimal tree
(the papers' "results set"); bootstrap replication returns one tree per
resampled matrix.  Either way the biologist wants a single summary: the
*majority-rule consensus* keeps exactly the clades appearing in more
than a threshold fraction of the input trees (strict consensus at
threshold 1.0).  Majority clades are pairwise laminar, so they assemble
into a (generally non-binary) rooted tree; node heights are the average
heights of the supporting clades.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.tree.compare import clades
from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["majority_consensus", "clade_support"]


def clade_support(
    trees: Sequence[UltrametricTree],
) -> Dict[FrozenSet[str], float]:
    """Fraction of ``trees`` containing each observed non-trivial clade."""
    if not trees:
        raise ValueError("need at least one tree")
    leaf_set = set(trees[0].leaf_labels)
    for tree in trees[1:]:
        if set(tree.leaf_labels) != leaf_set:
            raise ValueError("all trees must share the same leaf set")
    counts: Dict[FrozenSet[str], int] = {}
    for tree in trees:
        for clade in clades(tree):
            counts[clade] = counts.get(clade, 0) + 1
    return {clade: count / len(trees) for clade, count in counts.items()}


def _average_clade_heights(
    trees: Sequence[UltrametricTree],
    kept: Sequence[FrozenSet[str]],
) -> Dict[FrozenSet[str], float]:
    totals: Dict[FrozenSet[str], Tuple[float, int]] = {
        clade: (0.0, 0) for clade in kept
    }
    kept_set = set(kept)
    for tree in trees:
        for node in tree.root.walk():
            if node.is_leaf:
                continue
            members = frozenset(
                leaf.label or "" for leaf in node.leaves()
            )
            if members in kept_set:
                total, count = totals[members]
                totals[members] = (total + node.height, count + 1)
    return {
        clade: total / count for clade, (total, count) in totals.items() if count
    }


def majority_consensus(
    trees: Sequence[UltrametricTree],
    *,
    threshold: float = 0.5,
) -> UltrametricTree:
    """The majority-rule consensus of ``trees``.

    Keeps clades whose support strictly exceeds ``threshold`` (0.5 =
    classic majority rule; 1.0 - epsilon = strict consensus).  Clades
    above half support can never conflict, so they always nest into a
    tree; internal nodes may have more than two children where the
    inputs disagree.  Node heights average the supporting trees' clade
    heights (the root averages the input root heights), clamped so the
    result stays a valid ultrametric tree.
    """
    if not 0.5 <= threshold <= 1.0:
        raise ValueError(
            "threshold must be in [0.5, 1.0]; below 0.5 conflicting "
            "clades could both survive"
        )
    support = clade_support(trees)
    labels = trees[0].leaf_labels
    kept = [
        clade
        for clade, fraction in support.items()
        if fraction > threshold - 1e-12 and fraction >= 0.5
    ]
    # Strictly-majority clades are laminar; sort big-to-small and nest.
    kept.sort(key=len, reverse=True)
    heights = _average_clade_heights(trees, kept)
    root_height = sum(t.height() for t in trees) / len(trees)

    universe = frozenset(labels)
    root = TreeNode(root_height)
    containers: List[Tuple[FrozenSet[str], TreeNode]] = [(universe, root)]

    for clade in kept:
        # Deepest kept clade strictly containing this one (or the root).
        parent = root
        parent_members = universe
        for members, node in containers:
            if clade < members and len(members) < len(parent_members):
                parent, parent_members = node, members
        height = min(heights.get(clade, parent.height), parent.height)
        node = TreeNode(height)
        parent.add_child(node)
        containers.append((clade, node))

    # Attach every leaf under the smallest kept clade containing it.
    for label in labels:
        parent = root
        parent_members = universe
        for members, node in containers:
            if label in members and len(members) < len(parent_members):
                parent, parent_members = node, members
        parent.add_child(TreeNode(0.0, label=label))

    return UltrametricTree(root)
