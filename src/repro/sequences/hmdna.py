"""Synthetic Human Mitochondrial DNA datasets.

The PaCT paper evaluates on "15 data set containing 26 species for each"
and "10 data set each including 30 DNAs"; the HPCAsia paper runs 20
instances per species count.  The real matrices came from the authors'
lab.  This module generates the synthetic stand-in: for each dataset a
random clock-like species tree (human mtDNA lineages are shallow, so the
tree is shallow with pronounced haplogroup clustering), sequences evolved
along it, and the pairwise-distance matrix of those sequences.

The haplogroup structure matters: because lineages cluster, the matrices
contain non-trivial compact sets, which is why the paper's compact-set
technique pays off on HMDNA data.  ``cluster_boost`` controls how
pronounced that structure is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.sequences.distance import distance_matrix_from_sequences
from repro.sequences.evolution import evolve_sequences, random_species_tree
from repro.tree.ultrametric import UltrametricTree

__all__ = ["HMDNADataset", "generate_hmdna_dataset", "hmdna_matrices"]

RngLike = Union[int, np.random.Generator, None]


@dataclass
class HMDNADataset:
    """One synthetic HMDNA instance.

    Carries the true species tree (unknown to the algorithms, handy for
    tests), the evolved sequences, and the distance matrix the pipeline
    consumes.
    """

    name: str
    true_tree: UltrametricTree
    sequences: Dict[str, str]
    matrix: DistanceMatrix

    @property
    def n_species(self) -> int:
        return self.matrix.n


def generate_hmdna_dataset(
    n_species: int = 26,
    seed: RngLike = None,
    *,
    sequence_length: int = 500,
    depth: float = 0.30,
    cluster_boost: float = 0.75,
    method: str = "p-count",
    name: str = "hmdna",
) -> HMDNADataset:
    """Generate one synthetic HMDNA dataset.

    ``depth`` is the root-to-tip expected substitutions per site (human
    mtDNA hypervariable regions are fast-evolving, hence a visible but
    not saturated signal); ``cluster_boost`` skews split heights downward
    so haplogroup-like clusters emerge.  ``method`` picks the distance
    (see :func:`repro.sequences.distance.distance_matrix_from_sequences`).
    """
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    labels = [f"H{i:02d}" for i in range(n_species)]
    tree = random_species_tree(
        n_species,
        rng,
        depth=depth,
        balance=0.5,
        labels=labels,
    )
    # Skew internal heights downward to sharpen cluster separation:
    # children of the root keep their height, deeper nodes shrink.
    for node in tree.root.walk():
        if not node.is_leaf and node is not tree.root:
            node.height *= cluster_boost
    _restore_monotonicity(tree)
    sequences = evolve_sequences(tree, length=sequence_length, seed=rng)
    matrix = distance_matrix_from_sequences(
        sequences, method=method, order=labels
    )
    return HMDNADataset(name=name, true_tree=tree, sequences=sequences, matrix=matrix)


def _restore_monotonicity(tree: UltrametricTree) -> None:
    """Clamp child heights below parent heights after the skew."""

    def fix(node, ceiling: float) -> None:
        if node.height > ceiling:
            node.height = ceiling
        for child in node.children:
            fix(child, node.height)

    fix(tree.root, tree.root.height)


def hmdna_matrices(
    n_species: int,
    n_datasets: int,
    seed: RngLike = 0,
    **dataset_options,
) -> List[HMDNADataset]:
    """The paper's dataset batteries (e.g. 15 x 26 species, 10 x 30 DNAs)."""
    if isinstance(seed, np.random.Generator):
        rng = seed
    else:
        rng = np.random.default_rng(seed)
    datasets = []
    for index in range(n_datasets):
        datasets.append(
            generate_hmdna_dataset(
                n_species,
                rng,
                name=f"hmdna-{n_species}sp-{index:02d}",
                **dataset_options,
            )
        )
    return datasets
