"""Synthetic DNA substrate.

The paper's biological experiments use distance matrices computed from
Human Mitochondrial DNA -- proprietary lab data we cannot ship.  Per the
reproduction ground rules we substitute a faithful synthetic equivalent:
sequences are evolved along a random clock-like (ultrametric) species
tree with per-site mutations, then pairwise distances are computed
exactly the way a biologist would (p-distance, Jukes-Cantor, or edit
distance).  The resulting matrices carry the hierarchical signal that
distinguishes the paper's HMDNA runs from its uniform-random runs.
"""

from repro.sequences.alphabet import (
    DNA_ALPHABET,
    ambiguity_fraction,
    classify_sequence,
    detect_alphabet,
    random_sequence,
    validate_sequence,
)
from repro.sequences.evolution import (
    random_species_tree,
    evolve_sequences,
)
from repro.sequences.distance import (
    p_distance,
    jukes_cantor_distance,
    edit_distance,
    distance_matrix_from_sequences,
    resolve_method,
    saturated_pairs,
)
from repro.sequences.hmdna import HMDNADataset, generate_hmdna_dataset, hmdna_matrices
from repro.sequences.fasta import parse_fasta, read_fasta, write_fasta
from repro.sequences.bootstrap import (
    bootstrap_sequences,
    bootstrap_matrices,
    bootstrap_support,
)

__all__ = [
    "DNA_ALPHABET",
    "ambiguity_fraction",
    "classify_sequence",
    "detect_alphabet",
    "random_sequence",
    "validate_sequence",
    "random_species_tree",
    "evolve_sequences",
    "p_distance",
    "jukes_cantor_distance",
    "edit_distance",
    "distance_matrix_from_sequences",
    "resolve_method",
    "saturated_pairs",
    "HMDNADataset",
    "generate_hmdna_dataset",
    "hmdna_matrices",
    "parse_fasta",
    "read_fasta",
    "write_fasta",
    "bootstrap_sequences",
    "bootstrap_matrices",
    "bootstrap_support",
]
