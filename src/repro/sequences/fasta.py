"""FASTA I/O for the sequence substrate.

Biologists bring sequences as FASTA; the tool system accepts them, and
the synthetic datasets can be exported for inspection in standard
viewers.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Dict, Union

from repro.sequences.alphabet import validate_sequence

__all__ = ["read_fasta", "write_fasta", "FastaError"]

PathLike = Union[str, Path]


class FastaError(ValueError):
    """Raised on malformed FASTA input."""


def _read_text(source: Union[PathLike, _io.TextIOBase]) -> str:
    if hasattr(source, "read"):
        return source.read()  # type: ignore[union-attr]
    return Path(source).read_text()


def read_fasta(
    source: Union[PathLike, _io.TextIOBase],
    *,
    validate: bool = True,
) -> Dict[str, str]:
    """Parse FASTA into an ordered ``{name: sequence}`` mapping.

    The record name is the first whitespace-delimited token after ``>``.
    With ``validate`` (default) sequences must be DNA over ``ACGT``
    (case-insensitive; stored upper-case).
    """
    text = _read_text(source)
    records: Dict[str, str] = {}
    name = None
    chunks = []

    def flush():
        if name is None:
            return
        sequence = "".join(chunks)
        if not sequence:
            raise FastaError(f"record {name!r} has no sequence data")
        records[name] = validate_sequence(sequence) if validate else sequence

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                raise FastaError(f"empty FASTA header at line {lineno}")
            name = header.split()[0]
            if name in records:
                raise FastaError(f"duplicate FASTA record {name!r}")
            chunks = []
        else:
            if name is None:
                raise FastaError(
                    f"sequence data before any header at line {lineno}"
                )
            chunks.append(line)
    flush()
    if not records:
        raise FastaError("no FASTA records found")
    return records


def write_fasta(
    sequences: Dict[str, str],
    destination: Union[PathLike, _io.TextIOBase],
    *,
    line_width: int = 70,
) -> None:
    """Write sequences as FASTA, wrapping at ``line_width`` columns."""
    if line_width < 1:
        raise ValueError("line_width must be positive")
    parts = []
    for name, sequence in sequences.items():
        parts.append(f">{name}")
        for start in range(0, len(sequence), line_width):
            parts.append(sequence[start : start + line_width])
    text = "\n".join(parts) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(text)
