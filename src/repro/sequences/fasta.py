"""FASTA I/O for the sequence substrate.

Biologists bring sequences as FASTA; the tool system accepts them, and
the synthetic datasets can be exported for inspection in standard
viewers.

Two parsing surfaces:

* :func:`read_fasta` -- the strict historical API: raises
  :class:`FastaError` on the first structural problem and returns a
  ``{name: sequence}`` dict of validated DNA.  Synthetic workflows use
  this.
* :func:`parse_fasta` -- the ingestion front end: tolerates CRLF,
  wrapped lines, duplicate ids and empty records, returning *every*
  record (as :class:`FastaRecord`, duplicates included, in file order)
  plus a list of structured :class:`FastaIssue` records describing what
  was wrong.  ``strict=True`` promotes the first issue to a
  :class:`FastaError`; ``strict=False`` never raises on record-level
  problems -- the QC stage downstream decides what survives.
"""

from __future__ import annotations

import io as _io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.sequences.alphabet import validate_sequence

__all__ = [
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "FastaError",
    "FastaIssue",
    "FastaParse",
    "FastaRecord",
]

PathLike = Union[str, Path]


class FastaError(ValueError):
    """Raised on malformed FASTA input."""


@dataclass
class FastaRecord:
    """One FASTA record, exactly as parsed (no alphabet validation).

    ``name`` is the first whitespace-delimited token after ``>``;
    ``description`` is the rest of the header line.  ``sequence`` is the
    concatenated, upper-cased data lines -- possibly empty for a header
    with no data.  ``lineno`` is the 1-based header line number, so QC
    rejections can point back into the file.
    """

    name: str
    sequence: str
    description: str = ""
    lineno: int = 0

    def __len__(self) -> int:
        return len(self.sequence)


@dataclass
class FastaIssue:
    """One structural problem found while parsing (JSON-safe)."""

    code: str
    detail: str
    lineno: int = 0
    record: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "detail": self.detail,
            "lineno": self.lineno,
            "record": self.record,
        }


@dataclass
class FastaParse:
    """Everything :func:`parse_fasta` found: records plus issues."""

    records: List[FastaRecord] = field(default_factory=list)
    issues: List[FastaIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def parse_fasta(
    source: Union[PathLike, _io.TextIOBase, str],
    *,
    strict: bool = False,
    text: bool = False,
) -> FastaParse:
    """Parse FASTA text into records + structured issues.

    ``source`` is a path or an open file; pass ``text=True`` to treat a
    string as the FASTA *content* itself (the service endpoint receives
    uploads as text).  Handles CRLF line endings and wrapped sequence
    lines; sequences are upper-cased but **not** alphabet-validated --
    ambiguity codes, protein residues and garbage all come through for
    the QC stage to judge.

    Issue codes produced here (the ingestion pipeline's *stage 0*):

    ``empty-header``
        A ``>`` line with nothing after it; the following data lines are
        skipped.
    ``data-before-header``
        Sequence data before the first ``>`` line (skipped).
    ``truncated-record``
        The *final* record has a header but no sequence data -- the
        signature of a file cut off mid-transfer.  (An empty record
        mid-file is returned with ``sequence == ""`` and left to QC:
        that is a bad record, not a torn file.)
    ``no-records``
        The input contains no FASTA records at all.

    With ``strict=True`` the first issue raises :class:`FastaError`
    instead; otherwise issues accumulate and parsing continues.
    """
    if text:
        raw = str(source)
    elif hasattr(source, "read"):
        raw = source.read()  # type: ignore[union-attr]
    else:
        raw = Path(source).read_text()

    parse = FastaParse()

    def issue(code: str, detail: str, lineno: int, record: str = "") -> None:
        if strict:
            raise FastaError(f"{detail} (line {lineno})")
        parse.issues.append(FastaIssue(code, detail, lineno, record))

    current: Union[FastaRecord, None] = None
    chunks: List[str] = []
    skipping = False  # inside a record whose header was rejected

    def flush() -> None:
        nonlocal current
        if current is None:
            return
        current.sequence = "".join(chunks).upper()
        parse.records.append(current)
        current = None

    for lineno, line in enumerate(raw.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                issue("empty-header", "empty FASTA header", lineno)
                skipping = True
                continue
            skipping = False
            tokens = header.split(None, 1)
            current = FastaRecord(
                name=tokens[0],
                sequence="",
                description=tokens[1] if len(tokens) > 1 else "",
                lineno=lineno,
            )
            chunks = []
        else:
            if skipping:
                continue
            if current is None:
                issue(
                    "data-before-header",
                    "sequence data before any FASTA header",
                    lineno,
                )
                skipping = True
                continue
            chunks.append("".join(line.split()))
    flush()

    if not parse.records:
        issue("no-records", "no FASTA records found", 0)
    elif not parse.records[-1].sequence:
        last = parse.records[-1]
        issue(
            "truncated-record",
            f"final record {last.name!r} has a header but no sequence "
            f"data; the file looks truncated",
            last.lineno,
            record=last.name,
        )
    return parse


def _read_text(source: Union[PathLike, _io.TextIOBase]) -> str:
    if hasattr(source, "read"):
        return source.read()  # type: ignore[union-attr]
    return Path(source).read_text()


def read_fasta(
    source: Union[PathLike, _io.TextIOBase],
    *,
    validate: bool = True,
) -> Dict[str, str]:
    """Parse FASTA into an ordered ``{name: sequence}`` mapping.

    The record name is the first whitespace-delimited token after ``>``.
    With ``validate`` (default) sequences must be DNA over ``ACGT``
    (case-insensitive; stored upper-case).
    """
    text = _read_text(source)
    records: Dict[str, str] = {}
    name = None
    chunks = []

    def flush():
        if name is None:
            return
        sequence = "".join(chunks)
        if not sequence:
            raise FastaError(f"record {name!r} has no sequence data")
        records[name] = validate_sequence(sequence) if validate else sequence

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            flush()
            header = line[1:].strip()
            if not header:
                raise FastaError(f"empty FASTA header at line {lineno}")
            name = header.split()[0]
            if name in records:
                raise FastaError(f"duplicate FASTA record {name!r}")
            chunks = []
        else:
            if name is None:
                raise FastaError(
                    f"sequence data before any header at line {lineno}"
                )
            chunks.append(line)
    flush()
    if not records:
        raise FastaError("no FASTA records found")
    return records


def write_fasta(
    sequences: Dict[str, str],
    destination: Union[PathLike, _io.TextIOBase],
    *,
    line_width: int = 70,
) -> None:
    """Write sequences as FASTA, wrapping at ``line_width`` columns."""
    if line_width < 1:
        raise ValueError("line_width must be positive")
    parts = []
    for name, sequence in sequences.items():
        parts.append(f">{name}")
        for start in range(0, len(sequence), line_width):
            parts.append(sequence[start : start + line_width])
    text = "\n".join(parts) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
    else:
        Path(destination).write_text(text)
