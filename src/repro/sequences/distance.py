"""Pairwise sequence distances.

Both papers take "the edit distance for any two of species" as the matrix
entry.  We implement that plus the two distances biologists actually
favour for aligned mitochondrial data:

* **p-distance** -- the fraction (or count) of differing sites;
* **Jukes-Cantor distance** -- the p-distance corrected for multiple
  hits, ``-3/4 ln(1 - 4p/3)``;
* **edit distance** -- Levenshtein DP for unaligned sequences.

p-distance and edit distance are metrics outright; the Jukes-Cantor
correction can break the triangle inequality, so the matrix builder
finishes with a shortest-path closure.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import metric_closure

__all__ = [
    "p_distance",
    "jukes_cantor_distance",
    "edit_distance",
    "distance_matrix_from_sequences",
    "saturated_pairs",
    "resolve_method",
    "SATURATION_THRESHOLD",
]

#: p-distance at or above this is "saturated": the Jukes-Cantor
#: correction diverges and the site signal is mostly noise.
SATURATION_THRESHOLD = 0.75


def p_distance(a: str, b: str, *, normalized: bool = True) -> float:
    """Hamming distance between equal-length sequences.

    With ``normalized`` (default) the result is the differing fraction of
    sites; otherwise the raw count.
    """
    if len(a) != len(b):
        raise ValueError(
            f"p-distance needs aligned sequences (lengths {len(a)} vs {len(b)})"
        )
    if not a:
        return 0.0
    diff = sum(1 for x, y in zip(a, b) if x != y)
    return diff / len(a) if normalized else float(diff)


def jukes_cantor_distance(a: str, b: str) -> float:
    """Jukes-Cantor corrected distance between aligned sequences.

    ``d = -3/4 * ln(1 - 4p/3)`` where ``p`` is the p-distance.  For
    ``p >= 3/4`` (saturation) the correction diverges; we clamp to the
    value at ``p = 0.749`` so the matrix stays finite, which is the usual
    software convention.
    """
    p = p_distance(a, b)
    cap = 0.749
    if p >= 0.75:
        p = cap
    return -0.75 * math.log(1.0 - 4.0 * p / 3.0)


def edit_distance(a: str, b: str, *, band: Optional[int] = None) -> int:
    """Levenshtein distance with an optional diagonal band.

    The banded variant (``band`` = maximum explored diagonal offset)
    matches how large mitochondrial sequences are compared in practice;
    it returns the exact distance whenever that distance is at most
    ``band``.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    n, m = len(a), len(b)
    if band is None:
        previous = list(range(m + 1))
        for i in range(1, n + 1):
            current = [i] + [0] * m
            ai = a[i - 1]
            for j in range(1, m + 1):
                cost = 0 if ai == b[j - 1] else 1
                current[j] = min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + cost,
                )
            previous = current
        return previous[m]

    if band < abs(n - m):
        band = abs(n - m)
    infinity = n + m
    previous = {j: j for j in range(0, min(m, band) + 1)}
    for i in range(1, n + 1):
        current: Dict[int, int] = {}
        lo = max(0, i - band)
        hi = min(m, i + band)
        for j in range(lo, hi + 1):
            if j == 0:
                current[j] = i
                continue
            cost = 0 if a[i - 1] == b[j - 1] else 1
            best = previous.get(j - 1, infinity) + cost
            up = previous.get(j, infinity) + 1
            left = current.get(j - 1, infinity) + 1
            current[j] = min(best, up, left)
        previous = current
    return previous.get(m, infinity)


_METHODS = {
    "p": lambda a, b: p_distance(a, b),
    "p-count": lambda a, b: p_distance(a, b, normalized=False),
    "jukes-cantor": jukes_cantor_distance,
    "edit": lambda a, b: float(edit_distance(a, b)),
}

#: Short spellings accepted everywhere a distance method is named.
_ALIASES = {"jc": "jukes-cantor", "levenshtein": "edit", "hamming": "p-count"}


def resolve_method(method: str) -> str:
    """Canonicalise a distance-method name (``"jc"`` -> ``"jukes-cantor"``).

    Raises ``ValueError`` for names that are neither canonical nor an
    alias, listing the canonical choices.
    """
    canonical = _ALIASES.get(method, method)
    if canonical not in _METHODS:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(_METHODS)}"
        )
    return canonical


def saturated_pairs(
    sequences: Mapping[str, str],
    *,
    order: Optional[Sequence[str]] = None,
    threshold: float = SATURATION_THRESHOLD,
) -> list:
    """Aligned label pairs whose p-distance is at or past saturation.

    Returns ``[(label_a, label_b, p), ...]`` for every unordered pair
    with ``p >= threshold``.  At such divergence the Jukes-Cantor
    correction has blown up (we clamp it) and even the raw p-distance
    carries little phylogenetic signal, so the ingestion pipeline flags
    -- but does not reject -- these pairs in its manifest.
    """
    labels = list(order) if order is not None else sorted(sequences)
    flagged = []
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            p = p_distance(sequences[a], sequences[b])
            if p >= threshold:
                flagged.append((a, b, p))
    return flagged


def distance_matrix_from_sequences(
    sequences: Mapping[str, str],
    *,
    method: str = "p-count",
    scale: float = 1.0,
    order: Optional[Sequence[str]] = None,
    repair: bool = True,
) -> DistanceMatrix:
    """Build a :class:`DistanceMatrix` from labelled sequences.

    ``method`` is one of ``"p"``, ``"p-count"``, ``"jukes-cantor"`` or
    ``"edit"`` (aliases ``"jc"``, ``"levenshtein"``, ``"hamming"``);
    ``scale`` multiplies every entry (the papers work with integer-ish
    distances, so scaling a p-distance by the sequence length or by 100
    keeps the numbers in their range).  With ``repair`` (the default)
    the result is run through a metric closure so downstream solvers
    always see a metric; ``repair=False`` returns the raw pairwise
    matrix so callers -- the ingestion pipeline's repair stage -- can
    measure how much the closure perturbs it.
    """
    method = resolve_method(method)
    fn = _METHODS[method]
    labels = list(order) if order is not None else sorted(sequences)
    missing = [name for name in labels if name not in sequences]
    if missing:
        raise KeyError(f"sequences missing for {missing}")
    n = len(labels)
    values = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = fn(sequences[labels[i]], sequences[labels[j]]) * scale
            values[i, j] = values[j, i] = d
    raw = DistanceMatrix(values, labels, validate=False)
    return metric_closure(raw) if repair else raw
