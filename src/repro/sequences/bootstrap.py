"""Bootstrap support for inferred trees.

Felsenstein's bootstrap is how biologists attach confidence to the
clades of a tree built from sequences: resample alignment columns with
replacement, rebuild a tree per replicate, and report each original
clade's frequency across the replicate trees.  Combined with the
compact-set pipeline this closes the loop the project report promises --
a tool whose output a biologist can actually trust.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Union

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.sequences.distance import distance_matrix_from_sequences
from repro.tree.compare import clades
from repro.tree.consensus import clade_support
from repro.tree.ultrametric import UltrametricTree

__all__ = ["bootstrap_sequences", "bootstrap_matrices", "bootstrap_support"]

RngLike = Union[int, np.random.Generator, None]

TreeBuilder = Callable[[DistanceMatrix], UltrametricTree]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def bootstrap_sequences(
    sequences: Mapping[str, str],
    seed: RngLike = None,
) -> Dict[str, str]:
    """One bootstrap replicate: resample alignment columns with replacement."""
    if not sequences:
        raise ValueError("need at least one sequence")
    lengths = {len(s) for s in sequences.values()}
    if len(lengths) != 1:
        raise ValueError("bootstrap requires aligned (equal-length) sequences")
    (length,) = lengths
    if length == 0:
        raise ValueError("sequences are empty")
    rng = _rng(seed)
    columns = rng.integers(0, length, size=length)
    return {
        name: "".join(sequence[c] for c in columns)
        for name, sequence in sequences.items()
    }


def bootstrap_matrices(
    sequences: Mapping[str, str],
    n_replicates: int,
    seed: RngLike = None,
    *,
    method: str = "p-count",
) -> List[DistanceMatrix]:
    """Distance matrices of ``n_replicates`` bootstrap replicates."""
    if n_replicates < 1:
        raise ValueError("need at least one replicate")
    rng = _rng(seed)
    order = sorted(sequences)
    return [
        distance_matrix_from_sequences(
            bootstrap_sequences(sequences, rng), method=method, order=order
        )
        for _ in range(n_replicates)
    ]


def bootstrap_support(
    tree: UltrametricTree,
    sequences: Mapping[str, str],
    n_replicates: int = 100,
    seed: RngLike = None,
    *,
    builder: TreeBuilder = None,
    method: str = "p-count",
) -> Dict[FrozenSet[str], float]:
    """Support value for every non-trivial clade of ``tree``.

    ``builder`` rebuilds a tree from each replicate matrix; the default
    is the compact-set pipeline (UPGMM fallback above 12 species per
    subproblem, keeping replicates cheap).  Returns a mapping from clade
    to the fraction of replicates containing it -- 1.0 means the clade
    survived every resample.
    """
    if set(tree.leaf_labels) != set(sequences):
        raise ValueError("tree leaves and sequence names differ")
    if builder is None:
        from repro.core.pipeline import CompactSetTreeBuilder

        pipeline = CompactSetTreeBuilder(max_exact_size=12)

        def builder(matrix: DistanceMatrix) -> UltrametricTree:
            return pipeline.build(matrix).tree

    matrices = bootstrap_matrices(
        sequences, n_replicates, seed, method=method
    )
    replicate_trees = [builder(matrix) for matrix in matrices]
    support = clade_support(replicate_trees)
    return {
        clade: support.get(clade, 0.0) for clade in clades(tree)
    }
