"""DNA alphabet helpers."""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["DNA_ALPHABET", "random_sequence", "validate_sequence"]

#: The nucleotide alphabet, in the conventional order.
DNA_ALPHABET = "ACGT"

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_sequence(length: int, seed: RngLike = None) -> str:
    """A uniformly random DNA sequence of the given length."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = _rng(seed)
    indices = rng.integers(0, len(DNA_ALPHABET), size=length)
    return "".join(DNA_ALPHABET[i] for i in indices)


def validate_sequence(sequence: str) -> str:
    """Return ``sequence`` upper-cased after checking its alphabet."""
    upper = sequence.upper()
    bad = set(upper) - set(DNA_ALPHABET)
    if bad:
        raise ValueError(f"sequence contains non-DNA symbols: {sorted(bad)}")
    return upper
