"""Sequence alphabets: DNA, IUPAC ambiguity codes, protein.

The synthetic generators only ever emit clean ``ACGT``, but real FASTA
uploads arrive with IUPAC ambiguity codes (``N``, ``R``, ``Y``, ...),
alignment gaps, protein sequences and outright garbage.  The ingestion
pipeline (:mod:`repro.ingest`) QC-gates on the classifications this
module provides:

* :func:`classify_sequence` -- ``"dna"`` / ``"protein"`` / ``"unknown"``
  for one sequence;
* :func:`detect_alphabet` -- the consensus over a whole batch (``"mixed"``
  when records disagree);
* :func:`ambiguity_fraction` -- how much of a sequence is ambiguity
  codes or gaps, the QC gate for saturation-prone inputs.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

__all__ = [
    "DNA_ALPHABET",
    "DNA_AMBIGUITY",
    "PROTEIN_ALPHABET",
    "PROTEIN_AMBIGUITY",
    "GAP_CHARS",
    "ambiguity_fraction",
    "classify_sequence",
    "detect_alphabet",
    "random_sequence",
    "validate_sequence",
]

#: The nucleotide alphabet, in the conventional order.
DNA_ALPHABET = "ACGT"

#: IUPAC nucleotide ambiguity codes (any-of sets over ``ACGT``).
DNA_AMBIGUITY = "RYSWKMBDHVN"

#: The twenty standard amino acids.
PROTEIN_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"

#: Amino-acid ambiguity/rare codes (B = D/N, Z = E/Q, J = I/L, X = any,
#: plus the non-standard U (selenocysteine) and O (pyrrolysine)).
PROTEIN_AMBIGUITY = "BJOUXZ"

#: Alignment gap characters tolerated in aligned FASTA.
GAP_CHARS = "-."

_DNA_SET = frozenset(DNA_ALPHABET)
_DNA_FULL = frozenset(DNA_ALPHABET + DNA_AMBIGUITY + GAP_CHARS + "U")
_PROTEIN_SET = frozenset(PROTEIN_ALPHABET)
_PROTEIN_FULL = frozenset(PROTEIN_ALPHABET + PROTEIN_AMBIGUITY + GAP_CHARS)

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_sequence(length: int, seed: RngLike = None) -> str:
    """A uniformly random DNA sequence of the given length."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = _rng(seed)
    indices = rng.integers(0, len(DNA_ALPHABET), size=length)
    return "".join(DNA_ALPHABET[i] for i in indices)


def validate_sequence(sequence: str) -> str:
    """Return ``sequence`` upper-cased after checking its alphabet."""
    upper = sequence.upper()
    bad = set(upper) - set(DNA_ALPHABET)
    if bad:
        raise ValueError(f"sequence contains non-DNA symbols: {sorted(bad)}")
    return upper


def classify_sequence(sequence: str) -> str:
    """Classify one sequence as ``"dna"``, ``"protein"`` or ``"unknown"``.

    Case-insensitive.  Every ``ACGT`` string is also a legal protein
    string, so DNA is checked first: a sequence over the nucleotide
    alphabet plus IUPAC ambiguity codes (and gaps) whose unambiguous
    fraction is mostly ``ACGT`` is DNA.  Anything over the amino-acid
    alphabet (plus ``BJOUXZ`` and gaps) is protein; anything else --
    digits, ``*`` stops, punctuation -- is ``"unknown"`` and fails QC.
    An empty sequence is ``"unknown"`` (there is nothing to classify).
    """
    upper = sequence.upper()
    chars = set(upper)
    if not chars:
        return "unknown"
    if chars <= _DNA_FULL:
        residues = [c for c in upper if c not in GAP_CHARS]
        if not residues:
            return "unknown"
        acgt = sum(1 for c in residues if c in _DNA_SET)
        # Mostly unambiguous nucleotides: DNA.  An all-N smear (or an
        # ambiguity-dominated read) is still DNA-shaped; only when the
        # letters could equally be amino acids do we need the majority
        # test, and every DNA ambiguity code *is* an amino-acid letter,
        # so the 50% rule keeps e.g. "NHWKDS..." protein out of "dna".
        if acgt * 2 >= len(residues):
            return "dna"
        if chars <= frozenset(DNA_AMBIGUITY + GAP_CHARS):
            # No ACGT at all but pure ambiguity codes -- an N-run.
            if chars - frozenset("N" + GAP_CHARS) == set():
                return "dna"
        return "protein" if chars <= _PROTEIN_FULL else "unknown"
    if chars <= _PROTEIN_FULL:
        return "protein"
    return "unknown"


def ambiguity_fraction(sequence: str) -> float:
    """Fraction of a sequence that is ambiguity codes or gaps.

    For DNA this is everything outside ``ACGT``; for protein everything
    outside the twenty standard residues.  Unknown-alphabet sequences
    report the DNA fraction (the caller has already rejected them).
    Empty sequences report 1.0 -- maximally uninformative.
    """
    upper = sequence.upper()
    if not upper:
        return 1.0
    kind = classify_sequence(upper)
    core = _PROTEIN_SET if kind == "protein" else _DNA_SET
    ambiguous = sum(1 for c in upper if c not in core)
    return ambiguous / len(upper)


def detect_alphabet(sequences: Iterable[str]) -> str:
    """Consensus alphabet over a batch of sequences.

    Returns ``"dna"`` or ``"protein"`` when every classifiable sequence
    agrees, ``"mixed"`` when they disagree, and ``"unknown"`` when no
    sequence classifies at all (or the batch is empty).
    """
    seen = set()
    for sequence in sequences:
        kind = classify_sequence(sequence)
        if kind != "unknown":
            seen.add(kind)
    if not seen:
        return "unknown"
    if len(seen) > 1:
        return "mixed"
    return seen.pop()
