"""Sequence evolution along a clock-like species tree.

Human mitochondrial DNA evolves (to first order) under a molecular clock,
which is exactly the assumption behind ultrametric trees.  We therefore
generate a random *ultrametric* species tree and evolve a root sequence
down its edges: along an edge of length ``t`` each site mutates with
probability ``1 - exp(-t)`` (time measured in expected substitutions per
site), drawing the replacement uniformly from the other three
nucleotides -- the Jukes-Cantor model.
"""

from __future__ import annotations

import math
from typing import Dict, List, Union

import numpy as np

from repro.sequences.alphabet import DNA_ALPHABET, random_sequence
from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["random_species_tree", "evolve_sequences"]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_species_tree(
    n: int,
    seed: RngLike = None,
    *,
    depth: float = 0.35,
    balance: float = 0.5,
    labels: Union[List[str], None] = None,
) -> UltrametricTree:
    """A random ultrametric species tree over ``n`` species.

    Built top-down: the root sits at height ``depth`` (expected
    substitutions per site from root to any tip) and each split divides
    the species and the remaining height.  ``balance`` controls how even
    the splits are: 0.5 gives balanced, values near 0 or 1 give
    caterpillar-like trees.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if depth <= 0:
        raise ValueError("depth must be positive")
    if not 0.0 < balance < 1.0:
        raise ValueError("balance must be in (0, 1)")
    rng = _rng(seed)
    if labels is None:
        labels = [f"seq{i:02d}" for i in range(n)]
    if len(labels) != n:
        raise ValueError("need exactly one label per species")

    def build(names: List[str], height: float) -> TreeNode:
        if len(names) == 1:
            return TreeNode(0.0, label=names[0])
        # Split sizes biased by `balance`; guarantee non-empty halves.
        left_size = 1 + int(
            rng.binomial(len(names) - 2, balance)
        )
        left_names = names[:left_size]
        right_names = names[left_size:]
        child_height = height * rng.uniform(0.3, 0.8)
        left = build(left_names, child_height if len(left_names) > 1 else 0.0)
        right = build(right_names, child_height if len(right_names) > 1 else 0.0)
        return TreeNode(height, [left, right])

    shuffled = list(labels)
    rng.shuffle(shuffled)
    root = build(shuffled, depth) if n > 1 else TreeNode(0.0, label=labels[0])
    return UltrametricTree(root)


def evolve_sequences(
    tree: UltrametricTree,
    length: int = 500,
    seed: RngLike = None,
) -> Dict[str, str]:
    """Evolve a random root sequence down ``tree``.

    Edge lengths are interpreted as expected substitutions per site under
    Jukes-Cantor: along an edge of length ``t`` each site is hit by at
    least one substitution event with probability ``1 - exp(-t)`` and
    then resampled among the other three bases.  Returns a mapping from
    leaf label to sequence.
    """
    if length < 1:
        raise ValueError("length must be positive")
    rng = _rng(seed)
    root_seq = np.frombuffer(
        random_sequence(length, rng).encode("ascii"), dtype="S1"
    ).copy()
    alphabet = np.frombuffer(DNA_ALPHABET.encode("ascii"), dtype="S1")

    result: Dict[str, str] = {}

    def descend(node: TreeNode, sequence: np.ndarray, parent_height: float) -> None:
        t = parent_height - node.height
        seq = sequence.copy()
        if t > 0:
            p_hit = 1.0 - math.exp(-t)
            hits = rng.random(length) < p_hit
            if hits.any():
                count = int(hits.sum())
                # Replacement uniform over the three *other* bases.
                current = seq[hits]
                offsets = rng.integers(1, 4, size=count)
                current_idx = np.searchsorted(alphabet, current)
                seq[hits] = alphabet[(current_idx + offsets) % 4]
        if node.is_leaf:
            result[node.label or ""] = seq.tobytes().decode("ascii")
            return
        for child in node.children:
            descend(child, seq, node.height)

    root = tree.root
    if root.is_leaf:
        result[root.label or ""] = root_seq.tobytes().decode("ascii")
    else:
        for child in root.children:
            descend(child, root_seq, root.height)
    return result
