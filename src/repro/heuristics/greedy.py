"""Greedy insertion heuristic (sequential-addition MUT).

The project report cites Wu & Tang's O(n) optimal-position result for
inserting one species into an existing evolutionary tree; iterating that
idea gives the classic *sequential addition* heuristic: take the species
in max-min order and graft each onto the position that minimises the
realized cost of the partial tree.  It explores exactly one root-to-leaf
path of the branch-and-bound tree, so it is polynomial
(``O(n^3)``) and usually lands between UPGMM and the optimum -- a useful
third baseline next to UPGMA/UPGMM.
"""

from __future__ import annotations

from repro.bnb.bounds import half_matrix
from repro.bnb.topology import PartialTopology
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin
from repro.tree.ultrametric import UltrametricTree

__all__ = ["greedy_insertion"]


def greedy_insertion(
    matrix: DistanceMatrix, *, use_maxmin: bool = True
) -> UltrametricTree:
    """Build an ultrametric tree by cheapest-position insertion.

    The result always dominates the matrix (each partial tree is a
    minimal feasible realization) but is generally not optimal: greedy
    choices cannot be undone.
    """
    n = matrix.n
    if n == 0:
        raise ValueError("cannot build a tree over zero species")
    if use_maxmin and n > 2:
        ordered, _ = apply_maxmin(matrix)
    else:
        ordered = matrix
    labels = ordered.labels
    if n == 1:
        return UltrametricTree.leaf(labels[0])
    if n == 2:
        return UltrametricTree.join(
            UltrametricTree.leaf(labels[0]),
            UltrametricTree.leaf(labels[1]),
            ordered.values[0, 1] / 2.0,
        )

    topology = PartialTopology.initial(half_matrix(ordered))
    while not topology.is_complete:
        best = None
        for position in range(len(topology.parent)):
            child = topology.child(position)
            if best is None or child.cost < best.cost - 1e-15:
                best = child
        assert best is not None
        topology = best
    return topology.to_tree(labels)
