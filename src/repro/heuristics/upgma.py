"""UPGMA and UPGMM agglomerative tree construction.

Both are hierarchical clusterings of the distance matrix: repeatedly merge
the two closest clusters at height ``distance / 2`` until one cluster
remains.  They differ in the *linkage* -- how the distance between
clusters is defined:

* **UPGMA** (arithmetic mean, size-weighted): the biologists' staple; its
  tree may *underestimate* some pairwise distances, so it is not feasible
  for the MUT constraint.
* **UPGMM** (maximum linkage): the papers' modification.  Because the
  merge height is half the *largest* distance between the clusters, every
  induced distance ``d_T(i, j) = 2 h(LCA)`` is at least ``M[i, j]`` --
  the tree is a feasible (generally non-optimal) ultrametric tree, which
  is exactly what Algorithm BBU Step 3 needs for its initial upper bound.

Both linkages are *reducible*, so merge heights never decrease and the
output is a valid ultrametric tree.

Two implementations are provided:

* :func:`agglomerative_tree` -- the production path.  It keeps one
  ``(n, n)`` float64 working matrix, retires merged clusters in place by
  masking their row/column with ``+inf``, finds the closest pair with a
  vectorised ``argmin`` over the whole matrix, and applies the
  Lance-Williams linkage update to a full row at a time.  Cost is
  O(n^2) NumPy work per merge (O(n^3) total, but entirely inside C
  loops) with **zero** per-merge allocations of a fresh matrix.
* :func:`agglomerative_tree_reference` -- the original pure-Python
  implementation (O(n^3) scalar loops plus a grown ``(n+k, n+k)`` matrix
  copy per merge).  Kept verbatim for differential testing; the property
  suite asserts both produce trees of identical cost.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = [
    "upgma",
    "upgmm",
    "single_linkage",
    "agglomerative_tree",
    "agglomerative_tree_reference",
]

Linkage = Callable[[float, float, int, int], float]
#: Row-at-a-time linkage: maps two full distance rows (and cluster sizes)
#: onto the merged cluster's row.  ``inf`` entries (retired clusters and
#: the diagonal) must map to ``inf``, which all three built-ins do.
VectorLinkage = Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]


def _average_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return (d_ak * size_a + d_bk * size_b) / (size_a + size_b)


def _maximum_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return max(d_ak, d_bk)


def _minimum_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return min(d_ak, d_bk)


def _average_linkage_rows(
    row_a: np.ndarray, row_b: np.ndarray, size_a: int, size_b: int
) -> np.ndarray:
    return (row_a * size_a + row_b * size_b) / (size_a + size_b)


#: Vectorised counterparts of the scalar built-ins; unknown (user-supplied)
#: linkages fall back to an element-wise loop over live clusters, which is
#: still O(n) per merge instead of the reference's O(n^2).
_VECTOR_LINKAGES: Dict[Linkage, VectorLinkage] = {
    _average_linkage: _average_linkage_rows,
    _maximum_linkage: lambda a, b, sa, sb: np.maximum(a, b),
    _minimum_linkage: lambda a, b, sa, sb: np.minimum(a, b),
}


def agglomerative_tree(matrix: DistanceMatrix, linkage: Linkage) -> UltrametricTree:
    """Generic agglomerative construction with a Lance-Williams linkage.

    ``linkage(d_ak, d_bk, |A|, |B|)`` maps the distances of two merged
    clusters ``A``, ``B`` to a third cluster ``K`` onto the distance of
    ``A union B`` to ``K``.

    This is the vectorised production implementation: a single in-place
    working matrix with ``inf``-masked retired slots and an ``argmin``
    nearest-pair scan.  For the three built-in linkages the row update is
    a NumPy expression; custom scalar linkages are applied element-wise
    over the live clusters only.  See
    :func:`agglomerative_tree_reference` for the original loop the
    differential tests compare against.
    """
    n = matrix.n
    if n == 0:
        raise ValueError("cannot build a tree over zero species")
    if n == 1:
        return UltrametricTree.leaf(matrix.labels[0])

    vector_linkage = _VECTOR_LINKAGES.get(linkage)

    # One (n, n) working matrix for the whole run.  Slot i holds the
    # distances of live cluster i; a merged-away cluster's row/column is
    # masked to +inf so the global argmin never selects it.
    dist = matrix.values.astype(float, copy=True)
    np.fill_diagonal(dist, np.inf)
    alive = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    slot_nodes: List[TreeNode] = [
        TreeNode(0.0, label=label) for label in matrix.labels
    ]

    for _ in range(n - 1):
        # Closest live pair: argmin over the masked matrix (ties resolve
        # to the smallest row-major index, deterministically).
        flat = int(np.argmin(dist))
        a, b = divmod(flat, n)
        if a > b:
            a, b = b, a
        d = float(dist[a, b])
        height = d / 2.0
        node_a, node_b = slot_nodes[a], slot_nodes[b]
        merged = TreeNode(
            max(height, node_a.height, node_b.height), [node_a, node_b]
        )

        # Lance-Williams update: cluster A union B reuses slot a.
        if vector_linkage is not None:
            new_row = vector_linkage(
                dist[a], dist[b], int(sizes[a]), int(sizes[b])
            )
        else:
            new_row = np.full(n, np.inf)
            row_a, row_b = dist[a], dist[b]
            sa, sb = int(sizes[a]), int(sizes[b])
            for k in np.flatnonzero(alive):
                if k == a or k == b:
                    continue
                new_row[k] = linkage(float(row_a[k]), float(row_b[k]), sa, sb)
        new_row[a] = np.inf
        new_row[b] = np.inf
        dist[a, :] = new_row
        dist[:, a] = new_row
        dist[b, :] = np.inf
        dist[:, b] = np.inf
        sizes[a] += sizes[b]
        alive[b] = False
        slot_nodes[a] = merged

    root_slot = int(np.flatnonzero(alive)[0])
    return UltrametricTree(slot_nodes[root_slot])


def agglomerative_tree_reference(
    matrix: DistanceMatrix, linkage: Linkage
) -> UltrametricTree:
    """The original pure-Python agglomerative loop (differential oracle).

    O(n^3) scalar pair scans plus a freshly grown ``(n+k, n+k)`` matrix
    per merge.  Retained unchanged so property tests can assert the
    vectorised :func:`agglomerative_tree` produces trees of identical
    cost; do not use it on large inputs.
    """
    n = matrix.n
    if n == 0:
        raise ValueError("cannot build a tree over zero species")
    if n == 1:
        return UltrametricTree.leaf(matrix.labels[0])

    # Working distance matrix between live clusters.
    dist = matrix.values.astype(float).copy()
    active = list(range(n))
    nodes: List[TreeNode] = [
        TreeNode(0.0, label=label) for label in matrix.labels
    ]
    sizes = [1] * n

    while len(active) > 1:
        # Closest pair among active clusters (deterministic tie-break).
        best = None
        for ai in range(len(active)):
            for bi in range(ai + 1, len(active)):
                a, b = active[ai], active[bi]
                d = dist[a, b]
                if best is None or d < best[0] - 1e-15:
                    best = (d, a, b)
        assert best is not None
        d, a, b = best
        height = d / 2.0
        merged = TreeNode(max(height, nodes[a].height, nodes[b].height),
                          [nodes[a], nodes[b]])
        nodes.append(merged)
        sizes.append(sizes[a] + sizes[b])
        # Grow the working matrix by one row/column for the new cluster.
        new_index = dist.shape[0]
        grown = np.zeros((new_index + 1, new_index + 1))
        grown[:new_index, :new_index] = dist
        for k in active:
            if k in (a, b):
                continue
            d_new = linkage(float(dist[a, k]), float(dist[b, k]), sizes[a], sizes[b])
            grown[new_index, k] = grown[k, new_index] = d_new
        dist = grown
        active = [k for k in active if k not in (a, b)] + [new_index]

    return UltrametricTree(nodes[active[0]])


def upgma(matrix: DistanceMatrix) -> UltrametricTree:
    """Unweighted Pair Group Method with Arithmetic mean."""
    return agglomerative_tree(matrix, _average_linkage)


def upgmm(matrix: DistanceMatrix) -> UltrametricTree:
    """Unweighted Pair Group Method with *Maximum* (the papers' UPGMM).

    The returned tree always satisfies ``d_T(i, j) >= M[i, j]`` for a
    metric input, making its cost a valid upper bound on the minimum
    ultrametric tree cost.  Runs on the vectorised
    :func:`agglomerative_tree` path -- this function is called once per
    branch-and-bound solve (BBU Step 3) and once per compact-set
    subproblem, so it sits directly on the construction hot path.
    """
    return agglomerative_tree(matrix, _maximum_linkage)


def single_linkage(matrix: DistanceMatrix) -> UltrametricTree:
    """Minimum-linkage variant (the *subdominant* ultrametric).

    Included for the reduction ablation: its induced distances are the
    largest ultrametric *below* ``M``, mirroring how the *minimum* reduced
    matrices behave in the compact-set pipeline.
    """
    return agglomerative_tree(matrix, _minimum_linkage)
