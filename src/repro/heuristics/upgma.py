"""UPGMA and UPGMM agglomerative tree construction.

Both are hierarchical clusterings of the distance matrix: repeatedly merge
the two closest clusters at height ``distance / 2`` until one cluster
remains.  They differ in the *linkage* -- how the distance between
clusters is defined:

* **UPGMA** (arithmetic mean, size-weighted): the biologists' staple; its
  tree may *underestimate* some pairwise distances, so it is not feasible
  for the MUT constraint.
* **UPGMM** (maximum linkage): the papers' modification.  Because the
  merge height is half the *largest* distance between the clusters, every
  induced distance ``d_T(i, j) = 2 h(LCA)`` is at least ``M[i, j]`` --
  the tree is a feasible (generally non-optimal) ultrametric tree, which
  is exactly what Algorithm BBU Step 3 needs for its initial upper bound.

Both linkages are *reducible*, so merge heights never decrease and the
output is a valid ultrametric tree.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import TreeNode, UltrametricTree

__all__ = ["upgma", "upgmm", "single_linkage", "agglomerative_tree"]

Linkage = Callable[[float, float, int, int], float]


def _average_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return (d_ak * size_a + d_bk * size_b) / (size_a + size_b)


def _maximum_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return max(d_ak, d_bk)


def _minimum_linkage(d_ak: float, d_bk: float, size_a: int, size_b: int) -> float:
    return min(d_ak, d_bk)


def agglomerative_tree(matrix: DistanceMatrix, linkage: Linkage) -> UltrametricTree:
    """Generic agglomerative construction with a Lance-Williams linkage.

    ``linkage(d_ak, d_bk, |A|, |B|)`` maps the distances of two merged
    clusters ``A``, ``B`` to a third cluster ``K`` onto the distance of
    ``A union B`` to ``K``.
    """
    n = matrix.n
    if n == 0:
        raise ValueError("cannot build a tree over zero species")
    if n == 1:
        return UltrametricTree.leaf(matrix.labels[0])

    # Working distance matrix between live clusters.
    dist = matrix.values.astype(float).copy()
    active = list(range(n))
    nodes: List[TreeNode] = [
        TreeNode(0.0, label=label) for label in matrix.labels
    ]
    sizes = [1] * n

    while len(active) > 1:
        # Closest pair among active clusters (deterministic tie-break).
        best = None
        for ai in range(len(active)):
            for bi in range(ai + 1, len(active)):
                a, b = active[ai], active[bi]
                d = dist[a, b]
                if best is None or d < best[0] - 1e-15:
                    best = (d, a, b)
        assert best is not None
        d, a, b = best
        height = d / 2.0
        merged = TreeNode(max(height, nodes[a].height, nodes[b].height),
                          [nodes[a], nodes[b]])
        nodes.append(merged)
        sizes.append(sizes[a] + sizes[b])
        # Grow the working matrix by one row/column for the new cluster.
        new_index = dist.shape[0]
        grown = np.zeros((new_index + 1, new_index + 1))
        grown[:new_index, :new_index] = dist
        for k in active:
            if k in (a, b):
                continue
            d_new = linkage(float(dist[a, k]), float(dist[b, k]), sizes[a], sizes[b])
            grown[new_index, k] = grown[k, new_index] = d_new
        dist = grown
        active = [k for k in active if k not in (a, b)] + [new_index]

    return UltrametricTree(nodes[active[0]])


def upgma(matrix: DistanceMatrix) -> UltrametricTree:
    """Unweighted Pair Group Method with Arithmetic mean."""
    return agglomerative_tree(matrix, _average_linkage)


def upgmm(matrix: DistanceMatrix) -> UltrametricTree:
    """Unweighted Pair Group Method with *Maximum* (the papers' UPGMM).

    The returned tree always satisfies ``d_T(i, j) >= M[i, j]`` for a
    metric input, making its cost a valid upper bound on the minimum
    ultrametric tree cost.
    """
    return agglomerative_tree(matrix, _maximum_linkage)


def single_linkage(matrix: DistanceMatrix) -> UltrametricTree:
    """Minimum-linkage variant (the *subdominant* ultrametric).

    Included for the reduction ablation: its induced distances are the
    largest ultrametric *below* ``M``, mirroring how the *minimum* reduced
    matrices behave in the compact-set pipeline.
    """
    return agglomerative_tree(matrix, _minimum_linkage)
