"""Neighbor-Joining baseline (Saitou & Nei 1987).

Both papers cite NJ as the popular heuristic biologists use when an exact
tree is out of reach.  NJ produces an *additive* (unrooted, generally
non-ultrametric) tree, so it gets its own light-weight tree type rather
than forcing it into :class:`~repro.tree.ultrametric.UltrametricTree`.
The benchmarks use its total edge weight as a context line next to the
ultrametric costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["AdditiveTree", "neighbor_joining"]


class AdditiveTree:
    """An unrooted, edge-weighted tree produced by Neighbor-Joining.

    Stored as an adjacency map ``node -> [(neighbour, branch length)]``.
    Leaf nodes are species labels; internal nodes are integers.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[object, List[Tuple[object, float]]] = {}

    def add_edge(self, a: object, b: object, length: float) -> None:
        if length < -1e-9:
            length = 0.0  # NJ can produce tiny negative lengths; clamp
        self._adjacency.setdefault(a, []).append((b, length))
        self._adjacency.setdefault(b, []).append((a, length))

    @property
    def nodes(self) -> List[object]:
        return list(self._adjacency)

    @property
    def leaves(self) -> List[str]:
        return sorted(
            node for node, nbrs in self._adjacency.items()
            if isinstance(node, str) and len(nbrs) == 1
        )

    def cost(self) -> float:
        """Total branch length of the tree."""
        total = 0.0
        seen = set()
        for a, nbrs in self._adjacency.items():
            for b, length in nbrs:
                key = (id(a), id(b)) if id(a) < id(b) else (id(b), id(a))
                if key not in seen:
                    seen.add(key)
                    total += length
        return total

    def distance(self, a: str, b: str) -> float:
        """Path length between two leaves."""
        if a == b:
            return 0.0
        stack: List[Tuple[object, Optional[object], float]] = [(a, None, 0.0)]
        while stack:
            node, parent, dist = stack.pop()
            if node == b:
                return dist
            for nxt, length in self._adjacency[node]:
                if nxt != parent:
                    stack.append((nxt, node, dist + length))
        raise KeyError(f"no path between {a!r} and {b!r}")

    def newick(self) -> str:
        """Serialize rooted arbitrarily at the first internal node."""
        internal = [n for n in self._adjacency if not isinstance(n, str)]
        root = internal[0] if internal else next(iter(self._adjacency))

        def render(node: object, parent: Optional[object]) -> str:
            children = [
                (nxt, length)
                for nxt, length in self._adjacency[node]
                if nxt != parent
            ]
            if not children:
                return str(node)
            inner = ",".join(
                f"{render(nxt, node)}:{length:.6f}" for nxt, length in children
            )
            name = node if isinstance(node, str) else ""
            return f"({inner}){name}"

        return render(root, None) + ";"


def neighbor_joining(matrix: DistanceMatrix) -> AdditiveTree:
    """Classic Neighbor-Joining over ``matrix``.

    Follows Saitou & Nei with Studier-Keppler Q-criterion; deterministic
    tie-breaking on indices.
    """
    n = matrix.n
    tree = AdditiveTree()
    if n == 1:
        tree._adjacency[matrix.labels[0]] = []
        return tree
    if n == 2:
        tree.add_edge(matrix.labels[0], matrix.labels[1], matrix.values[0, 1])
        return tree

    dist = matrix.values.astype(float).copy()
    taxa: List[object] = list(matrix.labels)
    next_internal = 0

    while len(taxa) > 3:
        m = len(taxa)
        row_sums = dist.sum(axis=1)
        q = (m - 2) * dist - row_sums[:, None] - row_sums[None, :]
        np.fill_diagonal(q, np.inf)
        flat = int(np.argmin(q))
        i, j = divmod(flat, m)
        if i > j:
            i, j = j, i
        delta = (row_sums[i] - row_sums[j]) / (m - 2)
        limb_i = 0.5 * (dist[i, j] + delta)
        limb_j = 0.5 * (dist[i, j] - delta)
        new_node = next_internal
        next_internal += 1
        tree.add_edge(taxa[i], new_node, limb_i)
        tree.add_edge(taxa[j], new_node, limb_j)
        # Distances from the new node to the remaining taxa.
        keep = [k for k in range(m) if k not in (i, j)]
        new_row = 0.5 * (dist[i, keep] + dist[j, keep] - dist[i, j])
        reduced = np.zeros((m - 1, m - 1))
        reduced[: m - 2, : m - 2] = dist[np.ix_(keep, keep)]
        reduced[m - 2, : m - 2] = new_row
        reduced[: m - 2, m - 2] = new_row
        dist = reduced
        taxa = [taxa[k] for k in keep] + [new_node]

    # Join the final three taxa on a central node.
    center = next_internal
    d01, d02, d12 = dist[0, 1], dist[0, 2], dist[1, 2]
    tree.add_edge(taxa[0], center, 0.5 * (d01 + d02 - d12))
    tree.add_edge(taxa[1], center, 0.5 * (d01 + d12 - d02))
    tree.add_edge(taxa[2], center, 0.5 * (d02 + d12 - d01))
    return tree
