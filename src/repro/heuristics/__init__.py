"""Heuristic tree builders.

* :func:`~repro.heuristics.upgma.upgma` -- the classic Unweighted Pair
  Group Method with Arithmetic mean;
* :func:`~repro.heuristics.upgma.upgmm` -- the *maximum*-linkage variant
  the papers call UPGMM, whose output always dominates the input matrix
  and therefore seeds the branch-and-bound upper bound (BBU Step 3);
* :func:`~repro.heuristics.nj.neighbor_joining` -- the Neighbor-Joining
  baseline mentioned in both introductions.
"""

from repro.heuristics.upgma import (
    upgma,
    upgmm,
    single_linkage,
    agglomerative_tree,
    agglomerative_tree_reference,
)
from repro.heuristics.nj import neighbor_joining, AdditiveTree
from repro.heuristics.greedy import greedy_insertion

__all__ = [
    "upgma",
    "upgmm",
    "single_linkage",
    "agglomerative_tree",
    "agglomerative_tree_reference",
    "neighbor_joining",
    "AdditiveTree",
    "greedy_insertion",
]
