"""Real-sequence ingestion: staged FASTA -> QC -> distance -> tree.

The synthetic workloads elsewhere in the repository trust their own
inputs; uploads from real users cannot be trusted, and the paper's
compact-set construction assumes a *metric* distance matrix besides.
This package is the auditable path between the two: a five-stage
pipeline (parse, qc, distance, repair, tree) that QC-gates raw FASTA,
measures how far the metric repair moved the data, and only then lets a
matrix near the solvers.  Every run writes a JSON manifest
(:mod:`repro.ingest.manifest`) that doubles as the resume token for
re-runs.

Surfaces: ``repro-mut ingest`` on the CLI and ``POST /ingest`` on the
service (:mod:`repro.service.server`).
"""

from repro.ingest.manifest import (
    MANIFEST_VERSION,
    STAGE_NAMES,
    IngestRejection,
    Manifest,
    StageRecord,
    sha256_text,
    strip_volatile,
)
from repro.ingest.pipeline import IngestResult, run_pipeline
from repro.ingest.stages import (
    MIN_SEQUENCES,
    QCConfig,
    QCVerdict,
    StageFailure,
    stage_distance,
    stage_parse,
    stage_qc,
    stage_repair,
)

__all__ = [
    "MANIFEST_VERSION",
    "MIN_SEQUENCES",
    "STAGE_NAMES",
    "IngestRejection",
    "IngestResult",
    "Manifest",
    "QCConfig",
    "QCVerdict",
    "StageFailure",
    "StageRecord",
    "run_pipeline",
    "sha256_text",
    "stage_distance",
    "stage_parse",
    "stage_qc",
    "stage_repair",
    "strip_volatile",
]
