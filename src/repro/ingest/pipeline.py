"""The staged ingestion pipeline: FASTA -> QC -> distance -> repair -> tree.

:func:`run_pipeline` strings the five stages of
:mod:`repro.ingest.stages` together and owns everything around them:

* **observability** -- each executed stage runs inside an
  ``ingest.stage`` span (schema-v1, trace-id stamped) with
  ``ingest.records`` / ``ingest.rejections`` counters, and its latency
  lands in the ``ingest.stage.seconds`` histogram;
* **the manifest** -- every stage appends a
  :class:`~repro.ingest.manifest.StageRecord` (status, duration,
  counters, stage detail, resume artifacts), and the manifest is saved
  after every stage transition, so a crash mid-run still leaves a
  diagnosable, resumable document;
* **resume** -- when ``manifest_path`` already holds a manifest for the
  same input digest and configuration, completed stages are skipped
  (their artifacts restored, an ``ingest.stage.skipped`` counter
  emitted) and work restarts at the first incomplete stage;
* **failure policy** -- a :class:`~repro.ingest.stages.StageFailure`
  becomes a failed stage record plus structured rejections in the
  manifest, never an escaping traceback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.ingest.manifest import (
    Manifest,
    STAGE_NAMES,
    StageRecord,
    sha256_text,
)
from repro.ingest.stages import (
    QCConfig,
    StageFailure,
    stage_distance,
    stage_parse,
    stage_qc,
    stage_repair,
)
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.metrics import MetricsRegistry, as_metrics
from repro.obs.recorder import as_recorder

__all__ = ["IngestResult", "run_pipeline"]


@dataclass
class IngestResult:
    """What :func:`run_pipeline` hands back.

    ``manifest`` is always populated (and already saved when a
    ``manifest_path`` was given).  ``matrix`` is the repaired metric
    matrix once stage 3 completed; ``result`` the
    :class:`~repro.core.api.ConstructionResult` once stage 4 solved
    locally (``None`` when the solve was delegated via ``submit``).
    """

    manifest: Manifest
    matrix: Optional[DistanceMatrix] = None
    result: Optional[object] = None

    @property
    def status(self) -> str:
        return self.manifest.status

    @property
    def ok(self) -> bool:
        return self.manifest.status == "ok"

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 only for a fully clean run, 1 otherwise.

        A lenient run that built a tree but dropped records exits 1 too
        -- the caller asked for everything and did not get it.
        """
        return 0 if self.ok else 1


def _matrix_to_artifact(matrix: DistanceMatrix) -> Dict[str, object]:
    return {
        "labels": list(matrix.labels),
        "values": [[float(v) for v in row] for row in matrix.values],
    }


def _matrix_from_artifact(artifact: Dict[str, object]) -> DistanceMatrix:
    return DistanceMatrix(
        np.asarray(artifact["values"], dtype=float),
        list(artifact["labels"]),
        validate=False,
    )


def run_pipeline(
    source: Union[str, Path],
    *,
    text: bool = False,
    distance: str = "p",
    tree_method: str = "compact",
    mode: str = "strict",
    qc: Optional[QCConfig] = None,
    scale: float = 1.0,
    verify: bool = False,
    manifest_path: Optional[Union[str, Path]] = None,
    recorder=None,
    metrics: Optional[MetricsRegistry] = None,
    cache=None,
    cluster=None,
    solver_options: Optional[Dict[str, object]] = None,
    submit: Optional[Callable[[DistanceMatrix], Dict[str, object]]] = None,
) -> IngestResult:
    """Run the full ingestion pipeline over one FASTA input.

    ``source`` is a path unless ``text=True`` (then it is the FASTA
    content itself -- the service endpoint passes uploads this way).
    ``mode`` is ``"strict"`` (any problem fails its stage) or
    ``"lenient"`` (damaged/failing records are dropped, recorded as
    rejections, and the run continues while >= 3 records survive).

    Stage 4 either solves locally through
    :func:`repro.core.api.construct_tree_cached` (honouring ``cache``,
    ``cluster``, ``solver_options`` and ``verify``) or, when ``submit``
    is given, hands the repaired matrix to the caller (the service
    scheduler) and records whatever JSON-safe detail ``submit`` returns.

    Returns an :class:`IngestResult`; the manifest inside is saved to
    ``manifest_path`` after every stage when a path is given.
    """
    if mode not in ("strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', not {mode!r}")
    from repro.sequences.distance import resolve_method
    from repro.version import engine_fingerprint

    qc = qc or QCConfig()
    rec = as_recorder(recorder)
    registry = as_metrics(metrics)
    distance = resolve_method(distance)

    if text:
        raw = str(source)
        input_path = "<upload>"
    else:
        raw = Path(source).read_text()
        input_path = str(source)
    input_sha = sha256_text(raw)

    config: Dict[str, object] = {
        "distance": distance,
        "tree_method": tree_method,
        "mode": mode,
        "scale": scale,
        "qc": qc.to_json(),
        "verify": verify,
    }
    manifest = Manifest(
        input={
            "path": input_path,
            "sha256": input_sha,
            "bytes": len(raw.encode("utf-8")),
        },
        engine=engine_fingerprint(),
        config=config,
        status="failed",
    )

    # ------------------------------------------------------------------
    # Resume: adopt completed stages from a prior manifest for the same
    # input + configuration.
    # ------------------------------------------------------------------
    resume_from = 0
    if manifest_path is not None and Path(manifest_path).exists():
        try:
            prior = Manifest.load(manifest_path)
        except (ValueError, KeyError, OSError):
            prior = None  # corrupt manifest: start fresh
        if prior is not None and prior.matches(input_sha, config):
            resume_from = prior.completed_stages()
            manifest.stages = prior.stages[:resume_from]
            manifest.rejections = [
                r for r in prior.rejections if r.stage < resume_from
            ]
            manifest.resumed_from = resume_from
            if resume_from == len(STAGE_NAMES):
                manifest.result = prior.result
            for index in range(resume_from):
                rec.counter(
                    "ingest.stage.skipped",
                    stage=STAGE_NAMES[index],
                    index=index,
                )

    def save() -> None:
        if manifest_path is not None:
            manifest.save(manifest_path)

    def run_stage(index: int, fn, **span_attrs):
        """Execute stage ``fn`` inside its span; bookkeep the record."""
        name = STAGE_NAMES[index]
        t0 = time.perf_counter()
        record = StageRecord(index=index, name=name, status="completed")
        try:
            with rec.span("ingest.stage", stage=name, index=index, **span_attrs):
                out = fn(record)
        except StageFailure as failure:
            record.status = "failed"
            record.duration_seconds = time.perf_counter() - t0
            record.counters["rejections"] = len(failure.rejections)
            manifest.stages.append(record)
            manifest.rejections.extend(failure.rejections)
            manifest.status = "failed"
            manifest.failed_stage = index
            rec.counter(
                "ingest.rejections",
                value=len(failure.rejections),
                stage=name,
            )
            save()
            raise
        finally:
            registry.histogram(
                "ingest.stage.seconds",
                "Ingestion stage latency, per stage.",
                labelnames=("stage",),
            ).observe(time.perf_counter() - t0, stage=name)
        record.duration_seconds = time.perf_counter() - t0
        manifest.stages.append(record)
        if record.counters.get("rejections"):
            rec.counter(
                "ingest.rejections",
                value=record.counters["rejections"],
                stage=name,
            )
        save()
        return out

    try:
        # -------------------------------------------------- 0: parse --
        if resume_from > 0:
            parse_art = manifest.stages[0].artifacts
            records = None  # only needed if stage 1 must run
        else:
            def do_parse(record: StageRecord):
                parsed, rejections = stage_parse(raw, text=True, mode=mode)
                manifest.rejections.extend(rejections)
                record.counters = {
                    "records": len(parsed),
                    "rejections": len(rejections),
                }
                record.artifacts = {
                    "records": [
                        {
                            "name": r.name,
                            "sequence": r.sequence,
                            "description": r.description,
                            "lineno": r.lineno,
                        }
                        for r in parsed
                    ]
                }
                rec.counter("ingest.records", value=len(parsed), stage="parse")
                return parsed

            records = run_stage(0, do_parse)
            parse_art = manifest.stages[0].artifacts

        # ----------------------------------------------------- 1: qc --
        if resume_from > 1:
            qc_art = manifest.stages[1].artifacts
            sequences = dict(qc_art["sequences"])
            alphabet = str(qc_art["alphabet"])
        else:
            if records is None:
                from repro.sequences.fasta import FastaRecord

                records = [
                    FastaRecord(
                        name=r["name"],
                        sequence=r["sequence"],
                        description=r.get("description", ""),
                        lineno=r.get("lineno", 0),
                    )
                    for r in parse_art["records"]
                ]

            def do_qc(record: StageRecord):
                survivors, kind, verdicts, rejections = stage_qc(
                    records, qc, mode=mode
                )
                manifest.rejections.extend(rejections)
                record.counters = {
                    "records": len(records),
                    "passed": len(survivors),
                    "rejections": len(rejections),
                }
                record.detail = {
                    "alphabet": kind,
                    "verdicts": [v.to_json() for v in verdicts],
                }
                record.artifacts = {
                    "sequences": survivors,
                    "alphabet": kind,
                }
                rec.counter(
                    "ingest.records", value=len(survivors), stage="qc"
                )
                return survivors, kind

            sequences, alphabet = run_stage(1, do_qc)

        # ----------------------------------------------- 2: distance --
        if resume_from > 2:
            raw_matrix = _matrix_from_artifact(manifest.stages[2].artifacts["matrix"])
        else:
            def do_distance(record: StageRecord):
                matrix, detail = stage_distance(
                    sequences,
                    method=distance,
                    alphabet=alphabet,
                    scale=scale,
                )
                record.detail = detail
                record.counters = {
                    "pairs": matrix.n * (matrix.n - 1) // 2,
                    "saturated": len(detail["saturated_pairs"]),
                }
                record.artifacts = {"matrix": _matrix_to_artifact(matrix)}
                rec.counter(
                    "ingest.saturated_pairs",
                    value=len(detail["saturated_pairs"]),
                    stage="distance",
                )
                return matrix

            raw_matrix = run_stage(2, do_distance, method=distance)

        # ------------------------------------------------- 3: repair --
        if resume_from > 3:
            repaired = _matrix_from_artifact(
                manifest.stages[3].artifacts["matrix"]
            )
        else:
            def do_repair(record: StageRecord):
                fixed, report = stage_repair(raw_matrix)
                record.detail = report.to_json()
                record.counters = {"entries_changed": report.entries_changed}
                record.artifacts = {
                    "matrix": _matrix_to_artifact(fixed),
                    "matrix_digest": fixed.digest(),
                }
                return fixed

            repaired = run_stage(3, do_repair)

        # --------------------------------------------------- 4: tree --
        result = None
        if resume_from > 4:
            pass  # fully resumed; manifest.result already restored
        elif submit is not None:
            def do_submit(record: StageRecord):
                detail = submit(repaired)
                record.detail = dict(detail)
                manifest.result = dict(detail)
                return None

            run_stage(4, do_submit, method=tree_method)
        else:
            def do_tree(record: StageRecord):
                from repro.core.api import construct_tree_cached
                from repro.service.cache import ResultCache
                from repro.tree.newick import to_newick

                built = construct_tree_cached(
                    repaired,
                    tree_method,
                    cache=cache if cache is not None else ResultCache(),
                    cluster=cluster,
                    recorder=recorder,
                    metrics=registry,
                    verify=verify,
                    **(solver_options or {}),
                )
                record.detail = {
                    "method": built.method,
                    "cost": float(built.cost),
                    "verified_ok": built.verified_ok,
                }
                manifest.result = {
                    "method": built.method,
                    "cost": float(built.cost),
                    "newick": to_newick(built.tree),
                    "verified_ok": built.verified_ok,
                    "matrix_digest": repaired.digest(),
                }
                return built

            result = run_stage(4, do_tree, method=tree_method)

        manifest.status = "partial" if manifest.rejections else "ok"
        manifest.failed_stage = None
        save()
        registry.counter(
            "ingest.runs", "Completed ingestion pipeline runs."
        ).inc()
        return IngestResult(manifest=manifest, matrix=repaired, result=result)
    except StageFailure:
        registry.counter(
            "ingest.failures", "Ingestion pipeline runs that failed QC."
        ).inc()
        return IngestResult(manifest=manifest)
