"""The five ingestion stages, as pure functions.

Each stage takes the previous stage's output and either returns its
result or raises :class:`StageFailure` carrying structured
:class:`~repro.ingest.manifest.IngestRejection` records -- never a bare
traceback.  The orchestration (spans, timing, manifest bookkeeping,
resume) lives in :mod:`repro.ingest.pipeline`; keeping the stages pure
makes them unit-testable one at a time.

Stage map (indices are :data:`repro.ingest.manifest.STAGE_NAMES`):

====  ==========  ======================================================
 0    parse       FASTA -> records (strict: any structural issue fails;
                  lenient: damaged records dropped)
 1    qc          records -> clean ``{id: sequence}`` (length bounds,
                  ambiguity fraction, duplicates, alphabet consensus)
 2    distance    sequences -> raw :class:`DistanceMatrix` + saturation
                  flags (p / jukes-cantor / edit)
 3    repair      raw matrix -> metric matrix + perturbation report
 4    tree        metric matrix -> verified tree (or a scheduled job)
====  ==========  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ingest.manifest import IngestRejection
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.repair import RepairReport, repair_with_report
from repro.sequences.alphabet import (
    ambiguity_fraction,
    classify_sequence,
    detect_alphabet,
)
from repro.sequences.distance import (
    SATURATION_THRESHOLD,
    distance_matrix_from_sequences,
    resolve_method,
    saturated_pairs,
)
from repro.sequences.fasta import FastaRecord, parse_fasta

__all__ = [
    "MIN_SEQUENCES",
    "QCConfig",
    "QCVerdict",
    "StageFailure",
    "stage_parse",
    "stage_qc",
    "stage_distance",
    "stage_repair",
]

#: A tree over fewer than three species is degenerate; the QC stage
#: refuses batches that small (before or after lenient dropping).
MIN_SEQUENCES = 3


class StageFailure(Exception):
    """A stage refused to continue; carries the rejection records."""

    def __init__(self, stage: int, rejections: List[IngestRejection]):
        self.stage = stage
        self.rejections = rejections
        first = rejections[0] if rejections else None
        detail = first.detail if first else "stage failed"
        super().__init__(f"stage {stage} failed: {detail}")


@dataclass
class QCConfig:
    """The QC gates, all tunable from the CLI / service surface.

    ``max_ambiguity`` is the tolerated fraction of ambiguity codes (or
    gaps) per sequence -- the default 0.1 passes typical cleaned reads
    and fails N-smeared ones.  ``min_length``/``max_length`` bound the
    residue count; ``max_length=None`` means unbounded.
    """

    min_length: int = 1
    max_length: Optional[int] = None
    max_ambiguity: float = 0.1

    def to_json(self) -> Dict[str, object]:
        return {
            "min_length": self.min_length,
            "max_length": self.max_length,
            "max_ambiguity": self.max_ambiguity,
        }


@dataclass
class QCVerdict:
    """What QC decided about one record (every record gets one)."""

    record: str
    lineno: int
    length: int
    alphabet: str
    ambiguity: float
    verdict: str = "pass"  # "pass" | "fail"
    codes: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "record": self.record,
            "lineno": self.lineno,
            "length": self.length,
            "alphabet": self.alphabet,
            "ambiguity": round(self.ambiguity, 6),
            "verdict": self.verdict,
            "codes": list(self.codes),
        }


# ----------------------------------------------------------------------
# Stage 0: parse
# ----------------------------------------------------------------------
def stage_parse(
    source, *, text: bool = False, mode: str = "strict"
) -> Tuple[List[FastaRecord], List[IngestRejection]]:
    """Parse FASTA into records; structural damage is a stage-0 matter.

    Strict mode fails on any structural issue (empty headers, data
    before the first header, a truncated final record, an empty file).
    Lenient mode drops the damaged pieces and carries on -- except for
    ``no-records``, which is fatal in both modes (there is nothing to
    continue with).  Returns ``(records, rejections)`` where
    ``rejections`` are the lenient-mode drops.
    """
    parse = parse_fasta(source, strict=False, text=text)
    rejections = [
        IngestRejection(
            stage=0,
            code=issue.code,
            detail=issue.detail,
            record=issue.record,
            lineno=issue.lineno,
        )
        for issue in parse.issues
    ]
    fatal = [r for r in rejections if r.code == "no-records"]
    if fatal:
        raise StageFailure(0, rejections)
    if mode == "strict" and rejections:
        raise StageFailure(0, rejections)
    # Lenient: drop the truncated final record (it has no data) and keep
    # the rest; empty-header / data-before-header content was already
    # skipped by the parser.
    truncated = {r.record for r in rejections if r.code == "truncated-record"}
    records = [r for r in parse.records if r.sequence or r.name not in truncated]
    return records, rejections


# ----------------------------------------------------------------------
# Stage 1: qc
# ----------------------------------------------------------------------
def stage_qc(
    records: List[FastaRecord],
    config: QCConfig,
    *,
    mode: str = "strict",
) -> Tuple[Dict[str, str], str, List[QCVerdict], List[IngestRejection]]:
    """Gate every record; return the survivors as ``{id: sequence}``.

    Per-record gates: empty sequence, length bounds, unclassifiable
    characters, ambiguity fraction, duplicate ids, duplicate sequences
    (later occurrence loses).  Batch gates (fatal in both modes):
    mixed DNA/protein alphabets, and fewer than
    :data:`MIN_SEQUENCES` survivors.

    Strict mode raises :class:`StageFailure` if *any* record fails;
    lenient mode drops the failures and continues.  Returns
    ``(sequences, alphabet, verdicts, rejections)``.
    """
    verdicts: List[QCVerdict] = []
    rejections: List[IngestRejection] = []
    survivors: Dict[str, str] = {}
    seen_names: set = set()
    seen_sequences: Dict[str, str] = {}  # sequence -> first record id

    def reject(verdict: QCVerdict, code: str, detail: str) -> None:
        verdict.verdict = "fail"
        verdict.codes.append(code)
        rejections.append(
            IngestRejection(
                stage=1,
                code=code,
                detail=detail,
                record=verdict.record,
                lineno=verdict.lineno,
            )
        )

    for record in records:
        sequence = record.sequence
        verdict = QCVerdict(
            record=record.name,
            lineno=record.lineno,
            length=len(sequence),
            alphabet=classify_sequence(sequence),
            ambiguity=ambiguity_fraction(sequence),
        )
        verdicts.append(verdict)
        if not sequence:
            reject(
                verdict, "empty-sequence",
                f"record {record.name!r} has no sequence data",
            )
            continue
        if len(sequence) < config.min_length:
            reject(
                verdict, "too-short",
                f"record {record.name!r} has {len(sequence)} residues "
                f"(minimum {config.min_length})",
            )
        if config.max_length is not None and len(sequence) > config.max_length:
            reject(
                verdict, "too-long",
                f"record {record.name!r} has {len(sequence)} residues "
                f"(maximum {config.max_length})",
            )
        if verdict.alphabet == "unknown":
            reject(
                verdict, "invalid-characters",
                f"record {record.name!r} is neither DNA nor protein",
            )
        elif verdict.ambiguity > config.max_ambiguity:
            reject(
                verdict, "ambiguity-fraction",
                f"record {record.name!r} is {verdict.ambiguity:.1%} "
                f"ambiguity codes (limit {config.max_ambiguity:.1%})",
            )
        if record.name in seen_names:
            reject(
                verdict, "duplicate-id",
                f"record id {record.name!r} appears more than once",
            )
        elif verdict.verdict == "pass" and sequence in seen_sequences:
            reject(
                verdict, "duplicate-sequence",
                f"record {record.name!r} duplicates the sequence of "
                f"{seen_sequences[sequence]!r}",
            )
        seen_names.add(record.name)
        if verdict.verdict == "pass":
            survivors[record.name] = sequence
            seen_sequences.setdefault(sequence, record.name)

    if mode == "strict" and rejections:
        raise StageFailure(1, rejections)

    alphabet = detect_alphabet(survivors.values())
    if alphabet == "mixed":
        kinds = {
            name: classify_sequence(seq) for name, seq in survivors.items()
        }
        detail = ", ".join(f"{n}={k}" for n, k in sorted(kinds.items()))
        rejections.append(
            IngestRejection(
                stage=1,
                code="mixed-alphabet",
                detail=f"batch mixes DNA and protein records ({detail})",
            )
        )
        raise StageFailure(1, rejections)
    if len(survivors) < MIN_SEQUENCES:
        rejections.append(
            IngestRejection(
                stage=1,
                code="too-few-sequences",
                detail=(
                    f"only {len(survivors)} usable record(s) after QC; "
                    f"a tree needs at least {MIN_SEQUENCES}"
                ),
            )
        )
        raise StageFailure(1, rejections)
    return survivors, alphabet, verdicts, rejections


# ----------------------------------------------------------------------
# Stage 2: distance
# ----------------------------------------------------------------------
def stage_distance(
    sequences: Mapping[str, str],
    *,
    method: str = "p",
    alphabet: str = "dna",
    scale: float = 1.0,
) -> Tuple[DistanceMatrix, Dict[str, object]]:
    """Compute the *raw* pairwise matrix plus saturation flags.

    p-distance and Jukes-Cantor need an alignment (equal lengths) --
    unaligned input is a stage-2 rejection (``"unaligned"``), as is
    Jukes-Cantor on protein (``"alphabet-mismatch"``: the 4-state
    substitution model is nucleotide-specific).  Saturated pairs
    (p >= 0.75) are *flagged* in the returned detail, not rejected:
    the tree may still be useful, but the caller deserves to know the
    signal is thin.  Repair is deliberately left to stage 3.
    """
    method = resolve_method(method)
    if method == "jukes-cantor" and alphabet != "dna":
        raise StageFailure(2, [
            IngestRejection(
                stage=2,
                code="alphabet-mismatch",
                detail=(
                    "Jukes-Cantor is a nucleotide substitution model; "
                    f"this batch is {alphabet}"
                ),
            )
        ])
    lengths = {len(s) for s in sequences.values()}
    aligned = len(lengths) <= 1
    if method in ("p", "p-count", "jukes-cantor") and not aligned:
        raise StageFailure(2, [
            IngestRejection(
                stage=2,
                code="unaligned",
                detail=(
                    f"{method} distance needs aligned sequences, but "
                    f"lengths vary ({min(lengths)}..{max(lengths)}); "
                    "align first or use --distance edit"
                ),
            )
        ])
    matrix = distance_matrix_from_sequences(
        sequences, method=method, scale=scale, repair=False
    )
    detail: Dict[str, object] = {
        "method": method,
        "aligned": aligned,
        "saturated_pairs": [],
        "saturation_fraction": 0.0,
    }
    if aligned:
        flagged = saturated_pairs(sequences)
        n = matrix.n
        n_pairs = n * (n - 1) // 2
        detail["saturated_pairs"] = [
            {"a": a, "b": b, "p": round(p, 6)} for a, b, p in flagged
        ]
        detail["saturation_fraction"] = (
            len(flagged) / n_pairs if n_pairs else 0.0
        )
        detail["saturation_threshold"] = SATURATION_THRESHOLD
    return matrix, detail


# ----------------------------------------------------------------------
# Stage 3: repair
# ----------------------------------------------------------------------
def stage_repair(
    matrix: DistanceMatrix,
) -> Tuple[DistanceMatrix, RepairReport]:
    """Metric-close the raw matrix, measuring the applied perturbation."""
    return repair_with_report(matrix)
