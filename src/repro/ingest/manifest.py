"""The ingestion manifest: one JSON document per pipeline run.

The manifest is the audit trail the ROADMAP's "millions of users upload
their own data" scenario needs: what file came in (path, sha256, size),
what the QC stage decided about every record, how far each distance pair
had diverged, how much the metric repair moved the matrix, and what tree
came out -- plus per-stage durations and the engine fingerprint so a
failed batch is diagnosable after the fact.

It is also the pipeline's *resume token*: each completed stage appends a
:class:`StageRecord` carrying enough artifact state (surviving
sequences, raw and repaired matrices) that a re-run against the same
input and configuration skips straight past it.  See
:func:`repro.ingest.pipeline.run_pipeline` for the resume rules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "MANIFEST_VERSION",
    "STAGE_NAMES",
    "IngestRejection",
    "StageRecord",
    "Manifest",
    "sha256_text",
    "strip_volatile",
]

MANIFEST_VERSION = 1

#: Pipeline stages, in order.  Indices are stable and appear in
#: rejection records, stage records and trace spans.
STAGE_NAMES = ("parse", "qc", "distance", "repair", "tree")


def sha256_text(text: str) -> str:
    """Hex sha256 of the input text (UTF-8), the manifest's input digest."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class IngestRejection:
    """One structured, JSON-safe reason a record (or batch) was refused.

    ``stage`` is the stage index, ``stage_name`` its name, ``code`` a
    stable machine-readable reason (``"duplicate-id"``,
    ``"ambiguity-fraction"``, ...), ``record`` the offending record id
    (empty for batch-level rejections) and ``detail`` the human
    sentence.  These land in the manifest -- never as tracebacks.
    """

    stage: int
    code: str
    detail: str
    record: str = ""
    lineno: int = 0

    @property
    def stage_name(self) -> str:
        return STAGE_NAMES[self.stage]

    def to_json(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "stage_name": self.stage_name,
            "code": self.code,
            "detail": self.detail,
            "record": self.record,
            "lineno": self.lineno,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "IngestRejection":
        return cls(
            stage=int(data["stage"]),
            code=str(data["code"]),
            detail=str(data.get("detail", "")),
            record=str(data.get("record", "")),
            lineno=int(data.get("lineno", 0)),
        )


@dataclass
class StageRecord:
    """One completed (or failed) stage: status, timing, counters, detail.

    ``detail`` is stage-specific JSON (QC verdicts, saturation flags,
    repair norms, the result summary); ``artifacts`` is the state a
    resumed run needs to skip this stage (e.g. the surviving sequences
    after QC, the repaired matrix after repair).
    """

    index: int
    name: str
    status: str  # "completed" | "failed"
    duration_seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    detail: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "duration_seconds": self.duration_seconds,
            "counters": dict(self.counters),
            "detail": self.detail,
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "StageRecord":
        return cls(
            index=int(data["index"]),
            name=str(data["name"]),
            status=str(data["status"]),
            duration_seconds=float(data.get("duration_seconds", 0.0)),
            counters=dict(data.get("counters", {})),
            detail=dict(data.get("detail", {})),
            artifacts=dict(data.get("artifacts", {})),
        )


@dataclass
class Manifest:
    """The whole pipeline run, JSON round-trippable.

    ``status`` is ``"ok"`` (tree built, no rejections), ``"partial"``
    (tree built in lenient mode but some records were dropped) or
    ``"failed"`` (a stage refused to continue; ``failed_stage`` says
    which).  ``resumed_from`` is the number of stages skipped because a
    prior manifest already carried them.
    """

    version: int = MANIFEST_VERSION
    input: Dict[str, object] = field(default_factory=dict)
    engine: Dict[str, object] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    stages: List[StageRecord] = field(default_factory=list)
    rejections: List[IngestRejection] = field(default_factory=list)
    result: Optional[Dict[str, object]] = None
    status: str = "failed"
    failed_stage: Optional[int] = None
    resumed_from: int = 0

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def completed_stages(self) -> int:
        """Number of consecutive completed stages from the front."""
        done = 0
        for record in self.stages:
            if record.index == done and record.status == "completed":
                done += 1
            else:
                break
        return done

    def stage(self, name: str) -> Optional[StageRecord]:
        for record in self.stages:
            if record.name == name:
                return record
        return None

    def matches(self, input_sha256: str, config: Dict[str, object]) -> bool:
        """True when a re-run may resume from this manifest.

        The input digest and the pipeline configuration (distance,
        tree method, mode, QC gates, scale -- everything except
        ``verify``, which only affects the final stage) must agree.
        """
        if self.input.get("sha256") != input_sha256:
            return False
        mine = {k: v for k, v in self.config.items() if k != "verify"}
        theirs = {k: v for k, v in config.items() if k != "verify"}
        return mine == theirs

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "status": self.status,
            "failed_stage": self.failed_stage,
            "resumed_from": self.resumed_from,
            "input": self.input,
            "engine": self.engine,
            "config": self.config,
            "stages": [s.to_json() for s in self.stages],
            "rejections": [r.to_json() for r in self.rejections],
            "result": self.result,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Manifest":
        return cls(
            version=int(data.get("version", MANIFEST_VERSION)),
            input=dict(data.get("input", {})),
            engine=dict(data.get("engine", {})),
            config=dict(data.get("config", {})),
            stages=[StageRecord.from_json(s) for s in data.get("stages", [])],
            rejections=[
                IngestRejection.from_json(r)
                for r in data.get("rejections", [])
            ],
            result=data.get("result"),
            status=str(data.get("status", "failed")),
            failed_stage=data.get("failed_stage"),
            resumed_from=int(data.get("resumed_from", 0)),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Manifest":
        return cls.from_json(json.loads(Path(path).read_text()))


def strip_volatile(manifest_json: Dict[str, object]) -> Dict[str, object]:
    """A manifest with its run-to-run noise removed, for golden pinning.

    Drops stage durations, the engine fingerprint, the absolute input
    path and the resume counter, keeping everything content-derived
    (digests, verdicts, counters, rejection codes, the tree).  Both the
    golden-manifest test and the CI ``ingest-smoke`` diff go through
    this, so they agree on what "the same output" means.
    """
    cleaned = json.loads(json.dumps(manifest_json))  # deep copy
    cleaned.pop("engine", None)
    cleaned.pop("resumed_from", None)
    if "input" in cleaned:
        cleaned["input"].pop("path", None)
    for stage in cleaned.get("stages", []):
        stage.pop("duration_seconds", None)
    return cleaned
