"""Command-line front-end: ``repro-mut``.

The project report ships the pipeline as "a user-friendly tool system";
this CLI is that surface.  Examples::

    # exact minimum ultrametric tree from a PHYLIP matrix
    repro-mut build matrix.phy --method bnb

    # the paper's pipeline, with the simulated 16-node cluster
    repro-mut build matrix.phy --method compact-parallel --workers 16

    # inspect the compact sets of a matrix
    repro-mut compact-sets matrix.phy

    # generate a synthetic HMDNA matrix and write it out
    repro-mut generate --species 26 --seed 7 --out hmdna.phy

    # compute a distance matrix from FASTA sequences
    repro-mut distances seqs.fasta --out matrix.phy

    # draw a tree, validate it, or compare two Newick trees
    repro-mut render matrix.phy --width 50
    repro-mut validate matrix.phy --method compact
    repro-mut compare tree_a.nwk tree_b.nwk

    # cross-engine verification and seeded fuzzing (docs/verification.md)
    repro-mut verify matrix.phy
    repro-mut fuzz --seed 0 --budget 200 --corpus corpus

    # run the serving layer (see docs/service.md)
    repro-mut serve --port 8533 --workers 4 --cache-dir .repro-cache

    # watch a running job's live incumbent/gap trajectory
    repro-mut watch 5f3a... --url http://127.0.0.1:8533
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.api import METHODS, construct_tree
from repro.obs import Recorder, render_profile
from repro.graph.compact_sets import find_compact_sets
from repro.graph.hierarchy import CompactSetHierarchy
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import random_metric_matrix
from repro.matrix.io import read_csv_matrix, read_phylip, write_phylip
from repro.parallel.config import ClusterConfig
from repro.sequences.hmdna import generate_hmdna_dataset
from repro.tree.newick import to_newick

__all__ = ["main", "build_parser"]


def _load_matrix(path: str) -> DistanceMatrix:
    file = Path(path)
    if not file.exists():
        raise SystemExit(f"error: no such matrix file: {path}")
    if file.suffix.lower() == ".csv":
        return read_csv_matrix(file)
    return read_phylip(file)


def build_parser() -> argparse.ArgumentParser:
    from repro.version import fingerprint_summary

    parser = argparse.ArgumentParser(
        prog="repro-mut",
        description="Minimum ultrametric evolutionary trees via compact sets",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro-mut {fingerprint_summary()}",
        help="print the engine fingerprint (version, cache-key version, "
             "trace schema, git sha) and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="construct a tree from a matrix file")
    build.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    build.add_argument(
        "--method", choices=METHODS, default="compact",
        help="construction method (default: compact)",
    )
    build.add_argument(
        "--reduction", choices=("maximum", "minimum", "average"),
        default="maximum", help="group-matrix reduction for compact methods",
    )
    build.add_argument("--workers", type=int, default=16,
                       help="simulated cluster size for parallel methods")
    build.add_argument("--max-exact", type=int, default=None,
                       help="fall back to UPGMM above this subproblem size")
    build.add_argument("--newick-out", default=None,
                       help="write the tree in Newick format to this file")
    build.add_argument("--trace-out", default=None,
                       help="record observability events and write them as "
                            "JSON lines to this file")
    build.add_argument("--progress", action="store_true",
                       help="print live incumbent/bound/gap heartbeat lines "
                            "to stderr while the exact solvers search")
    build.add_argument("--progress-interval", type=float, default=0.25,
                       help="seconds between --progress heartbeats "
                            "(default: 0.25)")
    build.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")

    profile = sub.add_parser(
        "profile",
        help="print where the time went (from a fresh build, or from a "
             "recorded .jsonl trace file)",
    )
    profile.add_argument(
        "matrix",
        help="PHYLIP (.phy)/CSV matrix file, or a recorded JSON-lines "
             "trace (.jsonl) to profile without re-running",
    )
    profile.add_argument(
        "--from-trace", action="store_true",
        help="treat the input as a trace file regardless of its suffix",
    )
    profile.add_argument(
        "--method", choices=METHODS, default="compact",
        help="construction method (default: compact)",
    )
    profile.add_argument(
        "--reduction", choices=("maximum", "minimum", "average"),
        default="maximum", help="group-matrix reduction for compact methods",
    )
    profile.add_argument("--workers", type=int, default=16,
                         help="simulated cluster size for parallel methods")
    profile.add_argument("--max-exact", type=int, default=None,
                         help="fall back to UPGMM above this subproblem size")
    profile.add_argument("--min-percent", type=float, default=0.0,
                         help="hide spans below this percentage of total time")
    profile.add_argument("--trace-out", default=None,
                         help="also write the raw events as JSON lines")
    profile.add_argument("--trace-id", default=None,
                         help="only profile events belonging to this request "
                              "trace id (trace-file input only)")
    profile.add_argument("--chrome-trace", default=None, metavar="OUT",
                         help="also write the events in Chrome trace-event "
                              "format (load in chrome://tracing or Perfetto)")

    compact = sub.add_parser("compact-sets", help="list compact sets of a matrix")
    compact.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    compact.add_argument("--json", action="store_true")

    generate = sub.add_parser("generate", help="generate a synthetic matrix")
    generate.add_argument("--kind", choices=("hmdna", "random"), default="hmdna")
    generate.add_argument("--species", type=int, default=26)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output PHYLIP file")
    generate.add_argument("--fasta-out", default=None,
                          help="also write the generated sequences as FASTA "
                               "(hmdna kind only)")

    distances = sub.add_parser(
        "distances", help="compute a distance matrix from FASTA sequences"
    )
    distances.add_argument("fasta", help="input FASTA file")
    distances.add_argument("--out", required=True, help="output PHYLIP file")
    distances.add_argument(
        "--distance", choices=("p", "p-count", "jukes-cantor", "edit"),
        default="p-count", help="pairwise distance (default: p-count)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="staged FASTA -> QC -> distance -> repair -> tree pipeline "
             "with a JSON manifest (exit 0 clean, 1 rejections, 2 usage "
             "error; see docs/ingestion.md)",
    )
    ingest.add_argument("fasta", help="input FASTA / multi-FASTA file")
    ingest.add_argument(
        "--distance",
        choices=("p", "p-count", "jc", "jukes-cantor", "edit"),
        default="p",
        help="pairwise distance for stage 2 (default: p; jc = "
             "jukes-cantor; edit works on unaligned input)",
    )
    ingest.add_argument("--method", choices=METHODS, default="compact",
                        help="tree construction method for stage 4 "
                             "(default: compact)")
    ingest.add_argument("--mode", choices=("strict", "lenient"),
                        default="strict",
                        help="strict fails a stage on any problem; lenient "
                             "drops bad records and continues while >= 3 "
                             "survive (default: strict)")
    ingest.add_argument("--manifest", default=None,
                        help="manifest JSON path; an existing manifest for "
                             "the same input + config resumes past its "
                             "completed stages")
    ingest.add_argument("--scale", type=float, default=1.0,
                        help="multiply every distance entry (default: 1.0)")
    ingest.add_argument("--min-length", type=int, default=1,
                        help="QC: minimum residues per record (default: 1)")
    ingest.add_argument("--max-length", type=int, default=None,
                        help="QC: maximum residues per record "
                             "(default: unbounded)")
    ingest.add_argument("--max-ambiguity", type=float, default=0.1,
                        help="QC: tolerated ambiguity-code fraction per "
                             "record (default: 0.1)")
    ingest.add_argument("--verify", action="store_true",
                        help="run the result oracles on the constructed tree")
    ingest.add_argument("--trace-out", default=None,
                        help="write the ingest.stage spans/counters as "
                             "schema-v1 JSON lines to this file")
    ingest.add_argument("--json", action="store_true",
                        help="print the full manifest to stdout")

    verify = sub.add_parser(
        "verify",
        help="differential + metamorphic verification of a matrix "
             "(exit 0 clean, 1 violations, 2 usage error)",
    )
    verify.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    verify.add_argument(
        "--methods", default=None,
        help="comma-separated construction methods to cross-check "
             "(default: bnb,parallel-bnb,multiprocess,compact,upgmm)",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="seed for the metamorphic transformations (default: 0)",
    )
    verify.add_argument(
        "--skip-metamorphic", action="store_true",
        help="run only the oracles and the differential cross-checks",
    )
    verify.add_argument("--json", action="store_true",
                        help="emit the full machine-readable report")

    fuzz = sub.add_parser(
        "fuzz",
        help="seeded fuzzing over matrix families with corpus shrinking "
             "(exit 0 clean, 1 failures, 2 usage error)",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="master seed; the whole campaign is "
                           "deterministic given it (default: 0)")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of verification cases (default: 100)")
    fuzz.add_argument(
        "--methods", default=None,
        help="comma-separated methods to cross-check per case "
             "(default: bnb,parallel-bnb,multiprocess,compact,upgmm)",
    )
    fuzz.add_argument("--corpus", default="corpus",
                      help="directory for shrunk failing matrices "
                           "(created on demand; default: corpus)")
    fuzz.add_argument("--min-species", type=int, default=4)
    fuzz.add_argument("--max-species", type=int, default=9,
                      help="largest matrix size to draw (default: 9; the "
                           "exact engines are exponential)")
    fuzz.add_argument("--max-failures", type=int, default=5,
                      help="stop the campaign after this many distinct "
                           "failures (default: 5)")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the full machine-readable report")
    fuzz.add_argument("--db", default=None,
                      help="also archive failures into this campaign "
                           "database (same file campaign run uses)")
    fuzz.add_argument("--ingest", action="store_true",
                      help="fuzz the FASTA ingestion pipeline instead of "
                           "the matrix families: mutate seed FASTA files "
                           "(ambiguity injection, truncation, duplicate "
                           "ids, ...) through the lenient pipeline")
    fuzz.add_argument("--fasta-dir", default=None,
                      help="directory of seed .fasta files for --ingest "
                           "(default: synthetic HMDNA-style seeds)")

    campaign = sub.add_parser(
        "campaign",
        help="run suites into the persistent run database and compare "
             "campaigns across engine versions (see docs/campaigns.md)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _db_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", default="campaigns.sqlite",
                       help="campaign database file "
                            "(default: campaigns.sqlite)")

    crun = campaign_sub.add_parser(
        "run",
        help="execute (or resume) a suite as a named campaign "
             "(exit 0 clean, 1 case failures, 3 interrupted)",
    )
    crun.add_argument("suite",
                      help="suite spec JSON file, or a builtin suite name "
                           "(smoke, pins, hmdna)")
    _db_arg(crun)
    crun.add_argument("--name", default=None,
                      help="campaign name (default: the suite's name); "
                           "re-using a name resumes that campaign")
    crun.add_argument("--methods", default=None,
                      help="comma-separated methods overriding the suite's")
    crun.add_argument("--backend", choices=("auto", "thread", "process"),
                      default="auto",
                      help="scheduler backend (auto picks by the first "
                           "method, like serve)")
    crun.add_argument("--start-method", default=None,
                      choices=("fork", "spawn", "forkserver"),
                      help="multiprocessing start method for "
                           "--backend process")
    crun.add_argument("--workers", type=int, default=4,
                      help="scheduler workers (default: 4)")
    crun.add_argument("--no-verify", action="store_true",
                      help="skip the per-case result oracles")
    crun.add_argument("--job-timeout", type=float, default=None,
                      help="per-case deadline in seconds")
    crun.add_argument("--throttle", type=float, default=0.0,
                      help="sleep this many seconds between submissions")
    crun.add_argument("--stop-after", type=int, default=None,
                      help="stop (as interrupted) after executing this many "
                           "cases -- deterministic resume testing")
    crun.add_argument("--trace-out", default=None,
                      help="also write the campaign's trace as JSON lines")
    crun.add_argument("--json", action="store_true")

    cstatus = campaign_sub.add_parser("status",
                                      help="per-state case counts of a "
                                           "campaign")
    cstatus.add_argument("name")
    _db_arg(cstatus)
    cstatus.add_argument("--json", action="store_true")

    clist = campaign_sub.add_parser("list",
                                    help="all campaigns in the database")
    _db_arg(clist)
    clist.add_argument("--json", action="store_true")

    cdiff = campaign_sub.add_parser(
        "diff",
        help="compare campaign B against baseline A "
             "(exit 0 ok, 1 regressions, 2 usage error)",
    )
    cdiff.add_argument("a", help="baseline campaign name")
    cdiff.add_argument("b", help="candidate campaign name")
    _db_arg(cdiff)
    cdiff.add_argument("--eps", type=float, default=1e-9,
                       help="exact-method cost tolerance (default: 1e-9)")
    cdiff.add_argument("--json", action="store_true")

    ctrend = campaign_sub.add_parser(
        "trend",
        help="perf-trend report across two or more campaigns "
             "(geomean wall/solve/nodes ratios vs the oldest)",
    )
    ctrend.add_argument("names", nargs="+",
                        help="campaign names, any order; the report sorts "
                             "them oldest-first and uses the oldest as the "
                             "ratio baseline")
    _db_arg(ctrend)
    ctrend.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of the "
                             "markdown report")

    cexport = campaign_sub.add_parser(
        "export", help="dump one campaign and its cases as JSON"
    )
    cexport.add_argument("name")
    _db_arg(cexport)
    cexport.add_argument("--out", default=None,
                         help="write to this file instead of stdout")
    cexport.add_argument("--strip-volatile", action="store_true",
                         help="drop timing/host/cache fields -- the "
                              "checked-in seed-campaign format")

    render = sub.add_parser("render", help="draw a constructed tree as ASCII")
    render.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    render.add_argument("--method", choices=METHODS, default="compact")
    render.add_argument("--width", type=int, default=60)

    validate = sub.add_parser(
        "validate", help="construct a tree and report its quality"
    )
    validate.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    validate.add_argument("--method", choices=METHODS, default="compact")
    validate.add_argument(
        "--compare-optimal", action="store_true",
        help="also compute the exact optimum (small matrices only)",
    )

    inspect = sub.add_parser(
        "inspect", help="summarise a matrix and its compact structure"
    )
    inspect.add_argument("matrix", help="PHYLIP (.phy) or CSV matrix file")
    inspect.add_argument("--json", action="store_true")

    compare = sub.add_parser("compare", help="compare two Newick trees")
    compare.add_argument("tree_a", help="first Newick file")
    compare.add_argument("tree_b", help="second Newick file")
    compare.add_argument("--json", action="store_true")

    bootstrap = sub.add_parser(
        "bootstrap", help="clade support by bootstrap over FASTA sequences"
    )
    bootstrap.add_argument("fasta", help="aligned FASTA sequences")
    bootstrap.add_argument("--replicates", type=int, default=100)
    bootstrap.add_argument("--seed", type=int, default=0)
    bootstrap.add_argument(
        "--distance", choices=("p", "p-count", "jukes-cantor"),
        default="p-count",
    )
    bootstrap.add_argument("--json", action="store_true")

    serve = sub.add_parser(
        "serve", help="run the HTTP serving layer (see docs/service.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8533,
                       help="listen port; 0 picks a free one (default: 8533)")
    serve.add_argument("--workers", type=int, default=4,
                       help="solver workers (default: 4)")
    serve.add_argument("--backend", choices=("auto", "thread", "process"),
                       default="auto",
                       help="execution backend: worker threads or supervised "
                            "worker processes; 'auto' picks processes for "
                            "the GIL-bound exact methods and threads "
                            "otherwise (default: auto)")
    serve.add_argument("--start-method", default=None,
                       choices=("fork", "spawn", "forkserver"),
                       help="force a multiprocessing start method for "
                            "--backend process (default: the platform's "
                            "cheapest)")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded job queue; beyond it POST /solve is "
                            "rejected with 429 queue_full (default: 64)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="in-memory result-cache entries (default: 256)")
    serve.add_argument("--cache-dir", default=None,
                       help="also persist cached results as JSON files here "
                            "(warm restarts)")
    serve.add_argument("--method", choices=METHODS, default="compact",
                       help="default construction method for requests that "
                            "do not name one (default: compact)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="default per-job deadline in seconds")
    serve.add_argument("--trace-out", default=None,
                       help="stream the service trace (service.job spans, "
                            "cache.hit/miss counters) as JSON lines to this "
                            "file while serving")
    serve.add_argument("--trace-max-mb", type=float, default=None,
                       help="rotate the trace file past this size (previous "
                            "generation kept as <file>.1)")
    serve.add_argument("--trace-ring", type=int, default=4096,
                       help="most-recent trace events kept in memory for "
                            "queries (default: 4096)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    watch = sub.add_parser(
        "watch",
        help="poll a live service for a job's solver progress and render "
             "incumbent/gap/nodes-per-second lines until it settles",
    )
    watch.add_argument("job_id", help="job id returned by POST /solve")
    watch.add_argument("--url", default="http://127.0.0.1:8533",
                       help="service base URL "
                            "(default: http://127.0.0.1:8533)")
    watch.add_argument("--interval", type=float, default=0.5,
                       help="poll interval in seconds (default: 0.5)")
    watch.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds (exit 3)")
    watch.add_argument("--json", action="store_true",
                       help="emit each new progress record as a JSON line")
    return parser


def _engine_options(args: argparse.Namespace) -> dict:
    options = {}
    if args.method.startswith("compact"):
        options["reduction"] = args.reduction
        if args.max_exact is not None:
            options["max_exact_size"] = args.max_exact
    return options


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.obs import ProgressTracker, format_progress_line, progress_context

    matrix = _load_matrix(args.matrix)
    options = _engine_options(args)
    cluster = ClusterConfig(n_workers=args.workers)
    recorder = Recorder() if args.trace_out else None
    tracker = None
    if args.progress:
        tracker = ProgressTracker(
            interval_seconds=args.progress_interval,
            recorder=recorder,
            sink=lambda snap: print(
                format_progress_line(snap), file=sys.stderr
            ),
        )
    with progress_context(tracker):
        result = construct_tree(
            matrix, args.method, cluster=cluster, recorder=recorder, **options
        )
    elapsed = getattr(result.details, "elapsed_seconds", None)
    if elapsed is None:  # BBUResult keeps its timing on .stats
        elapsed = getattr(
            getattr(result.details, "stats", None), "elapsed_seconds", None
        )

    if args.method == "nj":
        newick = result.tree.newick()
    else:
        newick = to_newick(result.tree)

    if args.json:
        payload = {
            "method": result.method,
            "n_species": matrix.n,
            "cost": result.cost,
            "newick": newick,
        }
        if elapsed is not None:
            payload["elapsed_seconds"] = elapsed
        print(json.dumps(payload, indent=2))
    else:
        print(f"method : {result.method}")
        print(f"species: {matrix.n}")
        print(f"cost   : {result.cost:.6f}")
        if elapsed is not None:
            print(f"time   : {elapsed:.6f}s")
        print(f"tree   : {newick}")
    if args.newick_out:
        Path(args.newick_out).write_text(newick + "\n")
    if args.trace_out:
        recorder.write_jsonl(args.trace_out)
        print(f"wrote {len(recorder.events)} trace event(s) to {args.trace_out}",
              file=sys.stderr)
    return 0


def _write_chrome_trace(events, destination: str) -> None:
    """Write ``events`` in Chrome trace-event JSON to ``destination``."""
    from repro.obs import chrome_trace_events

    trace = chrome_trace_events(events)
    Path(destination).write_text(json.dumps(trace) + "\n")
    print(
        f"wrote {len(trace['traceEvents'])} chrome trace event(s) to "
        f"{destination} (open in chrome://tracing or ui.perfetto.dev)",
        file=sys.stderr,
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    path = Path(args.matrix)
    if args.from_trace or path.suffix.lower() in (".jsonl", ".ndjson"):
        return _profile_trace_file(
            path,
            min_percent=args.min_percent,
            trace_id=args.trace_id,
            chrome_trace=args.chrome_trace,
        )
    if args.trace_id:
        raise SystemExit(
            "error: --trace-id filters a recorded trace; pass a .jsonl "
            "file (or --from-trace)"
        )
    matrix = _load_matrix(args.matrix)
    options = _engine_options(args)
    cluster = ClusterConfig(n_workers=args.workers)
    recorder = Recorder()
    result = construct_tree(
        matrix, args.method, cluster=cluster, recorder=recorder, **options
    )
    print(f"method : {result.method}")
    print(f"species: {matrix.n}")
    print(f"cost   : {result.cost:.6f}")
    print()
    print(render_profile(recorder.events, min_fraction=args.min_percent / 100.0))
    if args.trace_out:
        recorder.write_jsonl(args.trace_out)
        print(f"wrote {len(recorder.events)} trace event(s) to {args.trace_out}",
              file=sys.stderr)
    if args.chrome_trace:
        _write_chrome_trace(recorder.events, args.chrome_trace)
    return 0


def _profile_trace_file(
    path: Path,
    *,
    min_percent: float = 0.0,
    trace_id: Optional[str] = None,
    chrome_trace: Optional[str] = None,
) -> int:
    """Profile a previously recorded JSON-lines trace without re-running."""
    from repro.obs import SpanEvent, filter_by_trace_id, read_jsonl

    if not path.exists():
        raise SystemExit(f"error: no such trace file: {path}")
    try:
        events = read_jsonl(path)
    except ValueError as exc:
        raise SystemExit(f"error: unreadable trace file {path}: {exc}")
    if events.warning:
        print(f"warning: {events.warning}", file=sys.stderr)
    shown = list(events)
    if trace_id:
        shown = filter_by_trace_id(shown, trace_id)
        if not shown:
            print(f"no events with trace_id {trace_id!r} in {path}")
            return 0
    if chrome_trace:
        _write_chrome_trace(shown, chrome_trace)
    if not any(isinstance(e, SpanEvent) for e in shown):
        print(f"no spans recorded in {path}")
        return 0
    print(f"trace  : {path}")
    if trace_id:
        print(f"trace_id: {trace_id}")
    print()
    print(render_profile(shown, min_fraction=min_percent / 100.0))
    return 0


def _cmd_compact_sets(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args.matrix)
    sets = find_compact_sets(matrix)
    hierarchy = CompactSetHierarchy.from_matrix(matrix)
    named = [sorted(matrix.labels[i] for i in members) for members in sets]
    if args.json:
        print(json.dumps({
            "n_species": matrix.n,
            "compact_sets": named,
            "max_subproblem_size": hierarchy.max_subproblem_size(),
        }, indent=2))
    else:
        print(f"{len(sets)} non-trivial compact set(s) in {matrix.n} species")
        for members in named:
            print("  {" + ", ".join(members) + "}")
        print(f"largest reduced matrix after decomposition: "
              f"{hierarchy.max_subproblem_size()}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "hmdna":
        dataset = generate_hmdna_dataset(args.species, seed=args.seed)
        matrix = dataset.matrix
        if args.fasta_out:
            from repro.sequences.fasta import write_fasta

            write_fasta(dataset.sequences, args.fasta_out)
            print(f"wrote sequences to {args.fasta_out}")
    else:
        if args.fasta_out:
            raise SystemExit("error: --fasta-out requires --kind hmdna")
        matrix = random_metric_matrix(args.species, seed=args.seed)
    write_phylip(matrix, args.out)
    print(f"wrote {args.kind} matrix ({matrix.n} species) to {args.out}")
    return 0


def _cmd_distances(args: argparse.Namespace) -> int:
    from repro.sequences.distance import distance_matrix_from_sequences
    from repro.sequences.fasta import read_fasta

    if not Path(args.fasta).exists():
        raise SystemExit(f"error: no such FASTA file: {args.fasta}")
    sequences = read_fasta(args.fasta)
    matrix = distance_matrix_from_sequences(sequences, method=args.distance)
    write_phylip(matrix, args.out)
    print(f"wrote {matrix.n}-species {args.distance} matrix to {args.out}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.tree.render import render_ascii

    matrix = _load_matrix(args.matrix)
    if args.method == "nj":
        raise SystemExit("error: render supports ultrametric methods only")
    result = construct_tree(matrix, args.method)
    print(f"method: {args.method}   cost: {result.cost:.4f}")
    print(render_ascii(result.tree, width=args.width))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_tree

    matrix = _load_matrix(args.matrix)
    if args.method == "nj":
        raise SystemExit("error: validate supports ultrametric methods only")
    result = construct_tree(matrix, args.method)
    report = validate_tree(
        result.tree, matrix, compare_optimal=args.compare_optimal
    )
    print(f"method: {args.method}")
    print(report.summary())
    return 0 if report.ok else 1


def _usage_error(message: str) -> SystemExit:
    """Exit code 2 (usage), matching argparse's own convention."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load_matrix_or_usage_error(path: str) -> DistanceMatrix:
    """Like :func:`_load_matrix` but usage problems exit 2, not 1.

    ``verify``/``fuzz`` reserve exit 1 for *verification failures* so CI
    can tell "the engines are broken" from "the command line is broken".
    """
    file = Path(path)
    if not file.exists():
        raise _usage_error(f"no such matrix file: {path}")
    try:
        if file.suffix.lower() == ".csv":
            return read_csv_matrix(file)
        return read_phylip(file)
    except (ValueError, OSError) as exc:
        raise _usage_error(f"unreadable matrix file {path}: {exc}")


def _parse_method_list(spec: Optional[str]) -> tuple:
    from repro.verify.differential import DEFAULT_DIFFERENTIAL_METHODS

    if spec is None:
        return tuple(DEFAULT_DIFFERENTIAL_METHODS)
    methods = tuple(m.strip() for m in spec.split(",") if m.strip())
    if not methods:
        raise _usage_error("--methods must name at least one method")
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        raise _usage_error(
            f"unknown methods {unknown}; choose from {METHODS}"
        )
    return methods


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import verify_matrix

    methods = _parse_method_list(args.methods)
    matrix = _load_matrix_or_usage_error(args.matrix)
    violations = verify_matrix(
        matrix,
        methods,
        seed=args.seed,
        metamorphic=not args.skip_metamorphic,
    )
    if args.json:
        print(json.dumps({
            "matrix": args.matrix,
            "n_species": matrix.n,
            "methods": list(methods),
            "seed": args.seed,
            "ok": not violations,
            "violations": [v.to_json() for v in violations],
        }, indent=2))
    else:
        print(f"matrix : {args.matrix} ({matrix.n} species)")
        print(f"methods: {', '.join(methods)}")
        if not violations:
            print("verdict: OK -- all oracles, differential and "
                  "metamorphic checks passed")
    if violations:
        for violation in violations:
            print(f"VIOLATION {violation}", file=sys.stderr)
        print(
            f"repro-mut verify: {len(violations)} violation(s); reproduce "
            f"with: repro-mut verify {args.matrix} "
            f"--methods {','.join(methods)} --seed {args.seed}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Run the staged ingestion pipeline over one FASTA file.

    Exit codes: 0 clean run (tree built, nothing rejected), 1 any
    rejection or stage failure (including a lenient run that dropped
    records), 2 usage error.
    """
    from pathlib import Path

    from repro.ingest import QCConfig, run_pipeline

    source = Path(args.fasta)
    if not source.exists():
        raise _usage_error(f"no such FASTA file: {args.fasta}")
    if args.min_length < 1:
        raise _usage_error(
            f"--min-length must be >= 1, got {args.min_length}"
        )
    if not 0.0 <= args.max_ambiguity <= 1.0:
        raise _usage_error(
            f"--max-ambiguity must be in [0, 1], got {args.max_ambiguity}"
        )
    qc = QCConfig(
        min_length=args.min_length,
        max_length=args.max_length,
        max_ambiguity=args.max_ambiguity,
    )
    recorder = Recorder() if args.trace_out else None
    outcome = run_pipeline(
        source,
        distance=args.distance,
        tree_method=args.method,
        mode=args.mode,
        qc=qc,
        scale=args.scale,
        verify=args.verify,
        manifest_path=args.manifest,
        recorder=recorder,
    )
    if recorder is not None:
        recorder.write_jsonl(args.trace_out)
    manifest = outcome.manifest
    if args.json:
        print(json.dumps(manifest.to_json(), indent=2, sort_keys=True))
    else:
        print(f"input  : {args.fasta} "
              f"(sha256 {str(manifest.input.get('sha256', ''))[:12]}...)")
        for stage in manifest.stages:
            marker = "ok" if stage.status == "completed" else "FAILED"
            counters = ", ".join(
                f"{k}={v}" for k, v in sorted(stage.counters.items())
            )
            print(f"stage {stage.index} {stage.name:<8}: {marker}"
                  + (f" ({counters})" if counters else ""))
        if manifest.resumed_from:
            print(f"resumed: {manifest.resumed_from} stage(s) skipped")
        if manifest.result and "cost" in manifest.result:
            print(f"tree   : cost {manifest.result['cost']:.6g} "
                  f"[{manifest.result['method']}] "
                  f"verified={manifest.result.get('verified_ok')}")
            print(f"newick : {manifest.result['newick']}")
        print(f"status : {manifest.status}")
    for rejection in manifest.rejections:
        print(
            f"REJECTED stage={rejection.stage}({rejection.stage_name}) "
            f"code={rejection.code} record={rejection.record or '-'}: "
            f"{rejection.detail}",
            file=sys.stderr,
        )
    if args.manifest and not args.json:
        print(f"manifest: {args.manifest}", file=sys.stderr)
    return outcome.exit_code


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import run_fuzz

    if args.ingest:
        return _cmd_fuzz_ingest(args)
    methods = _parse_method_list(args.methods)
    if args.budget < 1:
        raise _usage_error(f"--budget must be >= 1, got {args.budget}")
    if not 3 <= args.min_species <= args.max_species:
        raise _usage_error(
            "need 3 <= --min-species <= --max-species, got "
            f"{args.min_species}..{args.max_species}"
        )

    def progress(iteration: int, family: str) -> None:
        if iteration and iteration % 50 == 0:
            print(f"... case {iteration}/{args.budget}", file=sys.stderr)

    report = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        methods=methods,
        min_species=args.min_species,
        max_species=args.max_species,
        corpus_dir=args.corpus,
        max_failures=args.max_failures,
        progress=progress,
    )
    if args.db is not None and report.failures:
        from repro.campaign.db import CampaignDB
        from repro.version import engine_fingerprint

        with CampaignDB(args.db) as db:
            for failure in report.failures:
                db.archive_fuzz_failure(
                    master_seed=report.seed,
                    iteration=failure.iteration,
                    matrix_digest=failure.matrix.digest(),
                    family=failure.family,
                    n_species=failure.n_species,
                    shrunk_n_species=failure.shrunk_n_species,
                    corpus_path=failure.corpus_path,
                    meta_path=failure.meta_path,
                    repro_command=failure.repro_command,
                    violations=[v.to_json() for v in failure.violations],
                    fingerprint=engine_fingerprint(),
                )
        print(
            f"archived {len(report.failures)} failure(s) into {args.db}",
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"seed    : {report.seed}")
        print(f"cases   : {report.cases_run}/{report.budget}")
        print("families: " + ", ".join(
            f"{name}={count}" for name, count in sorted(report.families.items())
        ))
        print(f"verdict : {'OK' if report.ok else 'FAILURES FOUND'}")
    if not report.ok:
        for failure in report.failures:
            print(
                f"FUZZ FAILURE seed={report.seed} case={failure.iteration} "
                f"family={failure.family} corpus={failure.corpus_path}",
                file=sys.stderr,
            )
            for violation in failure.violations[:3]:
                print(f"  {violation}", file=sys.stderr)
            if failure.repro_command:
                print(f"  reproduce: {failure.repro_command}", file=sys.stderr)
        print(
            f"repro-mut fuzz: {len(report.failures)} failing case(s); "
            f"replay the campaign with: repro-mut fuzz --seed {report.seed} "
            f"--budget {report.budget} --methods {','.join(methods)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fuzz_ingest(args: argparse.Namespace) -> int:
    """The ``fuzz --ingest`` family: mutated FASTA through the pipeline."""
    from pathlib import Path

    from repro.verify.fuzz import run_ingest_fuzz

    if args.budget < 1:
        raise _usage_error(f"--budget must be >= 1, got {args.budget}")
    seed_files = None
    if args.fasta_dir is not None:
        seed_files = sorted(Path(args.fasta_dir).glob("*.fasta"))
        if not seed_files:
            raise _usage_error(
                f"no .fasta files in --fasta-dir {args.fasta_dir}"
            )

    def progress(iteration: int, mutation: str) -> None:
        if iteration and iteration % 50 == 0:
            print(f"... case {iteration}/{args.budget}", file=sys.stderr)

    report = run_ingest_fuzz(
        seed=args.seed,
        budget=args.budget,
        seed_files=seed_files,
        corpus_dir=args.corpus,
        max_failures=args.max_failures,
        progress=progress,
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"seed     : {report.seed}")
        print(f"cases    : {report.cases_run}/{report.budget}")
        print("mutations: " + ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.mutations.items())
        ))
        print(f"verdict  : {'OK' if report.ok else 'FAILURES FOUND'}")
    if not report.ok:
        for failure in report.failures:
            print(
                f"INGEST FUZZ FAILURE seed={report.seed} "
                f"case={failure.iteration} mutation={failure.mutation} "
                f"corpus={failure.corpus_path}",
                file=sys.stderr,
            )
            print(f"  {failure.detail}", file=sys.stderr)
            if failure.repro_command:
                print(f"  reproduce: {failure.repro_command}",
                      file=sys.stderr)
        print(
            f"repro-mut fuzz --ingest: {len(report.failures)} failing "
            f"case(s); replay with: repro-mut fuzz --ingest "
            f"--seed {report.seed} --budget {report.budget}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.matrix.stats import matrix_summary

    matrix = _load_matrix(args.matrix)
    summary = matrix_summary(matrix)
    if args.json:
        print(json.dumps(asdict(summary), indent=2))
    else:
        print(summary.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.tree.compare import (
        normalized_robinson_foulds,
        robinson_foulds,
        shared_clades,
    )
    from repro.tree.newick import parse_newick

    trees = []
    for path in (args.tree_a, args.tree_b):
        if not Path(path).exists():
            raise SystemExit(f"error: no such tree file: {path}")
        trees.append(parse_newick(Path(path).read_text()))
    a, b = trees
    rf = robinson_foulds(a, b)
    nrf = normalized_robinson_foulds(a, b)
    shared = len(shared_clades(a, b))
    if args.json:
        print(json.dumps({
            "robinson_foulds": rf,
            "normalized": nrf,
            "shared_clades": shared,
        }, indent=2))
    else:
        print(f"Robinson-Foulds distance : {rf}")
        print(f"normalized (0 = same)    : {nrf:.4f}")
        print(f"shared clades            : {shared}")
    return 0


def _cmd_bootstrap(args: argparse.Namespace) -> int:
    from repro.core.pipeline import CompactSetTreeBuilder
    from repro.sequences.bootstrap import bootstrap_support
    from repro.sequences.distance import distance_matrix_from_sequences
    from repro.sequences.fasta import read_fasta

    if not Path(args.fasta).exists():
        raise SystemExit(f"error: no such FASTA file: {args.fasta}")
    sequences = read_fasta(args.fasta)
    matrix = distance_matrix_from_sequences(sequences, method=args.distance)
    tree = CompactSetTreeBuilder(max_exact_size=12).build(matrix).tree
    support = bootstrap_support(
        tree,
        sequences,
        n_replicates=args.replicates,
        seed=args.seed,
        method=args.distance,
    )
    ranked = sorted(support.items(), key=lambda item: -item[1])
    if args.json:
        print(json.dumps({
            "replicates": args.replicates,
            "newick": to_newick(tree),
            "support": [
                {"clade": sorted(clade), "support": fraction}
                for clade, fraction in ranked
            ],
        }, indent=2))
    else:
        print(f"tree: {to_newick(tree, precision=3)}")
        print(f"clade support over {args.replicates} bootstrap replicates:")
        for clade, fraction in ranked:
            members = ", ".join(sorted(clade))
            print(f"  {fraction:5.0%}  {{{members}}}")
    return 0


def _campaign_run(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.campaign import (
        CampaignMismatch,
        SuiteError,
        load_suite,
        run_campaign,
    )
    from repro.campaign.db import CampaignDB
    from repro.service.scheduler import select_backend

    try:
        suite = load_suite(args.suite)
    except SuiteError as exc:
        raise _usage_error(str(exc))
    if args.workers < 1:
        raise _usage_error(f"--workers must be >= 1, got {args.workers}")
    methods = None
    if args.methods:
        methods = list(_parse_method_list(args.methods))
    backend = args.backend
    if backend == "auto":
        lead = (methods or suite.methods)[0]
        backend = select_backend(lead)

    stop = threading.Event()
    previous = {}

    def _arm_stop(signum, frame):  # noqa: ARG001 - signal signature
        print("repro-mut campaign: stop requested, draining in-flight "
              "cases ...", file=sys.stderr)
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _arm_stop)
        except ValueError:  # pragma: no cover - non-main thread
            pass

    def progress(index: int, total: int, case, state: str) -> None:
        if not args.json:
            print(f"  [{index}/{total}] {case.id}: {state}",
                  file=sys.stderr)

    rec = Recorder()
    try:
        with CampaignDB(args.db) as db:
            try:
                result = run_campaign(
                    db,
                    suite,
                    name=args.name,
                    methods=methods,
                    backend=backend,
                    workers=args.workers,
                    start_method=args.start_method,
                    verify=not args.no_verify,
                    job_timeout=args.job_timeout,
                    recorder=rec,
                    stop=stop,
                    stop_after=args.stop_after,
                    throttle_seconds=args.throttle,
                    progress=progress,
                )
            except CampaignMismatch as exc:
                raise _usage_error(str(exc))
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if args.trace_out:
        rec.write_jsonl(args.trace_out)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        counts = ", ".join(
            f"{state}={count}"
            for state, count in sorted(result.state_counts.items())
        ) or "none"
        print(f"campaign : {result.name} (id {result.campaign_id}, "
              f"backend {backend})")
        print(f"cases    : {result.total_cases} total, "
              f"{result.executed} executed, {result.skipped} skipped")
        print(f"states   : {counts}")
        print(f"elapsed  : {result.elapsed_seconds:.2f}s")
        print(f"status   : {result.status}")
    if result.interrupted:
        return 3
    return 0 if result.ok else 1


def _campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign.db import CampaignDB

    with CampaignDB(args.db) as db:
        campaign = db.get_campaign(args.name)
        if campaign is None:
            raise _usage_error(f"no campaign named {args.name!r} in "
                               f"{args.db}")
        counts = db.state_counts(int(campaign["id"]))
    fingerprint = json.loads(campaign["fingerprint"] or "{}")
    if args.json:
        print(json.dumps({
            "campaign": campaign, "state_counts": counts,
        }, indent=2, default=str))
    else:
        print(f"campaign : {campaign['name']} (id {campaign['id']})")
        print(f"suite    : {campaign['suite']} (seed {campaign['seed']})")
        print(f"status   : {campaign['status']}")
        print(f"backend  : {campaign['backend']} on "
              f"{campaign['hostname']}")
        print(f"engine   : v{fingerprint.get('version', '?')} "
              f"(git {fingerprint.get('git_sha', 'unknown')})")
        print("states   : " + (", ".join(
            f"{state}={count}" for state, count in sorted(counts.items())
        ) or "no cases recorded"))
    return 0


def _campaign_list(args: argparse.Namespace) -> int:
    from repro.campaign.db import CampaignDB

    with CampaignDB(args.db) as db:
        campaigns = db.list_campaigns()
        rows = [
            (campaign, db.state_counts(int(campaign["id"])))
            for campaign in campaigns
        ]
    if args.json:
        print(json.dumps([
            {"campaign": campaign, "state_counts": counts}
            for campaign, counts in rows
        ], indent=2, default=str))
        return 0
    if not rows:
        print(f"no campaigns in {args.db}")
        return 0
    for campaign, counts in rows:
        total = sum(counts.values())
        done = counts.get("done", 0)
        print(f"{campaign['name']}: {campaign['status']}, "
              f"{done}/{total} done, suite {campaign['suite']}, "
              f"backend {campaign['backend']}")
    return 0


def _campaign_diff(args: argparse.Namespace) -> int:
    from repro.campaign import diff_campaigns
    from repro.campaign.db import CampaignDB

    with CampaignDB(args.db) as db:
        try:
            diff = diff_campaigns(db, args.a, args.b, cost_eps=args.eps)
        except KeyError as exc:
            raise _usage_error(str(exc.args[0]))
    if args.json:
        print(json.dumps(diff.to_json(), indent=2))
    else:
        print(diff.render())
    return 0 if diff.ok else 1


def _campaign_export(args: argparse.Namespace) -> int:
    from repro.campaign.db import CampaignDB, strip_volatile

    with CampaignDB(args.db) as db:
        try:
            export = db.export_campaign(args.name)
        except KeyError as exc:
            raise _usage_error(str(exc.args[0]))
    if args.strip_volatile:
        export = strip_volatile(export)
    text = json.dumps(export, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _campaign_trend(args: argparse.Namespace) -> int:
    from repro.campaign import trend_campaigns
    from repro.campaign.db import CampaignDB

    with CampaignDB(args.db) as db:
        try:
            trend = trend_campaigns(db, args.names)
        except KeyError as exc:
            raise _usage_error(str(exc.args[0]))
    if args.json:
        print(json.dumps(trend.to_json(), indent=2))
    else:
        print(trend.render(), end="")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    return {
        "run": _campaign_run,
        "status": _campaign_status,
        "list": _campaign_list,
        "diff": _campaign_diff,
        "trend": _campaign_trend,
        "export": _campaign_export,
    }[args.campaign_command](args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        cache_capacity=args.cache_size,
        cache_dir=args.cache_dir,
        default_method=args.method,
        default_timeout=args.job_timeout,
        backend=None if args.backend == "auto" else args.backend,
        start_method=args.start_method,
        trace_out=args.trace_out,
        trace_max_mb=args.trace_max_mb,
        trace_ring=args.trace_ring,
        verbose=args.verbose,
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    """Poll ``GET /jobs/<id>/progress`` until the job settles.

    Exit codes: 0 job done, 1 job failed/cancelled/timed out (or the
    service reported an error), 3 the ``--timeout`` budget ran out with
    the job still live.
    """
    import time

    from repro.obs import format_progress_line
    from repro.service.client import ServiceClient
    from repro.service.errors import JobNotFound, ServiceError
    from repro.service.jobs import JobState

    if args.interval <= 0:
        raise _usage_error(f"--interval must be > 0, got {args.interval}")
    client = ServiceClient(args.url, timeout=max(5.0, args.interval * 4))
    deadline = (
        None if args.timeout is None
        else time.monotonic() + args.timeout
    )
    last_time = None
    state = None
    while True:
        try:
            record = client.job_progress(args.job_id)
        except JobNotFound:
            print(f"error: no job {args.job_id!r} at {args.url}",
                  file=sys.stderr)
            return 1
        except (ServiceError, OSError) as exc:
            print(f"error: {args.url}: {exc}", file=sys.stderr)
            return 1
        state = record.get("state")
        snapshot = record.get("progress")
        if snapshot and snapshot.get("time") != last_time:
            last_time = snapshot.get("time")
            if args.json:
                print(json.dumps(record, sort_keys=True), flush=True)
            else:
                print(f"{state:>8} {format_progress_line(snapshot)}",
                      flush=True)
        if state in JobState.TERMINAL:
            break
        if deadline is not None and time.monotonic() >= deadline:
            print(f"repro-mut watch: job {args.job_id} still {state} "
                  f"after {args.timeout:.1f}s", file=sys.stderr)
            return 3
        time.sleep(args.interval)
    if not args.json:
        print(f"job {args.job_id}: {state}")
    return 0 if state == JobState.DONE else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "profile": _cmd_profile,
        "compact-sets": _cmd_compact_sets,
        "generate": _cmd_generate,
        "distances": _cmd_distances,
        "ingest": _cmd_ingest,
        "render": _cmd_render,
        "validate": _cmd_validate,
        "verify": _cmd_verify,
        "fuzz": _cmd_fuzz,
        "inspect": _cmd_inspect,
        "compare": _cmd_compare,
        "bootstrap": _cmd_bootstrap,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "watch": _cmd_watch,
    }
    handler = handlers.get(args.command)
    if handler is None:  # pragma: no cover
        raise SystemExit(2)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
