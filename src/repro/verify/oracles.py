"""Single-tree verification oracles.

An *oracle* checks one invariant of a construction result against the
input matrix and reports structured :class:`Violation` records instead
of booleans, so every surface (CLI, fuzz loop, serving layer, the
:func:`repro.core.validation.validate_tree` report) shares one
implementation and one vocabulary.

The five default oracles and the invariants they encode:

=================  =====================================================
``labels``         tree leaves are exactly the matrix species, no
                   duplicates, none missing
``structure``      the tree is a valid ultrametric tree: binary, leaves
                   at height 0, every child at or below its parent
``feasibility``    ``d_T(i, j) >= M[i, j]`` for every pair -- the MUT
                   constraint (Definition 8)
``cost``           the reported cost equals the recomputed ``omega(T)``
                   to 1e-9 (relative)
``newick``         serialize -> parse round-trips the topology, the
                   heights and the cost
=================  =====================================================

Oracles never raise: an exception inside a check becomes a violation of
that oracle (``crashed: ...``), so a thoroughly broken engine output
still produces a structured report the fuzz loop can shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.ultrametric import UltrametricTree

__all__ = [
    "Violation",
    "VerificationContext",
    "Oracle",
    "DEFAULT_ORACLES",
    "ORACLE_NAMES",
    "run_oracles",
    "COST_RTOL",
]

#: Relative tolerance of the cost-consistency oracle ("to 1e-9").
COST_RTOL = 1e-9

#: Structural slack shared with :mod:`repro.tree.checks`.
_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach found by an oracle.

    ``details`` is JSON-safe (plain str/int/float values) so violations
    serialize directly into job records and fuzz corpus metadata.
    """

    oracle: str
    message: str
    details: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass
class VerificationContext:
    """Everything an oracle may look at for one construction result."""

    tree: UltrametricTree
    matrix: DistanceMatrix
    reported_cost: Optional[float] = None
    method: Optional[str] = None


class Oracle:
    """Base class: a named invariant check over a :class:`VerificationContext`.

    Subclasses implement :meth:`check` returning a (possibly empty) list
    of violations.  :meth:`__call__` adds the never-raise guarantee.
    """

    name = "oracle"

    def check(self, ctx: VerificationContext) -> List[Violation]:
        raise NotImplementedError

    def __call__(self, ctx: VerificationContext) -> List[Violation]:
        try:
            return self.check(ctx)
        except Exception as exc:  # noqa: BLE001 - oracle isolation boundary
            return [
                Violation(
                    self.name,
                    f"crashed: {type(exc).__name__}: {exc}",
                    {"exception": type(exc).__name__},
                )
            ]


class LabelsOracle(Oracle):
    """Leaf labels are exactly the matrix species."""

    name = "labels"

    def check(self, ctx: VerificationContext) -> List[Violation]:
        leaf_labels = [
            leaf.label for leaf in ctx.tree.root.leaves()
        ]
        violations: List[Violation] = []
        seen = set()
        duplicates = set()
        for label in leaf_labels:
            if label in seen:
                duplicates.add(label)
            seen.add(label)
        if duplicates:
            violations.append(
                Violation(
                    self.name,
                    f"duplicate leaf labels: {sorted(duplicates)}",
                    {"duplicates": sorted(map(str, duplicates))},
                )
            )
        expected = set(ctx.matrix.labels)
        missing = expected - seen
        extra = seen - expected
        if missing:
            violations.append(
                Violation(
                    self.name,
                    f"matrix species missing from the tree: {sorted(missing)}",
                    {"missing": sorted(map(str, missing))},
                )
            )
        if extra:
            violations.append(
                Violation(
                    self.name,
                    f"tree leaves not in the matrix: {sorted(extra)}",
                    {"extra": sorted(map(str, extra))},
                )
            )
        return violations


class StructureOracle(Oracle):
    """The tree is a valid (binary) ultrametric tree."""

    name = "structure"

    def check(self, ctx: VerificationContext) -> List[Violation]:
        violations: List[Violation] = []
        for node in ctx.tree.root.walk():
            if node.is_leaf:
                if abs(node.height) > _TOL:
                    violations.append(
                        Violation(
                            self.name,
                            f"leaf {node.label!r} at height {node.height:g}"
                            " (must be 0)",
                            {"leaf": str(node.label), "height": node.height},
                        )
                    )
                continue
            if len(node.children) != 2:
                violations.append(
                    Violation(
                        self.name,
                        f"internal node at height {node.height:g} has "
                        f"{len(node.children)} children (must be binary)",
                        {"height": node.height, "arity": len(node.children)},
                    )
                )
            for child in node.children:
                if child.height > node.height + _TOL:
                    violations.append(
                        Violation(
                            self.name,
                            f"child height {child.height:g} above parent "
                            f"height {node.height:g} (negative edge)",
                            {
                                "child_height": child.height,
                                "parent_height": node.height,
                            },
                        )
                    )
        return violations


class FeasibilityOracle(Oracle):
    """The induced metric dominates the input: ``d_T >= M``."""

    name = "feasibility"

    def check(self, ctx: VerificationContext) -> List[Violation]:
        labels = ctx.matrix.labels
        if set(labels) != set(ctx.tree.leaf_labels):
            return []  # the labels oracle owns this failure
        induced = ctx.tree.distance_matrix(labels)
        slack = induced.values - ctx.matrix.values
        if (slack >= -_TOL).all():
            return []
        i, j = np.unravel_index(int(np.argmin(slack)), slack.shape)
        return [
            Violation(
                self.name,
                f"d_T >= M violated: d_T({labels[i]}, {labels[j]}) = "
                f"{induced.values[i, j]:.9g} < M = "
                f"{ctx.matrix.values[i, j]:.9g}",
                {
                    "pair": [str(labels[i]), str(labels[j])],
                    "tree_distance": float(induced.values[i, j]),
                    "matrix_distance": float(ctx.matrix.values[i, j]),
                    "worst_slack": float(slack[i, j]),
                    "violating_pairs": int((slack < -_TOL).sum() // 2),
                },
            )
        ]


class CostOracle(Oracle):
    """The reported cost matches the recomputed ``omega(T)`` to 1e-9."""

    name = "cost"

    def check(self, ctx: VerificationContext) -> List[Violation]:
        if ctx.reported_cost is None:
            return []
        recomputed = ctx.tree.cost()
        reported = float(ctx.reported_cost)
        tolerance = COST_RTOL * max(1.0, abs(reported))
        if abs(recomputed - reported) <= tolerance:
            return []
        return [
            Violation(
                self.name,
                f"reported cost {reported:.12g} differs from recomputed "
                f"omega(T) {recomputed:.12g} by "
                f"{abs(recomputed - reported):.3g} (> {tolerance:.3g})",
                {
                    "reported": reported,
                    "recomputed": float(recomputed),
                    "tolerance": float(tolerance),
                },
            )
        ]


class NewickOracle(Oracle):
    """Serialize -> parse preserves topology, heights and cost."""

    name = "newick"

    #: Serialization precision used for the round trip; 12 fixed decimals
    #: keep the reconstruction error orders of magnitude below the
    #: comparison tolerance for any realistic height.
    precision = 12
    height_atol = 1e-6

    def check(self, ctx: VerificationContext) -> List[Violation]:
        from repro.tree.compare import robinson_foulds
        from repro.tree.newick import parse_newick, to_newick

        text = to_newick(ctx.tree, precision=self.precision)
        parsed = parse_newick(text)
        violations: List[Violation] = []
        if sorted(parsed.leaf_labels) != sorted(ctx.tree.leaf_labels):
            violations.append(
                Violation(
                    self.name,
                    "round trip changed the leaf set",
                    {"newick": text},
                )
            )
            return violations
        rf = robinson_foulds(ctx.tree, parsed)
        if rf != 0:
            violations.append(
                Violation(
                    self.name,
                    f"round trip changed the topology "
                    f"(Robinson-Foulds distance {rf})",
                    {"robinson_foulds": int(rf), "newick": text},
                )
            )
        original = ctx.tree.distance_matrix(ctx.tree.leaf_labels)
        reparsed = parsed.distance_matrix(ctx.tree.leaf_labels)
        drift = float(np.abs(original.values - reparsed.values).max())
        if drift > self.height_atol:
            violations.append(
                Violation(
                    self.name,
                    f"round trip drifted an induced distance by {drift:.3g}",
                    {"max_drift": drift, "newick": text},
                )
            )
        cost_drift = abs(parsed.cost() - ctx.tree.cost())
        cost_tol = self.height_atol * max(1.0, abs(ctx.tree.cost()))
        if cost_drift > cost_tol:
            violations.append(
                Violation(
                    self.name,
                    f"round trip drifted the cost by {cost_drift:.3g}",
                    {"cost_drift": float(cost_drift), "newick": text},
                )
            )
        return violations


DEFAULT_ORACLES: Sequence[Oracle] = (
    LabelsOracle(),
    StructureOracle(),
    FeasibilityOracle(),
    CostOracle(),
    NewickOracle(),
)

#: Names of the default oracles, in execution order.
ORACLE_NAMES = tuple(oracle.name for oracle in DEFAULT_ORACLES)


def run_oracles(
    tree: UltrametricTree,
    matrix: DistanceMatrix,
    *,
    reported_cost: Optional[float] = None,
    method: Optional[str] = None,
    oracles: Optional[Sequence[Oracle]] = None,
    recorder=None,
    metrics=None,
) -> List[Violation]:
    """Run every oracle over one construction result.

    Returns all violations found (empty means the result is clean).
    With a ``recorder`` each oracle executes inside a ``verify.oracle``
    span (attrs: ``oracle``, ``method``, ``violations``); with a
    ``metrics`` registry every violation bumps the
    ``verify.violations{oracle=...}`` counter -- the serving layer's
    always-on signal that an engine started lying.
    """
    from repro.obs.metrics import as_metrics
    from repro.obs.recorder import as_recorder

    rec = as_recorder(recorder)
    registry = as_metrics(metrics)
    ctx = VerificationContext(
        tree=tree, matrix=matrix, reported_cost=reported_cost, method=method
    )
    violations: List[Violation] = []
    counter = registry.counter(
        "verify.violations",
        "Oracle violations found by result verification.",
        labelnames=("oracle",),
    )
    for oracle in oracles if oracles is not None else DEFAULT_ORACLES:
        with rec.span(
            "verify.oracle", oracle=oracle.name, method=method or ""
        ) as span:
            found = oracle(ctx)
            if rec.enabled:
                span.attrs["violations"] = len(found)
        if found:
            counter.inc(len(found), oracle=oracle.name)
        violations.extend(found)
    return violations
