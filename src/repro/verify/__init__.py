"""Differential & metamorphic verification of tree construction.

The paper's claims rest on machine-checkable invariants: every returned
tree is ultrametric and dominates the input matrix, every exact engine
agrees on the optimal cost, and the compact-set pipeline's cost lands
between the exact optimum and the UPGMM upper bound.  This package turns
those invariants into a first-class subsystem:

* :mod:`repro.verify.oracles` -- a uniform :class:`Oracle` protocol over
  the single-tree invariants (structure, feasibility, cost consistency,
  Newick round-trip, label preservation), producing structured
  :class:`Violation` records;
* :mod:`repro.verify.differential` -- the cross-engine harness (exact
  engines agree; compact lands in ``[exact, upgmm]``; every tree passes
  every oracle);
* :mod:`repro.verify.metamorphic` -- input transformations with known
  expected effects (permutation, scaling, leaf subsets);
* :mod:`repro.verify.fuzz` -- a seeded, reproducible fuzz loop over the
  matrix families with a greedy corpus shrinker.

Surfaces: ``repro-mut verify`` / ``repro-mut fuzz`` on the CLI,
``verify: true`` on ``POST /solve``, ``verify.oracle`` spans in the
trace stream and ``verify.violations{oracle}`` in the metrics registry.
See ``docs/verification.md``.
"""

from repro.verify.oracles import (
    DEFAULT_ORACLES,
    Oracle,
    VerificationContext,
    Violation,
    run_oracles,
)
from repro.verify.differential import (
    BRACKET_METHODS,
    DEFAULT_DIFFERENTIAL_METHODS,
    EXACT_METHODS,
    DifferentialReport,
    MethodOutcome,
    run_differential,
)
from repro.verify.metamorphic import (
    DEFAULT_RELATIONS,
    MetamorphicRelation,
    run_metamorphic,
)
from repro.verify.fuzz import (
    FAMILIES,
    FuzzFailure,
    FuzzReport,
    run_fuzz,
    shrink_matrix,
    verify_matrix,
)

__all__ = [
    "Violation",
    "Oracle",
    "VerificationContext",
    "DEFAULT_ORACLES",
    "run_oracles",
    "EXACT_METHODS",
    "BRACKET_METHODS",
    "DEFAULT_DIFFERENTIAL_METHODS",
    "MethodOutcome",
    "DifferentialReport",
    "run_differential",
    "MetamorphicRelation",
    "DEFAULT_RELATIONS",
    "run_metamorphic",
    "FAMILIES",
    "FuzzReport",
    "FuzzFailure",
    "run_fuzz",
    "shrink_matrix",
    "verify_matrix",
]
