"""Cross-engine differential verification.

Five engines can answer the same question (four exactly, one within a
proven bracket), which makes the repository its own oracle:

* the exact engines -- sequential Algorithm BBU with the batched
  branching kernel (``bnb``) and with the scalar reference loop
  (``bnb-scalar``), the simulated cluster (``parallel-bnb``) and the
  real multi-core engine (``multiprocess``) -- must agree on the
  optimal cost to 1e-9;
* the compact-set pipeline's cost must land in ``[exact, upgmm]``: it is
  exact inside every compact set, so it can never beat the optimum, and
  the paper proves it never loses to the UPGMM upper bound;
* every feasible method's cost must be at least the exact optimum;
* every method's tree must pass every single-tree oracle.

:func:`run_differential` runs a configurable set of methods over one
matrix and folds everything into a :class:`DifferentialReport` whose
``violations`` use the same :class:`~repro.verify.oracles.Violation`
vocabulary as the oracles (oracle names ``differential.*``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.matrix.distance_matrix import DistanceMatrix
from repro.verify.oracles import Oracle, Violation, run_oracles

__all__ = [
    "EXACT_METHODS",
    "BRACKET_METHODS",
    "FEASIBLE_HEURISTICS",
    "DEFAULT_DIFFERENTIAL_METHODS",
    "MethodOutcome",
    "DifferentialReport",
    "run_differential",
]

#: Methods that must find the exact minimum ultrametric tree.
#: ``bnb`` branches with the batched kernel and ``bnb-scalar`` with the
#: per-child reference loop, so every differential run doubles as a
#: kernel-vs-scalar equivalence check.
EXACT_METHODS: Tuple[str, ...] = (
    "bnb", "bnb-scalar", "parallel-bnb", "multiprocess"
)

#: Methods whose cost is proven to land in ``[exact, upgmm]``.
BRACKET_METHODS: Tuple[str, ...] = ("compact", "compact-parallel")

#: Heuristics that always return a *feasible* tree (``d_T >= M``), hence
#: an upper bound on the optimum.  UPGMA is deliberately absent: it is
#: the classical average-linkage heuristic and routinely violates
#: feasibility, which is the paper's very motivation for UPGMM.
FEASIBLE_HEURISTICS: Tuple[str, ...] = ("upgmm", "greedy")

#: The default differential matrix: all four engines plus the feasible
#: heuristics that define the bracket's upper end.
DEFAULT_DIFFERENTIAL_METHODS: Tuple[str, ...] = (
    EXACT_METHODS + BRACKET_METHODS[:1] + FEASIBLE_HEURISTICS[:1]
)

#: Relative agreement tolerance between exact engines ("to 1e-9").
EXACT_RTOL = 1e-9
#: Bracket checks allow a hair more slack for float accumulation.
BRACKET_RTOL = 1e-7


@dataclass
class MethodOutcome:
    """One method's result inside a differential run."""

    method: str
    cost: Optional[float] = None
    violations: List[Violation] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations

    def to_json(self) -> dict:
        return {
            "method": self.method,
            "cost": self.cost,
            "error": self.error,
            "violations": [v.to_json() for v in self.violations],
        }


@dataclass
class DifferentialReport:
    """Everything a differential run over one matrix established."""

    n_species: int
    outcomes: Dict[str, MethodOutcome]
    cross_violations: List[Violation] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        """Per-method oracle violations plus the cross-engine ones."""
        found: List[Violation] = []
        for outcome in self.outcomes.values():
            found.extend(outcome.violations)
        found.extend(self.cross_violations)
        return found

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exact_cost(self) -> Optional[float]:
        """The agreed exact optimum (first exact engine that ran)."""
        for method in EXACT_METHODS:
            outcome = self.outcomes.get(method)
            if outcome is not None and outcome.cost is not None:
                return outcome.cost
        return None

    def to_json(self) -> dict:
        return {
            "n_species": self.n_species,
            "ok": self.ok,
            "exact_cost": self.exact_cost,
            "methods": {
                name: outcome.to_json()
                for name, outcome in self.outcomes.items()
            },
            "cross_violations": [
                v.to_json() for v in self.cross_violations
            ],
        }


def _relative_gap(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(a), abs(b))


def run_differential(
    matrix: DistanceMatrix,
    methods: Sequence[str] = DEFAULT_DIFFERENTIAL_METHODS,
    *,
    build_fn: Optional[Callable] = None,
    oracles: Optional[Sequence[Oracle]] = None,
    recorder=None,
    metrics=None,
) -> DifferentialReport:
    """Cross-check ``methods`` against each other on one matrix.

    ``build_fn`` defaults to :func:`repro.core.api.construct_tree`;
    tests inject corrupted builders here to prove the harness catches
    them.  ``recorder``/``metrics`` are forwarded to the oracle layer
    (``verify.oracle`` spans, ``verify.violations`` counters).
    """
    from repro.core.api import METHODS, construct_tree

    build = build_fn or construct_tree
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        raise ValueError(
            f"unknown methods {unknown}; choose from {METHODS}"
        )
    outcomes: Dict[str, MethodOutcome] = {}
    for method in methods:
        outcome = MethodOutcome(method)
        outcomes[method] = outcome
        try:
            result = build(matrix, method)
        except Exception as exc:  # noqa: BLE001 - engine isolation boundary
            outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.violations.append(
                Violation(
                    "differential.engine",
                    f"method {method!r} raised {outcome.error}",
                    {"method": method},
                )
            )
            continue
        outcome.cost = float(result.cost)
        if method != "nj":  # NJ trees are additive, not ultrametric
            outcome.violations.extend(
                run_oracles(
                    result.tree,
                    matrix,
                    reported_cost=result.cost,
                    method=method,
                    oracles=oracles,
                    recorder=recorder,
                    metrics=metrics,
                )
            )

    cross = _cross_checks(outcomes)
    return DifferentialReport(
        n_species=matrix.n, outcomes=outcomes, cross_violations=cross
    )


def _cross_checks(outcomes: Dict[str, MethodOutcome]) -> List[Violation]:
    violations: List[Violation] = []
    exact = {
        m: outcomes[m].cost
        for m in EXACT_METHODS
        if m in outcomes and outcomes[m].cost is not None
    }
    if len(exact) >= 2:
        reference_method, reference = next(iter(exact.items()))
        for method, cost in exact.items():
            if _relative_gap(cost, reference) > EXACT_RTOL:
                violations.append(
                    Violation(
                        "differential.exact_agreement",
                        f"exact engines disagree: {method}={cost:.12g} vs "
                        f"{reference_method}={reference:.12g}",
                        {
                            "method": method,
                            "cost": cost,
                            "reference_method": reference_method,
                            "reference_cost": reference,
                        },
                    )
                )
    optimum = min(exact.values()) if exact else None

    upper = None
    upper_method = None
    for m in FEASIBLE_HEURISTICS:
        cost = outcomes.get(m) and outcomes[m].cost
        if cost is not None:
            upper, upper_method = cost, m
            break

    for m in BRACKET_METHODS:
        outcome = outcomes.get(m)
        if outcome is None or outcome.cost is None:
            continue
        tolerance_floor = (
            BRACKET_RTOL * max(1.0, abs(optimum)) if optimum is not None
            else math.inf
        )
        if optimum is not None and outcome.cost < optimum - tolerance_floor:
            violations.append(
                Violation(
                    "differential.bracket",
                    f"{m} cost {outcome.cost:.12g} below the exact optimum "
                    f"{optimum:.12g} (infeasible or buggy)",
                    {"method": m, "cost": outcome.cost, "optimum": optimum},
                )
            )
        if upper is not None and outcome.cost > upper + BRACKET_RTOL * max(
            1.0, abs(upper)
        ):
            violations.append(
                Violation(
                    "differential.bracket",
                    f"{m} cost {outcome.cost:.12g} above the {upper_method} "
                    f"upper bound {upper:.12g}",
                    {"method": m, "cost": outcome.cost, "upper": upper},
                )
            )

    if optimum is not None:
        for m in FEASIBLE_HEURISTICS:
            outcome = outcomes.get(m)
            if outcome is None or outcome.cost is None:
                continue
            if outcome.cost < optimum - BRACKET_RTOL * max(1.0, abs(optimum)):
                violations.append(
                    Violation(
                        "differential.optimality",
                        f"feasible heuristic {m} reported cost "
                        f"{outcome.cost:.12g} below the exact optimum "
                        f"{optimum:.12g}",
                        {"method": m, "cost": outcome.cost, "optimum": optimum},
                    )
                )
    return violations
