"""Seeded fuzzing over matrix families, with a greedy corpus shrinker.

The fuzz loop draws matrices from every generator family in
:mod:`repro.matrix.generators` plus the degenerate families the
generators cannot produce (all-ties, near-ultrametric with additive
noise), verifies each one differentially and metamorphically, and --
when something breaks -- *shrinks* the failing matrix (drop leaves,
round entries) before writing it to a corpus directory as PHYLIP plus a
JSON sidecar holding the violations and the exact one-line repro
command.

Everything is derived deterministically from one master seed
(``numpy.random.SeedSequence`` spawning a child per iteration), so
``repro-mut fuzz --seed S --budget N`` replays bit-identically and a CI
failure is reproducible from the seed it prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.generators import (
    clustered_matrix,
    hierarchical_matrix,
    perturbed_ultrametric_matrix,
    random_metric_matrix,
    random_ultrametric_matrix,
)
from repro.matrix.repair import metric_closure
from repro.verify.differential import (
    DEFAULT_DIFFERENTIAL_METHODS,
    EXACT_METHODS,
    run_differential,
)
from repro.verify.metamorphic import run_metamorphic
from repro.verify.oracles import Violation

__all__ = [
    "FAMILIES",
    "FuzzFailure",
    "FuzzReport",
    "INGEST_MUTATIONS",
    "IngestFuzzFailure",
    "IngestFuzzReport",
    "run_fuzz",
    "run_ingest_fuzz",
    "shrink_matrix",
    "verify_matrix",
]


# ----------------------------------------------------------------------
# matrix families
# ----------------------------------------------------------------------
def _family_random_int(rng: np.random.Generator, n: int) -> DistanceMatrix:
    return random_metric_matrix(n, rng)


def _family_random_float(rng: np.random.Generator, n: int) -> DistanceMatrix:
    return random_metric_matrix(n, rng, integer=False)


def _family_clustered(rng: np.random.Generator, n: int) -> DistanceMatrix:
    sizes: List[int] = []
    remaining = n
    while remaining > 0:
        size = int(rng.integers(1, min(4, remaining) + 1))
        sizes.append(size)
        remaining -= size
    return clustered_matrix(sizes, rng)


def _family_hierarchical(rng: np.random.Generator, n: int) -> DistanceMatrix:
    half = max(1, n // 2)
    return hierarchical_matrix([[half, max(1, n - half - 1)], [1]], rng)


def _family_ultrametric(rng: np.random.Generator, n: int) -> DistanceMatrix:
    return random_ultrametric_matrix(n, rng)


def _family_perturbed(rng: np.random.Generator, n: int) -> DistanceMatrix:
    return perturbed_ultrametric_matrix(n, rng, noise=0.2)


def _family_all_ties(rng: np.random.Generator, n: int) -> DistanceMatrix:
    # Every off-diagonal distance identical: the degenerate extreme of
    # tie-breaking, where every topology is optimal.
    d = float(rng.integers(1, 50))
    values = np.full((n, n), d)
    np.fill_diagonal(values, 0.0)
    return DistanceMatrix(values, validate=False)


def _family_near_ultrametric_noise(
    rng: np.random.Generator, n: int
) -> DistanceMatrix:
    # Ultrametric plus tiny *additive* noise, re-repaired: distances
    # whose comparisons sit within numerical tolerance of each other.
    clean = random_ultrametric_matrix(n, rng)
    noise = rng.uniform(0.0, 1e-6, size=(n, n))
    noise = np.triu(noise, k=1)
    noise = noise + noise.T
    return metric_closure(
        DistanceMatrix(clean.values + noise, clean.labels, validate=False)
    )


FAMILIES: Dict[str, Callable[[np.random.Generator, int], DistanceMatrix]] = {
    "random-int": _family_random_int,
    "random-float": _family_random_float,
    "clustered": _family_clustered,
    "hierarchical": _family_hierarchical,
    "ultrametric": _family_ultrametric,
    "perturbed": _family_perturbed,
    "all-ties": _family_all_ties,
    "near-ultrametric-noise": _family_near_ultrametric_noise,
}


# ----------------------------------------------------------------------
# one-case verification (also the CLI `repro-mut verify` engine)
# ----------------------------------------------------------------------
def verify_matrix(
    matrix: DistanceMatrix,
    methods: Sequence[str] = DEFAULT_DIFFERENTIAL_METHODS,
    *,
    seed: int = 0,
    metamorphic: bool = True,
    metamorphic_method: Optional[str] = None,
    build_fn: Optional[Callable] = None,
    recorder=None,
    metrics=None,
) -> List[Violation]:
    """Full verification of one matrix: differential + metamorphic.

    Returns every violation found.  ``metamorphic_method`` defaults to
    the first exact method in ``methods`` (metamorphic relations need
    the optimum's invariances); metamorphic checks are skipped entirely
    when no exact method is requested.
    """
    report = run_differential(
        matrix, methods, build_fn=build_fn, recorder=recorder, metrics=metrics
    )
    violations = report.violations
    if metamorphic:
        target = metamorphic_method or next(
            (m for m in methods if m in EXACT_METHODS), None
        )
        if target is not None:
            violations = violations + run_metamorphic(
                matrix, target, seed=seed, build_fn=build_fn
            )
    return violations


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_matrix(
    matrix: DistanceMatrix,
    still_fails: Callable[[DistanceMatrix], object],
    *,
    min_species: int = 3,
    max_rounds: int = 8,
) -> DistanceMatrix:
    """Greedily minimise a failing matrix while it keeps failing.

    ``still_fails`` returns a truthy value (e.g. the violation list)
    when the candidate matrix still reproduces the failure.

    Two reduction moves, applied to fixpoint (bounded by
    ``max_rounds``):

    * **drop a leaf** -- try removing each species in turn; keep the
      first removal that still fails and restart the scan;
    * **round entries** -- try rounding every entry to ``k`` decimals
      for growing ``k``; keep the coarsest rounding that is still a
      metric (so the shrunken case stays a legal input) and still fails.

    ``still_fails`` must be deterministic for the shrink to make sense;
    the fuzz loop passes a closure over a fixed seed.
    """
    current = matrix
    for _ in range(max_rounds):
        changed = False
        # Move 1: drop leaves, one at a time.
        index = 0
        while current.n > min_species and index < current.n:
            keep = [i for i in range(current.n) if i != index]
            candidate = current.submatrix(keep)
            if still_fails(candidate):
                current = candidate
                changed = True
                index = 0
            else:
                index += 1
        # Move 2: round entries to the coarsest still-failing precision.
        for decimals in range(0, 7):
            rounded = np.round(current.values, decimals)
            if np.array_equal(rounded, current.values):
                break
            candidate = DistanceMatrix(
                rounded, current.labels, validate=False
            )
            if candidate.is_metric() and still_fails(candidate):
                current = candidate
                changed = True
                break
        if not changed:
            break
    return current


# ----------------------------------------------------------------------
# the fuzz loop
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One failing case, after shrinking, as written to the corpus."""

    iteration: int
    family: str
    n_species: int
    violations: List[Violation]
    matrix: DistanceMatrix
    shrunk_n_species: int
    corpus_path: Optional[str] = None
    meta_path: Optional[str] = None
    repro_command: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "iteration": self.iteration,
            "family": self.family,
            "n_species": self.n_species,
            "shrunk_n_species": self.shrunk_n_species,
            "violations": [v.to_json() for v in self.violations],
            "corpus_path": self.corpus_path,
            "meta_path": self.meta_path,
            "repro_command": self.repro_command,
        }


@dataclass
class FuzzReport:
    """Outcome of one ``run_fuzz`` campaign."""

    seed: int
    budget: int
    cases_run: int = 0
    families: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases_run": self.cases_run,
            "families": dict(self.families),
            "ok": self.ok,
            "failures": [f.to_json() for f in self.failures],
        }


def _case_checker(
    methods: Sequence[str],
    case_seed: int,
    *,
    metamorphic: bool,
    build_fn: Optional[Callable],
) -> Callable[[DistanceMatrix], List[Violation]]:
    """A deterministic per-case verifier (shared by first run and shrink)."""

    def check(m: DistanceMatrix) -> List[Violation]:
        return verify_matrix(
            m,
            methods,
            seed=case_seed,
            metamorphic=metamorphic,
            build_fn=build_fn,
        )

    return check


def _repro_command(corpus_path: str, methods: Sequence[str]) -> str:
    return (
        f"repro-mut verify {corpus_path} --methods {','.join(methods)}"
    )


def run_fuzz(
    seed: int = 0,
    budget: int = 100,
    *,
    methods: Sequence[str] = DEFAULT_DIFFERENTIAL_METHODS,
    min_species: int = 4,
    max_species: int = 9,
    corpus_dir: Optional[str] = "corpus",
    metamorphic_every: int = 4,
    max_failures: int = 5,
    build_fn: Optional[Callable] = None,
    progress: Optional[Callable[[int, str], None]] = None,
) -> FuzzReport:
    """Run ``budget`` seeded verification cases; shrink and save failures.

    Each iteration derives its own child seed from the master ``seed``,
    cycles deterministically through :data:`FAMILIES`, draws a size in
    ``[min_species, max_species]`` and verifies the matrix with
    :func:`verify_matrix` (metamorphic relations every
    ``metamorphic_every``-th case -- they re-solve the instance several
    times).  A failing case is shrunk with :func:`shrink_matrix` and
    written to ``corpus_dir`` (created on demand; nothing is written on
    a clean run).  The campaign stops early after ``max_failures``
    distinct failures -- a systematically broken engine would otherwise
    flood the corpus with duplicates.

    ``build_fn`` substitutes the construction entry point (the mutation
    tests inject deliberately broken builders); ``progress`` receives
    ``(iteration, family)`` before each case for CLI feedback.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if not 3 <= min_species <= max_species:
        raise ValueError(
            "need 3 <= min_species <= max_species, got "
            f"{min_species}..{max_species}"
        )
    family_names = list(FAMILIES)
    children = np.random.SeedSequence(seed).spawn(budget)
    report = FuzzReport(seed=seed, budget=budget)
    for iteration in range(budget):
        family = family_names[iteration % len(family_names)]
        if progress is not None:
            progress(iteration, family)
        rng = np.random.default_rng(children[iteration])
        n = int(rng.integers(min_species, max_species + 1))
        matrix = FAMILIES[family](rng, n)
        case_seed = seed + iteration
        report.cases_run += 1
        report.families[family] = report.families.get(family, 0) + 1
        check = _case_checker(
            methods,
            case_seed,
            metamorphic=iteration % metamorphic_every == 0,
            build_fn=build_fn,
        )
        violations = check(matrix)
        if not violations:
            continue

        shrunk = shrink_matrix(matrix, check)
        failure = FuzzFailure(
            iteration=iteration,
            family=family,
            n_species=matrix.n,
            violations=check(shrunk) or violations,
            matrix=shrunk,
            shrunk_n_species=shrunk.n,
        )
        if corpus_dir is not None:
            _write_corpus_entry(failure, corpus_dir, seed, methods)
        report.failures.append(failure)
        if len(report.failures) >= max_failures:
            break
    return report


# ----------------------------------------------------------------------
# ingestion fuzzing: mutated FASTA through the lenient pipeline
# ----------------------------------------------------------------------
#: FASTA mutation operators, cycled deterministically per iteration.
INGEST_MUTATIONS = (
    "ambiguity",
    "truncate",
    "duplicate-id",
    "blank-lines",
    "case-noise",
    "crlf",
    "drop-header",
    "garbage",
)


def _mutate_fasta(text: str, mutation: str, rng: np.random.Generator) -> str:
    """Apply one mutation operator to FASTA text.

    Operators model the damage real uploads actually carry: ambiguity
    smears, files cut off mid-transfer, copy-pasted duplicate records,
    editor artifacts (blank lines, case, CRLF), lost headers and stray
    garbage characters.  Every operator is deterministic given ``rng``.
    """
    lines = text.splitlines()
    if mutation == "ambiguity":
        codes = "RYSWKMBDHVN"
        out = []
        for line in lines:
            if line.startswith(">") or not line:
                out.append(line)
                continue
            chars = list(line)
            for i in range(len(chars)):
                if rng.random() < 0.15:
                    chars[i] = codes[int(rng.integers(0, len(codes)))]
            out.append("".join(chars))
        return "\n".join(out) + "\n"
    if mutation == "truncate":
        cut = int(rng.integers(max(1, len(text) * 2 // 3), len(text) + 1))
        return text[:cut]
    if mutation == "duplicate-id":
        headers = [i for i, line in enumerate(lines) if line.startswith(">")]
        if len(headers) >= 2:
            src, dst = rng.choice(headers, size=2, replace=False)
            lines[int(dst)] = lines[int(src)]
        return "\n".join(lines) + "\n"
    if mutation == "blank-lines":
        out = []
        for line in lines:
            out.append(line)
            if rng.random() < 0.2:
                out.append("")
        return "\n".join(out) + "\n"
    if mutation == "case-noise":
        return "".join(
            c.lower() if rng.random() < 0.5 else c for c in text
        )
    if mutation == "crlf":
        return "\r\n".join(lines) + "\r\n"
    if mutation == "drop-header":
        headers = [i for i, line in enumerate(lines) if line.startswith(">")]
        if headers:
            victim = int(rng.choice(headers))
            del lines[victim]
        return "\n".join(lines) + "\n"
    if mutation == "garbage":
        junk = "0123456789!@#*"
        out = []
        for line in lines:
            if line.startswith(">") or not line:
                out.append(line)
                continue
            chars = list(line)
            for i in range(len(chars)):
                if rng.random() < 0.05:
                    chars[i] = junk[int(rng.integers(0, len(junk)))]
            out.append("".join(chars))
        return "\n".join(out) + "\n"
    raise ValueError(f"unknown mutation {mutation!r}")


@dataclass
class IngestFuzzFailure:
    """One FASTA input the ingestion pipeline mishandled."""

    iteration: int
    mutation: str
    detail: str
    fasta: str
    corpus_path: Optional[str] = None
    meta_path: Optional[str] = None
    repro_command: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "iteration": self.iteration,
            "mutation": self.mutation,
            "detail": self.detail,
            "corpus_path": self.corpus_path,
            "meta_path": self.meta_path,
            "repro_command": self.repro_command,
        }


@dataclass
class IngestFuzzReport:
    """Outcome of one ``run_ingest_fuzz`` campaign."""

    seed: int
    budget: int
    cases_run: int = 0
    mutations: Dict[str, int] = field(default_factory=dict)
    failures: List[IngestFuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases_run": self.cases_run,
            "mutations": dict(self.mutations),
            "ok": self.ok,
            "failures": [f.to_json() for f in self.failures],
        }


def _ingest_case_failure(fasta_text: str, distance: str) -> Optional[str]:
    """Run one FASTA through the lenient pipeline; describe any breakage.

    The pipeline's contract under fuzzing: *whatever* the input, it must
    either build a tree or record structured rejections -- never raise,
    never hand the solver a non-metric matrix, never produce a manifest
    that does not serialise to JSON.  Returns a human description of the
    broken property, or ``None`` when the contract held.
    """
    from repro.ingest import run_pipeline

    try:
        outcome = run_pipeline(
            fasta_text,
            text=True,
            distance=distance,
            tree_method="upgmm",
            mode="lenient",
        )
    except Exception as exc:  # noqa: BLE001 - the contract is "never raise"
        return f"pipeline raised {type(exc).__name__}: {exc}"
    try:
        json.dumps(outcome.manifest.to_json())
    except (TypeError, ValueError) as exc:
        return f"manifest not JSON-serialisable: {exc}"
    if outcome.manifest.status == "failed":
        if not outcome.manifest.rejections:
            return "failed run recorded no rejections"
        return None
    if outcome.matrix is None:
        return f"status {outcome.manifest.status} but no matrix produced"
    if not outcome.matrix.is_metric():
        return "pipeline emitted a non-metric matrix after repair"
    return None


def run_ingest_fuzz(
    seed: int = 0,
    budget: int = 50,
    *,
    seed_files: Optional[Sequence] = None,
    distance: str = "p",
    corpus_dir: Optional[str] = "corpus",
    max_failures: int = 5,
    progress: Optional[Callable[[int, str], None]] = None,
) -> IngestFuzzReport:
    """Fuzz the ingestion pipeline with mutated FASTA inputs.

    Seeds come from ``seed_files`` (paths to ``.fasta`` files -- the
    golden corpus in CI) or, when none are given, from synthetic
    HMDNA-style datasets.  Each iteration derives a child seed from the
    master ``seed``, picks a base file and a mutation operator
    deterministically, mutates, and runs the *lenient* pipeline
    end to end.  Any uncaught exception, non-metric output matrix or
    non-JSON manifest is a failure; the mutated FASTA is archived to
    ``corpus_dir`` with a sidecar holding the detail and a working
    ``repro-mut ingest`` repro command.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    bases: List[str] = []
    if seed_files:
        for path in seed_files:
            bases.append(Path(path).read_text())
    else:
        from repro.sequences.fasta import write_fasta
        from repro.sequences.hmdna import generate_hmdna_dataset
        import io

        for i in range(3):
            dataset = generate_hmdna_dataset(
                n_species=6 + i, seed=seed + i, sequence_length=80
            )
            buffer = io.StringIO()
            write_fasta(dataset.sequences, buffer)
            bases.append(buffer.getvalue())
    if not bases:
        raise ValueError("no seed FASTA inputs")

    children = np.random.SeedSequence(seed).spawn(budget)
    report = IngestFuzzReport(seed=seed, budget=budget)
    for iteration in range(budget):
        mutation = INGEST_MUTATIONS[iteration % len(INGEST_MUTATIONS)]
        if progress is not None:
            progress(iteration, mutation)
        rng = np.random.default_rng(children[iteration])
        base = bases[int(rng.integers(0, len(bases)))]
        mutated = _mutate_fasta(base, mutation, rng)
        report.cases_run += 1
        report.mutations[mutation] = report.mutations.get(mutation, 0) + 1
        detail = _ingest_case_failure(mutated, distance)
        if detail is None:
            continue
        failure = IngestFuzzFailure(
            iteration=iteration,
            mutation=mutation,
            detail=detail,
            fasta=mutated,
        )
        if corpus_dir is not None:
            _write_ingest_corpus_entry(failure, corpus_dir, seed, distance)
        report.failures.append(failure)
        if len(report.failures) >= max_failures:
            break
    return report


def _write_ingest_corpus_entry(
    failure: IngestFuzzFailure,
    corpus_dir: str,
    master_seed: int,
    distance: str,
) -> None:
    from repro.version import engine_fingerprint

    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"ingest-seed{master_seed}-case{failure.iteration}"
    fasta_path = directory / f"{stem}.fasta"
    meta_path = directory / f"{stem}.json"
    fasta_path.write_text(failure.fasta)
    failure.corpus_path = str(fasta_path)
    failure.meta_path = str(meta_path)
    failure.repro_command = (
        f"repro-mut ingest {fasta_path} --distance {distance} "
        f"--mode lenient --method upgmm "
        f"--manifest {directory / (stem + '.manifest.json')}"
    )
    meta_path.write_text(
        json.dumps(
            {
                "master_seed": master_seed,
                "iteration": failure.iteration,
                "mutation": failure.mutation,
                "detail": failure.detail,
                "engine_fingerprint": engine_fingerprint(),
                "repro_command": failure.repro_command,
            },
            indent=2,
        )
        + "\n"
    )


def _write_corpus_entry(
    failure: FuzzFailure,
    corpus_dir: str,
    master_seed: int,
    methods: Sequence[str],
) -> None:
    from repro.matrix.io import write_phylip
    from repro.version import engine_fingerprint

    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"fail-seed{master_seed}-case{failure.iteration}"
    phy_path = directory / f"{stem}.phy"
    meta_path = directory / f"{stem}.json"
    write_phylip(failure.matrix, phy_path)
    failure.corpus_path = str(phy_path)
    failure.meta_path = str(meta_path)
    failure.repro_command = _repro_command(str(phy_path), methods)
    meta_path.write_text(
        json.dumps(
            {
                "master_seed": master_seed,
                "iteration": failure.iteration,
                "family": failure.family,
                "original_n_species": failure.n_species,
                "shrunk_n_species": failure.shrunk_n_species,
                "matrix_digest": failure.matrix.digest(),
                "engine_fingerprint": engine_fingerprint(),
                "methods": list(methods),
                "violations": [v.to_json() for v in failure.violations],
                "repro_command": failure.repro_command,
            },
            indent=2,
        )
        + "\n"
    )
