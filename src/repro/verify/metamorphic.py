"""Metamorphic verification: transformed inputs with known effects.

When no second implementation is available (or the exact engines are too
slow), we can still check a method against *itself* by transforming the
input in ways whose effect on the output is provable:

=====================  ================================================
permutation            relabelling/reordering the species changes
                       nothing semantic: the cost is identical (and for
                       deterministic methods the tree is isomorphic)
scaling by ``c > 0``   every height scales by ``c``, so the cost scales
                       by exactly ``c``
leaf subset            restricting an optimal tree to a leaf subset
                       stays feasible for the submatrix, so the exact
                       optimum can only go *down*: ``opt(M|S) <=
                       opt(M)`` (exact methods only)
=====================  ================================================

Topology is deliberately *not* compared under permutation: tied optima
are common on integer matrices and tie-breaking is order-dependent, so
only the cost (which is permutation-invariant by definition) is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix
from repro.verify.differential import EXACT_METHODS
from repro.verify.oracles import Violation

__all__ = [
    "MetamorphicRelation",
    "PermutationRelation",
    "ScalingRelation",
    "SubsetRelation",
    "DEFAULT_RELATIONS",
    "run_metamorphic",
]

#: Relative tolerance for cost comparisons under transformation.  The
#: transformed solve re-runs the whole engine, so tiny float-association
#: drift is legitimate; anything above this is a real bug.
COST_RTOL = 1e-8


def _gap(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(a), abs(b))


@dataclass
class MetamorphicRelation:
    """Base class: transform the input, solve again, check the relation."""

    name = "metamorphic"

    def applies_to(self, method: str) -> bool:
        return True

    def check(
        self,
        matrix: DistanceMatrix,
        method: str,
        build: Callable,
        rng: np.random.Generator,
    ) -> List[Violation]:
        raise NotImplementedError

    def __call__(
        self,
        matrix: DistanceMatrix,
        method: str,
        build: Callable,
        rng: np.random.Generator,
    ) -> List[Violation]:
        try:
            return self.check(matrix, method, build, rng)
        except Exception as exc:  # noqa: BLE001 - relation isolation boundary
            return [
                Violation(
                    self.name,
                    f"crashed: {type(exc).__name__}: {exc}",
                    {"method": method, "exception": type(exc).__name__},
                )
            ]


class PermutationRelation(MetamorphicRelation):
    """Species order is irrelevant: the cost must not move at all.

    Restricted to the exact methods: the *optimum* is permutation
    invariant by definition, while heuristics (and the compact-set
    decomposition on matrices with tied distances) may legitimately
    break ties differently under reordering.
    """

    name = "metamorphic.permutation"

    def applies_to(self, method: str) -> bool:
        return method in EXACT_METHODS

    def check(self, matrix, method, build, rng) -> List[Violation]:
        permutation = [int(i) for i in rng.permutation(matrix.n)]
        base = float(build(matrix, method).cost)
        permuted = float(build(matrix.submatrix(permutation), method).cost)
        if _gap(base, permuted) <= COST_RTOL:
            return []
        return [
            Violation(
                self.name,
                f"{method} cost changed under label permutation: "
                f"{base:.12g} -> {permuted:.12g}",
                {
                    "method": method,
                    "base_cost": base,
                    "permuted_cost": permuted,
                    "permutation": permutation,
                },
            )
        ]


class ScalingRelation(MetamorphicRelation):
    """Scaling every distance by ``c`` scales the cost by exactly ``c``."""

    name = "metamorphic.scaling"

    def __init__(self, factor: float = 3.5) -> None:
        if factor <= 0:
            raise ValueError("scaling factor must be positive")
        self.factor = float(factor)

    def check(self, matrix, method, build, rng) -> List[Violation]:
        scaled_matrix = DistanceMatrix(
            matrix.values * self.factor, matrix.labels, validate=False
        )
        base = float(build(matrix, method).cost)
        scaled = float(build(scaled_matrix, method).cost)
        if _gap(scaled, self.factor * base) <= COST_RTOL:
            return []
        return [
            Violation(
                self.name,
                f"{method} cost does not scale linearly: cost(c*M) = "
                f"{scaled:.12g}, c * cost(M) = {self.factor * base:.12g} "
                f"(c = {self.factor:g})",
                {
                    "method": method,
                    "factor": self.factor,
                    "base_cost": base,
                    "scaled_cost": scaled,
                },
            )
        ]


class SubsetRelation(MetamorphicRelation):
    """Exact optimum is monotone under taking leaf subsets.

    Restricting the full optimal tree to a subset of leaves yields a
    feasible ultrametric tree for the submatrix with no greater cost, so
    ``opt(M|S) <= opt(M)``.  Only exact methods promise the optimum, so
    the relation applies to those alone.
    """

    name = "metamorphic.subset"

    def __init__(self, min_keep: int = 3) -> None:
        self.min_keep = int(min_keep)

    def applies_to(self, method: str) -> bool:
        return method in EXACT_METHODS

    def check(self, matrix, method, build, rng) -> List[Violation]:
        if matrix.n <= self.min_keep:
            return []
        keep_count = int(rng.integers(self.min_keep, matrix.n))
        keep = sorted(
            int(i)
            for i in rng.choice(matrix.n, size=keep_count, replace=False)
        )
        full = float(build(matrix, method).cost)
        sub = float(build(matrix.submatrix(keep), method).cost)
        if sub <= full + COST_RTOL * max(1.0, abs(full)):
            return []
        return [
            Violation(
                self.name,
                f"{method} optimum increased on a leaf subset: "
                f"opt(M|S) = {sub:.12g} > opt(M) = {full:.12g}",
                {
                    "method": method,
                    "subset": keep,
                    "subset_cost": sub,
                    "full_cost": full,
                },
            )
        ]


DEFAULT_RELATIONS: Sequence[MetamorphicRelation] = (
    PermutationRelation(),
    ScalingRelation(),
    SubsetRelation(),
)


def run_metamorphic(
    matrix: DistanceMatrix,
    method: str = "bnb",
    *,
    seed: int = 0,
    relations: Optional[Sequence[MetamorphicRelation]] = None,
    build_fn: Optional[Callable] = None,
) -> List[Violation]:
    """Run every applicable metamorphic relation for ``method``.

    The transformations are drawn from a generator seeded with ``seed``,
    so a failing run is reproducible from ``(matrix, method, seed)``
    alone.  ``build_fn`` defaults to
    :func:`repro.core.api.construct_tree`.
    """
    from repro.core.api import construct_tree

    build = build_fn or construct_tree
    rng = np.random.default_rng(seed)
    violations: List[Violation] = []
    for relation in relations if relations is not None else DEFAULT_RELATIONS:
        if not relation.applies_to(method):
            continue
        violations.extend(relation(matrix, method, build, rng))
    return violations
