"""Reusable worker-process lifecycle and supervision primitives.

Two execution shapes in this repository put jobs into child processes,
and both need the same hard guarantees -- a dead or wedged process is
*detected*, reported with a typed error, and never hangs the parent:

* the **one-shot scatter/gather** of :func:`repro.parallel.multiprocess.
  multiprocess_mut` (spawn ``p`` workers, each solves one share of the
  frontier, collect one message per worker) -- served here by
  :func:`gather_one_per_worker`, extracted from that module's original
  ``_gather_results``;
* the **long-lived pool** of the serving layer's process backend (a
  fixed set of worker processes each executing a stream of jobs) --
  served by :class:`WorkerSlot`, a single supervised, respawnable
  worker process.

Failure taxonomy (all :class:`RuntimeError` subclasses, so existing
"supervision raises RuntimeError" contracts keep holding):

:class:`RemoteTaskError`
    The task itself raised in the child; the formatted traceback crossed
    the process boundary and is preserved.  The worker is healthy.
:class:`WorkerCrashed`
    The worker process died (signal, OOM kill, interpreter abort)
    without reporting.  A :class:`WorkerSlot` respawns itself before
    raising, so the slot is immediately usable again.
:class:`WorkerTimeout`
    The caller's deadline passed while the child was still computing.
    The child is *terminated* (its work is unwanted) and the slot
    respawned -- a wedged process cannot hold a slot hostage.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_lib
import time
import traceback
from typing import Callable, Dict, List, Optional

__all__ = [
    "RemoteTaskError",
    "WorkerCrashed",
    "WorkerTimeout",
    "WorkerSlot",
    "emit_slot_progress",
    "gather_one_per_worker",
]

#: Seconds between liveness checks while a parent waits on a child.
DEFAULT_POLL_TIMEOUT = 0.25
#: Consecutive empty polls tolerated after a worker exited cleanly (exit
#: code 0) without its result arriving, before the parent gives up.
#: Covers the short window in which a finished worker's queue feeder
#: thread has written the payload but the pipe is not yet readable.
DEFAULT_LOST_RESULT_GRACE = 20


class RemoteTaskError(RuntimeError):
    """A task raised inside a worker process.

    ``exc_type`` is the original exception class name and ``message``
    its ``str()``; ``remote_traceback`` carries the formatted child-side
    traceback for logs.  ``str(err)`` keeps the historical
    ``"<what> <id> raised:\\n<traceback>"`` shape.
    """

    def __init__(
        self,
        worker_id: int,
        remote_traceback: str,
        *,
        exc_type: str = "Exception",
        message: str = "",
        what: str = "worker",
    ) -> None:
        super().__init__(f"{what} {worker_id} raised:\n{remote_traceback}")
        self.worker_id = worker_id
        self.exc_type = exc_type
        self.message = message
        self.remote_traceback = remote_traceback


class WorkerCrashed(RuntimeError):
    """A worker process died without reporting a result."""

    def __init__(
        self,
        worker_id: int,
        pid: Optional[int],
        exitcode: Optional[int],
        *,
        what: str = "worker",
        detail: str = "before reporting a result",
    ) -> None:
        code = exitcode if exitcode is not None else "unknown"
        super().__init__(
            f"{what} {worker_id} (pid {pid}) died with exit code {code} "
            f"{detail}"
        )
        self.worker_id = worker_id
        self.pid = pid
        self.exitcode = exitcode


class WorkerTimeout(RuntimeError):
    """A deadline passed while a worker process was still computing."""

    def __init__(
        self, worker_id: int, pid: Optional[int], overrun: float,
        *, what: str = "worker",
    ) -> None:
        super().__init__(
            f"{what} {worker_id} (pid {pid}) was terminated "
            f"{overrun:.3f}s past its job's deadline"
        )
        self.worker_id = worker_id
        self.pid = pid
        self.overrun = overrun


# ----------------------------------------------------------------------
# one-shot scatter/gather supervision (extracted from multiprocess.py)
# ----------------------------------------------------------------------
def gather_one_per_worker(
    processes: Dict[int, "multiprocessing.process.BaseProcess"],
    result_queue,
    *,
    arrivals: Optional[Dict[int, float]] = None,
    clock: Optional[Callable[[], float]] = None,
    poll_timeout: float = DEFAULT_POLL_TIMEOUT,
    lost_result_grace: int = DEFAULT_LOST_RESULT_GRACE,
    what: str = "worker",
    on_progress: Optional[Callable] = None,
) -> List[tuple]:
    """Collect one message per worker, supervising worker liveness.

    Messages are ``(kind, worker_id, *rest)`` tuples; ``kind ==
    "error"`` means the worker shipped a formatted traceback (raised as
    :class:`RemoteTaskError`).  ``kind == "progress"`` messages are
    out-of-band telemetry: fed to ``on_progress(worker_id, payload)``
    when supplied (exceptions swallowed), dropped otherwise, and never
    counted against a worker's one expected result.  Raises
    :class:`WorkerCrashed` naming the worker when one dies without
    reporting (non-zero exit code or a lost result).  When
    ``arrivals``/``clock`` are supplied, each worker's result-arrival
    timestamp is recorded so the caller can emit per-worker spans.
    """
    pending = dict(processes)
    results: List[tuple] = []
    clean_exit_polls = 0
    while pending:
        try:
            message = result_queue.get(timeout=poll_timeout)
        except queue_lib.Empty:
            dead_clean = []
            for worker_id, proc in sorted(pending.items()):
                if proc.is_alive():
                    continue
                code = proc.exitcode
                if code not in (0, None):
                    raise WorkerCrashed(
                        worker_id, proc.pid, code, what=what
                    )
                dead_clean.append(worker_id)
            if dead_clean and len(dead_clean) == len(pending):
                clean_exit_polls += 1
                if clean_exit_polls >= lost_result_grace:
                    raise WorkerCrashed(
                        dead_clean[0],
                        pending[dead_clean[0]].pid,
                        0,
                        what=what,
                        detail=(
                            f"(workers {dead_clean} exited cleanly but "
                            f"their results never arrived)"
                        ),
                    )
            continue
        kind, worker_id = message[0], message[1]
        if kind == "progress":
            if on_progress is not None:
                try:
                    on_progress(worker_id, message[2])
                except Exception:  # noqa: BLE001 - telemetry only
                    pass
            continue
        if kind == "error":
            raise RemoteTaskError(worker_id, message[2], what=what)
        pending.pop(worker_id, None)
        if arrivals is not None and clock is not None:
            arrivals[worker_id] = clock()
        results.append(message)
    return results


# ----------------------------------------------------------------------
# long-lived supervised worker slot
# ----------------------------------------------------------------------
#: Sentinel telling a slot's child process to exit its task loop.
_STOP = None

#: Child-process side of the live progress channel: the result queue of
#: the task currently executing in this process, or ``None`` outside a
#: task.  Module-level (not threaded through runner signatures) because
#: the runner is an arbitrary picklable callable the slot must not
#: constrain.
_SLOT_PROGRESS_QUEUE = None


def emit_slot_progress(payload) -> bool:
    """Ship an out-of-band progress message to the parent's ``call()``.

    Valid only inside a :class:`WorkerSlot` task (the child's task loop
    installs the channel around each ``runner(task)``); anywhere else it
    is a no-op returning ``False``.  ``payload`` must be picklable.  The
    parent surfaces these through ``call(..., on_progress=...)``
    *during* the call -- this is how a worker-process solver streams
    incumbent/gap snapshots before its final payload exists.
    """
    q = _SLOT_PROGRESS_QUEUE
    if q is None:
        return False
    q.put(("progress", payload))
    return True


def _slot_main(runner: Callable, task_queue, result_queue) -> None:
    """Child-process task loop: run tasks serially until told to stop.

    Ships ``("ok", result)`` per task, or ``("error", exc_type, message,
    traceback)`` when the task raises -- the worker itself survives task
    exceptions and keeps serving.  While a task runs, the result queue
    doubles as a live progress channel (see :func:`emit_slot_progress`):
    ``("progress", payload)`` messages may precede the final
    ``("ok", ...)`` / ``("error", ...)`` message.
    """
    global _SLOT_PROGRESS_QUEUE
    while True:
        task = task_queue.get()
        if task is _STOP:
            return
        _SLOT_PROGRESS_QUEUE = result_queue
        try:
            result = runner(task)
        except BaseException as exc:  # noqa: BLE001 - process boundary
            result_queue.put(
                (
                    "error",
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
        else:
            result_queue.put(("ok", result))
        finally:
            _SLOT_PROGRESS_QUEUE = None


class WorkerSlot:
    """One supervised worker process executing submitted tasks serially.

    The slot owns a child process plus a private task/result queue pair
    (fresh queues per process generation, so a crash mid-write can never
    poison the next incarnation).  :meth:`call` blocks for the task's
    result while polling child liveness; a crash respawns the slot and
    raises :class:`WorkerCrashed`, a passed deadline terminates the
    child, respawns, and raises :class:`WorkerTimeout` -- the slot is
    always usable after an exception.

    ``runner`` is a callable ``task -> result`` executed in the child.
    Under the ``fork`` start method anything callable works; under
    ``spawn`` it must be picklable (module-level function or partial of
    one).
    """

    def __init__(
        self,
        worker_id: int,
        runner: Callable,
        *,
        start_method: Optional[str] = None,
        poll_timeout: float = DEFAULT_POLL_TIMEOUT,
        lost_result_grace: int = DEFAULT_LOST_RESULT_GRACE,
        name_prefix: str = "repro-slot",
        what: str = "worker process",
    ) -> None:
        from repro.parallel.multiprocess import select_start_method

        self.worker_id = worker_id
        self.runner = runner
        self.start_method = select_start_method(start_method)
        self.poll_timeout = poll_timeout
        self.lost_result_grace = lost_result_grace
        self.name_prefix = name_prefix
        self.what = what
        #: Times this slot replaced a dead/wedged process with a new one.
        self.respawns = 0
        self._ctx = multiprocessing.get_context(self.start_method)
        self._proc: Optional["multiprocessing.process.BaseProcess"] = None
        self._task_q = None
        self._result_q = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> "WorkerSlot":
        """Spawn the child process (idempotent while it is alive)."""
        if not self.alive:
            self._spawn()
        return self

    def _spawn(self) -> None:
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._proc = self._ctx.Process(
            target=_slot_main,
            args=(self.runner, self._task_q, self._result_q),
            name=f"{self.name_prefix}-{self.worker_id}",
            daemon=True,
        )
        self._proc.start()

    def _discard(self, proc) -> None:
        """Drop a dead/unwanted process and its (possibly torn) queues."""
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                q.close()
        self._proc = None
        self._task_q = self._result_q = None

    def _respawn(self, proc) -> None:
        self._discard(proc)
        self.respawns += 1
        self._spawn()

    # ------------------------------------------------------------------
    def call(
        self,
        task,
        *,
        deadline: Optional[float] = None,
        on_progress: Optional[Callable] = None,
    ):
        """Run ``task`` in the child and return its result.

        ``deadline`` is an absolute ``time.time()`` deadline; once it
        passes, the child is terminated and :class:`WorkerTimeout`
        raised.  :class:`WorkerCrashed` / :class:`WorkerTimeout` leave
        the slot respawned; :class:`RemoteTaskError` leaves the original
        (healthy) child in place.

        ``on_progress`` receives the payload of every ``("progress",
        payload)`` message the child emits via :func:`emit_slot_progress`
        *while the call is still blocking* -- live mid-task telemetry,
        delivered in emission order, always before the final result.  A
        raising callback never kills the call (the exception is
        swallowed; telemetry must not take down the job).  Without the
        callback, progress messages are drained and dropped.
        """
        self.start()
        proc = self._proc
        result_q = self._result_q
        self._task_q.put(task)
        clean_exit_polls = 0
        while True:
            try:
                message = result_q.get(timeout=self.poll_timeout)
            except queue_lib.Empty:
                if not proc.is_alive():
                    code = proc.exitcode
                    if code == 0:
                        # A clean exit without a result can race the
                        # queue feeder; give the pipe a bounded grace.
                        clean_exit_polls += 1
                        if clean_exit_polls < self.lost_result_grace:
                            continue
                    pid = proc.pid
                    self._respawn(proc)
                    raise WorkerCrashed(
                        self.worker_id, pid, code, what=self.what,
                        detail="while executing a job",
                    )
                if deadline is not None and time.time() > deadline:
                    pid = proc.pid
                    overrun = max(0.0, time.time() - deadline)
                    self._respawn(proc)
                    raise WorkerTimeout(
                        self.worker_id, pid, overrun, what=self.what,
                    )
                continue
            kind = message[0]
            if kind == "progress":
                if on_progress is not None:
                    try:
                        on_progress(message[1])
                    except Exception:  # noqa: BLE001 - telemetry only
                        pass
                continue
            if kind == "ok":
                return message[1]
            if kind == "error":
                _, exc_type, text, remote_tb = message
                raise RemoteTaskError(
                    self.worker_id, remote_tb,
                    exc_type=exc_type, message=text, what=self.what,
                )
            raise RuntimeError(
                f"{self.what} {self.worker_id} sent an unknown message "
                f"kind {kind!r}"
            )

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the child (sentinel first, terminate if it lingers).

        Returns whether the child exited within ``timeout``.  Idempotent.
        """
        proc = self._proc
        if proc is None:
            return True
        if proc.is_alive():
            try:
                self._task_q.put(_STOP)
            except (OSError, ValueError):  # queue already torn down
                pass
            proc.join(timeout=timeout)
        clean = not proc.is_alive()
        self._discard(proc)
        return clean

    def __enter__(self) -> "WorkerSlot":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
