"""Local and global work pools.

The papers keep BBT nodes in *sorted* pools: workers take the most
promising node (smallest lower bound) for depth-first expansion and, when
the global pool runs dry, donate "the last UT in sorted LP" -- their
least promising node.  :class:`SortedPool` supports both ends in
``O(log n)`` with a lazy-deletion double heap.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Generic, List, Optional, Tuple, TypeVar

__all__ = ["SortedPool"]

T = TypeVar("T")


class SortedPool(Generic[T]):
    """A pool of items ordered by priority (lower = more promising).

    ``pop_best`` returns the smallest-priority item (what a worker
    expands next); ``pop_worst`` returns the largest-priority item (what
    a worker donates to the global pool).  Implemented as two heaps over
    shared entries with tombstones, so both operations stay logarithmic.
    """

    def __init__(self) -> None:
        self._best: List[Tuple[float, int, List]] = []
        self._worst: List[Tuple[float, int, List]] = []
        self._size = 0
        self._counter = count()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, priority: float, item: T) -> None:
        """Insert ``item`` with the given ``priority``."""
        seq = next(self._counter)
        entry = [priority, seq, item, True]  # True = alive
        heapq.heappush(self._best, (priority, seq, entry))
        heapq.heappush(self._worst, (-priority, -seq, entry))
        self._size += 1

    def pop_best(self) -> Optional[T]:
        """Remove and return the most promising item (or ``None``)."""
        while self._best:
            _, _, entry = heapq.heappop(self._best)
            if entry[3]:
                entry[3] = False
                self._size -= 1
                return entry[2]
        return None

    def pop_worst(self) -> Optional[T]:
        """Remove and return the least promising item (or ``None``)."""
        while self._worst:
            _, _, entry = heapq.heappop(self._worst)
            if entry[3]:
                entry[3] = False
                self._size -= 1
                return entry[2]
        return None

    def peek_best_priority(self) -> Optional[float]:
        """Priority of the most promising live item, if any."""
        while self._best and not self._best[0][2][3]:
            heapq.heappop(self._best)
        return self._best[0][0] if self._best else None

    def drain(self) -> List[T]:
        """Remove and return all live items, best first."""
        items: List[T] = []
        while True:
            item = self.pop_best()
            if item is None:
                return items
            items.append(item)
