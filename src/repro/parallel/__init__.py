"""Parallel branch-and-bound on a (simulated) PC cluster.

The papers run Algorithm BBU on a 16-node Linux cluster in a master/slave
paradigm: the master relabels the matrix, seeds the upper bound with
UPGMM, pre-branches the BBT to twice the processor count, sorts those
nodes into the *global pool* and dispatches them cyclically; each slave
then consumes its *local pool* depth-first, broadcasting improved upper
bounds and refilling from (or donating back to) the global pool.

We reproduce that system as a deterministic discrete-event simulation
(:mod:`repro.parallel.simulator`) -- the search dynamics, including the
super-linear speedups the papers report, are scheduling phenomena the
simulator reproduces exactly -- plus a real ``multiprocessing`` engine
(:mod:`repro.parallel.multiprocess`) for end-to-end validation on actual
cores.
"""

from repro.parallel.config import ClusterConfig, grid_config
from repro.parallel.pools import SortedPool
from repro.parallel.simulator import (
    ParallelBranchAndBound,
    ParallelResult,
    WorkerStats,
)
from repro.parallel.multiprocess import multiprocess_mut
from repro.parallel.trace import TraceInterval, worker_utilization, ascii_gantt
from repro.parallel.analysis import (
    ScalingPoint,
    speedup_curve,
    karp_flatt,
    amdahl_bound,
)

__all__ = [
    "ClusterConfig",
    "grid_config",
    "SortedPool",
    "ParallelBranchAndBound",
    "ParallelResult",
    "WorkerStats",
    "multiprocess_mut",
    "TraceInterval",
    "worker_utilization",
    "ascii_gantt",
    "ScalingPoint",
    "speedup_curve",
    "karp_flatt",
    "amdahl_bound",
]
