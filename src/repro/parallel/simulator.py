"""Discrete-event simulation of the master/slave parallel branch-and-bound.

The simulator executes the *identical* search logic as the sequential
Algorithm BBU -- the same :class:`~repro.bnb.topology.PartialTopology`
branching, the same lower bounds, the same 3-3 filter -- but interleaves
``p`` workers on a simulated clock:

* the master relabels the matrix, seeds the UPGMM upper bound, and
  pre-branches the BBT until the frontier reaches
  ``prebranch_factor * p`` nodes (Steps 1-5 of the papers' listing);
* the frontier is sorted by lower bound; roughly ``1/p`` of it stays in
  the **global pool** and the rest is dispatched cyclically to the
  workers' **local pools** (Step 6);
* each worker repeatedly takes its most promising node, prunes or
  branches it, *broadcasts* improved upper bounds (arriving at the other
  workers after ``ub_broadcast_latency``), refills from the global pool
  when its local pool empties, and donates its least promising node to
  the global pool when the global pool is empty (Step 7);
* when every pool is dry the master gathers the solutions (Step 8).

Because upper bounds discovered by one worker prune the others' subtrees,
the *total* number of expanded nodes differs from the sequential run --
the mechanism behind the super-linear speedups the papers report -- and
the simulation reproduces it deterministically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bnb.bounds import LOWER_BOUNDS, search_context
from repro.bnb.kernel import BranchKernel, expand_positions
from repro.bnb.relationship import insertion_is_consistent
from repro.bnb.topology import PartialTopology
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin
from repro.obs.recorder import NullRecorder, as_recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.pools import SortedPool
from repro.parallel.trace import TraceInterval
from repro.tree.ultrametric import UltrametricTree

__all__ = ["WorkerStats", "ParallelResult", "ParallelBranchAndBound"]

_EPS = 1e-9
#: Simulated cost of discarding a pruned node (bound comparison only).
_PRUNE_COST = 1.0


@dataclass
class WorkerStats:
    """Per-worker counters from one simulated run."""

    worker_id: int
    nodes_expanded: int = 0
    nodes_pruned: int = 0
    busy_time: float = 0.0
    donations: int = 0
    refills: int = 0
    steals: int = 0
    ub_broadcasts: int = 0
    finished_at: float = 0.0


@dataclass
class ParallelResult:
    """Outcome of a simulated parallel run."""

    tree: UltrametricTree
    cost: float
    makespan: float
    setup_time: float
    total_nodes_expanded: int
    total_nodes_pruned: int
    messages: int
    workers: List[WorkerStats] = field(default_factory=list)
    initial_upper_bound: float = 0.0
    #: Busy intervals, populated when ``ClusterConfig.record_trace`` is set.
    trace: List[TraceInterval] = field(default_factory=list)

    @property
    def total_busy_time(self) -> float:
        """Aggregate work units actually spent expanding/pruning."""
        return sum(w.busy_time for w in self.workers)

    def efficiency(self) -> float:
        """Busy fraction of the cluster: ``busy / (p * makespan)``."""
        if self.makespan <= 0 or not self.workers:
            return 1.0
        return self.total_busy_time / (len(self.workers) * self.makespan)


class _Worker:
    """Mutable per-worker simulation state."""

    __slots__ = ("pool", "ub", "broadcast_ptr", "stats")

    def __init__(self, worker_id: int, ub: float) -> None:
        self.pool: SortedPool[PartialTopology] = SortedPool()
        self.ub = ub
        self.broadcast_ptr = 0
        self.stats = WorkerStats(worker_id)


class ParallelBranchAndBound:
    """The parallel Algorithm BBU on a simulated cluster.

    Search options mirror :class:`repro.bnb.sequential.BranchAndBoundSolver`;
    cluster behaviour comes from a :class:`ClusterConfig`.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        lower_bound: str = "minfront",
        use_maxmin: bool = True,
        relationship_33: bool = False,
        enforce_all_33: bool = False,
        use_kernel: bool = True,
        recorder: Optional[NullRecorder] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        if lower_bound not in LOWER_BOUNDS:
            raise ValueError(f"unknown lower bound {lower_bound!r}")
        self.lower_bound = lower_bound
        self.use_maxmin = use_maxmin
        self.relationship_33 = relationship_33
        self.enforce_all_33 = enforce_all_33
        self.use_kernel = use_kernel
        self.recorder = as_recorder(recorder)

    # ------------------------------------------------------------------
    def solve(self, matrix: DistanceMatrix) -> ParallelResult:
        """Run the simulated cluster on ``matrix``.

        With a recorder attached, the run executes inside a
        ``parallel.solve`` wall-clock span; every simulated busy interval
        is also emitted as a ``parallel.worker`` span (``clock:
        "simulated"`` -- the same model as :class:`TraceInterval`, so the
        Gantt/utilization views consume either source), along with the
        run's expansion/prune/message counters.
        """
        rec = self.recorder
        with rec.span(
            "parallel.solve", n=matrix.n, workers=self.config.n_workers
        ):
            result = self._solve_impl(matrix)
            if rec.enabled:
                for interval in result.trace:
                    rec.add_span(
                        "parallel.worker",
                        interval.start,
                        interval.end,
                        worker=interval.worker,
                        kind=interval.kind,
                        clock="simulated",
                    )
                rec.counter(
                    "parallel.nodes_expanded", result.total_nodes_expanded
                )
                rec.counter("parallel.nodes_pruned", result.total_nodes_pruned)
                rec.counter("parallel.messages", result.messages)
                rec.counter("parallel.simulated_makespan", result.makespan)
        return result

    def _solve_impl(self, matrix: DistanceMatrix) -> ParallelResult:
        cfg = self.config
        record_trace = cfg.record_trace or self.recorder.enabled
        n = matrix.n
        if n < 3:
            # Too small to parallelise; fall back to the trivial cases.
            from repro.bnb.sequential import BranchAndBoundSolver

            seq = BranchAndBoundSolver(
                lower_bound=self.lower_bound, use_maxmin=self.use_maxmin
            ).solve(matrix)
            return ParallelResult(
                tree=seq.tree,
                cost=seq.cost,
                makespan=0.0,
                setup_time=0.0,
                total_nodes_expanded=seq.stats.nodes_expanded,
                total_nodes_pruned=seq.stats.nodes_pruned,
                messages=0,
                workers=[WorkerStats(0)],
                initial_upper_bound=seq.stats.initial_upper_bound,
            )

        ordered, _ = apply_maxmin(matrix) if self.use_maxmin else (matrix, None)
        labels = ordered.labels
        values = [list(map(float, row)) for row in ordered.values]
        half, tails = search_context(ordered, self.lower_bound)
        check_33 = self.relationship_33 or self.enforce_all_33
        kernel = BranchKernel(half) if self.use_kernel else None
        if kernel is not None and not kernel.supported:
            kernel = None  # oversized matrix: scalar fallback

        seed = upgmm(ordered)
        global_ub = seed.cost()
        best: Optional[PartialTopology] = None

        # ------------------------------------------------------------------
        # Master phase: UPGMM + pre-branching, charged sequentially.
        # ------------------------------------------------------------------
        clock = cfg.expansion_unit_cost * n * n  # UPGMM / setup charge
        frontier: List[PartialTopology] = []
        root = PartialTopology.initial(half)
        root.lower_bound = root.cost + tails[2]
        # Best-lower-bound-first pre-branching.  A heap replaces the old
        # full re-sort per iteration (O(q log q) each step); ties pop the
        # most recently created child first, matching the old LIFO order.
        queue: List[Tuple[float, int, PartialTopology]] = [(root.lower_bound, 0, root)]
        heap_seq = 0
        target = cfg.prebranch_factor * cfg.n_workers
        pruned_in_prebranch = 0
        expanded_in_prebranch = 0
        while queue and len(queue) + len(frontier) < target:
            _, _, node = heapq.heappop(queue)
            if node.lower_bound > global_ub - _EPS:
                pruned_in_prebranch += 1
                clock += _PRUNE_COST
                continue
            clock += cfg.expansion_cost(node.num_leaves)
            expanded_in_prebranch += 1
            s = node.next_species
            tail = tails[s + 1]
            survivors, cut = expand_positions(
                node, tail, global_ub - _EPS, kernel
            )
            pruned_in_prebranch += cut
            for child in survivors:
                if check_33 and not insertion_is_consistent(
                    child, values, s, check_all_pairs=self.enforce_all_33
                ):
                    continue
                if child.is_complete:
                    if child.cost < global_ub - _EPS:
                        global_ub = child.cost
                        best = child
                else:
                    heap_seq -= 1
                    heapq.heappush(queue, (child.lower_bound, heap_seq, child))
        frontier.extend(entry[2] for entry in queue)
        frontier.sort(key=lambda t: t.lower_bound)
        setup_time = clock

        # ------------------------------------------------------------------
        # Dispatch: cyclic assignment, ~1/p of the nodes kept in the GP.
        # ------------------------------------------------------------------
        p = cfg.n_workers
        workers = [_Worker(w, global_ub) for w in range(p)]
        gp: SortedPool[PartialTopology] = SortedPool()
        messages = p  # initial matrix + UB broadcast to every worker
        slot = 0
        for index, node in enumerate(frontier):
            if p > 1 and index % (p + 1) == p:
                gp.push(node.lower_bound, node)
            else:
                workers[slot % p].pool.push(node.lower_bound, node)
                slot += 1
        start_time = clock + cfg.transfer_latency

        # ------------------------------------------------------------------
        # Event loop.
        # ------------------------------------------------------------------
        #: broadcasts: (arrival_time, ub value), appended in arrival order.
        broadcasts: List[Tuple[float, float]] = []
        heap: List[Tuple[float, int, str, int, Optional[PartialTopology]]] = []
        seq_counter = 0

        def schedule(time: float, action: str, worker_id: int,
                     payload: Optional[PartialTopology] = None) -> None:
            nonlocal seq_counter
            heapq.heappush(heap, (time, seq_counter, action, worker_id, payload))
            seq_counter += 1

        idle: set = set()
        in_flight_to_gp = 0
        trace: List[TraceInterval] = []

        for w in range(p):
            schedule(start_time, "work", w)

        makespan = start_time

        def absorb_broadcasts(worker: _Worker, now: float) -> None:
            while (
                worker.broadcast_ptr < len(broadcasts)
                and broadcasts[worker.broadcast_ptr][0] <= now + _EPS
            ):
                value = broadcasts[worker.broadcast_ptr][1]
                if value < worker.ub:
                    worker.ub = value
                worker.broadcast_ptr += 1

        while heap:
            now, _, action, wid, payload = heapq.heappop(heap)
            makespan = max(makespan, now)
            worker = workers[wid]

            if action == "gp_arrival":
                assert payload is not None
                in_flight_to_gp -= 1
                gp.push(payload.lower_bound, payload)
                if idle:
                    woken = min(idle)
                    idle.discard(woken)
                    schedule(now, "work", woken)
                continue

            if action == "carry":
                # A node requested from the GP arrives at the worker.
                assert payload is not None
                worker.pool.push(payload.lower_bound, payload)
                schedule(now, "work", wid)
                continue

            # action == "work"
            absorb_broadcasts(worker, now)
            node = None
            elapsed = 0.0
            while worker.pool:
                candidate = worker.pool.pop_best()
                if candidate is None:
                    break
                if candidate.lower_bound > worker.ub - _EPS:
                    worker.stats.nodes_pruned += 1
                    elapsed += _PRUNE_COST
                    continue
                node = candidate
                break

            if node is None:
                worker.stats.busy_time += elapsed
                if record_trace and elapsed > 0:
                    trace.append(TraceInterval(wid, now, now + elapsed, "prune"))
                refill = gp.pop_best()
                if refill is not None:
                    worker.stats.refills += 1
                    messages += 1
                    schedule(now + elapsed + cfg.transfer_latency, "carry", wid, refill)
                    continue
                if cfg.steal_from_loaded and p > 1:
                    # Poll the most heavily loaded worker (HPCAsia Sec. 3).
                    victim = max(workers, key=lambda w: len(w.pool))
                    if len(victim.pool) > 1:
                        stolen = victim.pool.pop_worst()
                        if stolen is not None:
                            worker.stats.steals += 1
                            messages += 2  # request + payload
                            schedule(
                                now + elapsed + 2 * cfg.transfer_latency,
                                "carry",
                                wid,
                                stolen,
                            )
                            continue
                worker.stats.finished_at = now + elapsed
                idle.add(wid)
                continue

            dt = cfg.expansion_cost(node.num_leaves, wid)
            worker.stats.busy_time += elapsed + dt
            worker.stats.nodes_expanded += 1
            done = now + elapsed + dt
            if record_trace:
                if elapsed > 0:
                    trace.append(
                        TraceInterval(wid, now, now + elapsed, "prune")
                    )
                trace.append(TraceInterval(wid, now + elapsed, done, "expand"))

            s = node.next_species
            tail = tails[s + 1]
            improved = False
            survivors, cut = expand_positions(
                node, tail, worker.ub - _EPS, kernel
            )
            worker.stats.nodes_pruned += cut
            for child in survivors:
                if check_33 and not insertion_is_consistent(
                    child, values, s, check_all_pairs=self.enforce_all_33
                ):
                    continue
                if child.is_complete:
                    if child.cost < worker.ub - _EPS:
                        worker.ub = child.cost
                        improved = True
                        if best is None or child.cost < best.cost - _EPS:
                            best = child
                        if child.cost < global_ub:
                            global_ub = child.cost
                else:
                    worker.pool.push(child.lower_bound, child)

            if improved and p > 1:
                broadcasts.append((done + cfg.ub_broadcast_latency, worker.ub))
                worker.stats.ub_broadcasts += 1
                messages += p - 1

            if (
                cfg.donate_when_global_empty
                and p > 1
                and len(gp) == 0
                and in_flight_to_gp == 0
                and len(worker.pool) > 1
            ):
                donated = worker.pool.pop_worst()
                if donated is not None:
                    worker.stats.donations += 1
                    messages += 1
                    in_flight_to_gp += 1
                    schedule(done + cfg.transfer_latency, "gp_arrival", 0, donated)

            schedule(done, "work", wid)

        # Final gather (Step 8): one message per worker.
        messages += p
        makespan += cfg.transfer_latency

        if best is None:
            tree = seed
            cost = global_ub
        else:
            tree = best.to_tree(labels)
            cost = best.cost

        return ParallelResult(
            tree=tree,
            cost=cost,
            makespan=makespan,
            setup_time=setup_time,
            total_nodes_expanded=expanded_in_prebranch
            + sum(w.stats.nodes_expanded for w in workers),
            total_nodes_pruned=pruned_in_prebranch
            + sum(w.stats.nodes_pruned for w in workers),
            messages=messages,
            workers=[w.stats for w in workers],
            initial_upper_bound=seed.cost(),
            trace=trace,
        )
