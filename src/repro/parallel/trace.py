"""Execution traces of the simulated cluster.

With ``ClusterConfig(record_trace=True)`` the simulator records one
:class:`TraceInterval` per unit of worker activity.  This module turns
those intervals into the load-balance views the HPCAsia paper reasons
about: per-worker utilization and an ASCII Gantt chart showing where the
global-pool refills and steals keep the cluster busy.

The same views consume recorder events: every engine that runs workers
(the cluster simulator, ``multiprocess_mut``) emits one worker span per
interval, and :func:`intervals_from_spans` converts those spans back
into :class:`TraceInterval` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "TraceInterval",
    "intervals_from_spans",
    "worker_utilization",
    "ascii_gantt",
]


@dataclass(frozen=True)
class TraceInterval:
    """One contiguous span of simulated worker activity."""

    worker: int
    start: float
    end: float
    kind: str  # "expand" or "prune"

    @property
    def duration(self) -> float:
        return self.end - self.start


def intervals_from_spans(events: Iterable) -> List[TraceInterval]:
    """Rebuild :class:`TraceInterval` rows from recorder worker spans.

    Accepts any iterable of :class:`repro.obs.SpanEvent` /
    :class:`repro.obs.CounterEvent` (e.g. ``Recorder.events`` or the
    output of :func:`repro.obs.read_jsonl`) and keeps the spans that
    carry a ``worker`` attribute -- ``parallel.worker`` spans from the
    cluster simulator (simulated clock) and ``mp.worker`` spans from the
    multiprocess engine (wall clock).  Simulated-clock timestamps are
    kept verbatim (they already live on the cluster's own timeline);
    wall-clock timestamps sit at an arbitrary ``perf_counter`` origin and
    are shifted so the earliest such interval starts at 0.
    """
    rows: List[TraceInterval] = []
    wall: List[int] = []
    for event in events:
        attrs = getattr(event, "attrs", None)
        if not attrs or "worker" not in attrs:
            continue
        # Counters can carry a worker attr too; only spans have times.
        start = getattr(event, "start", None)
        end = getattr(event, "end", None)
        if start is None or end is None:
            continue
        if attrs.get("clock") != "simulated":
            wall.append(len(rows))
        rows.append(
            TraceInterval(
                worker=int(attrs["worker"]),
                start=float(start),
                end=float(end),
                kind=str(attrs.get("kind", "expand")),
            )
        )
    if wall:
        origin = min(rows[i].start for i in wall)
        for i in wall:
            r = rows[i]
            rows[i] = TraceInterval(
                r.worker, r.start - origin, r.end - origin, r.kind
            )
    rows.sort(key=lambda r: (r.start, r.worker))
    return rows


def worker_utilization(
    trace: Sequence[TraceInterval],
    n_workers: int,
    makespan: float,
) -> Dict[int, float]:
    """Busy fraction of each worker over the run's makespan."""
    if makespan <= 0:
        return {w: 0.0 for w in range(n_workers)}
    busy: Dict[int, float] = {w: 0.0 for w in range(n_workers)}
    for interval in trace:
        busy[interval.worker] = busy.get(interval.worker, 0.0) + interval.duration
    return {w: min(t / makespan, 1.0) for w, t in busy.items()}


def ascii_gantt(
    trace: Sequence[TraceInterval],
    n_workers: int,
    makespan: float,
    *,
    width: int = 72,
) -> str:
    """Render the trace as one ASCII row per worker.

    ``#`` marks time buckets where the worker was mostly busy, ``-``
    partially busy, space idle.  Makes load-balance pathologies (a
    starved worker, a hot straggler) visible at a glance.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    if makespan <= 0:
        return "\n".join(f"w{w:02d} |" for w in range(n_workers))
    bucket = makespan / width
    load = [[0.0] * width for _ in range(n_workers)]
    for interval in trace:
        first = int(interval.start / bucket)
        last = min(int(interval.end / bucket), width - 1)
        for b in range(first, last + 1):
            b_start = b * bucket
            b_end = b_start + bucket
            overlap = min(interval.end, b_end) - max(interval.start, b_start)
            if overlap > 0:
                load[interval.worker][b] += overlap
    rows = []
    for w in range(n_workers):
        cells = []
        for b in range(width):
            fraction = load[w][b] / bucket
            cells.append("#" if fraction > 0.66 else "-" if fraction > 0.1 else " ")
        rows.append(f"w{w:02d} |{''.join(cells)}|")
    return "\n".join(rows)
