"""Execution traces of the simulated cluster.

With ``ClusterConfig(record_trace=True)`` the simulator records one
:class:`TraceInterval` per unit of worker activity.  This module turns
those intervals into the load-balance views the HPCAsia paper reasons
about: per-worker utilization and an ASCII Gantt chart showing where the
global-pool refills and steals keep the cluster busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["TraceInterval", "worker_utilization", "ascii_gantt"]


@dataclass(frozen=True)
class TraceInterval:
    """One contiguous span of simulated worker activity."""

    worker: int
    start: float
    end: float
    kind: str  # "expand" or "prune"

    @property
    def duration(self) -> float:
        return self.end - self.start


def worker_utilization(
    trace: Sequence[TraceInterval],
    n_workers: int,
    makespan: float,
) -> Dict[int, float]:
    """Busy fraction of each worker over the run's makespan."""
    if makespan <= 0:
        return {w: 0.0 for w in range(n_workers)}
    busy: Dict[int, float] = {w: 0.0 for w in range(n_workers)}
    for interval in trace:
        busy[interval.worker] = busy.get(interval.worker, 0.0) + interval.duration
    return {w: min(t / makespan, 1.0) for w, t in busy.items()}


def ascii_gantt(
    trace: Sequence[TraceInterval],
    n_workers: int,
    makespan: float,
    *,
    width: int = 72,
) -> str:
    """Render the trace as one ASCII row per worker.

    ``#`` marks time buckets where the worker was mostly busy, ``-``
    partially busy, space idle.  Makes load-balance pathologies (a
    starved worker, a hot straggler) visible at a glance.
    """
    if width < 8:
        raise ValueError("width must be at least 8")
    if makespan <= 0:
        return "\n".join(f"w{w:02d} |" for w in range(n_workers))
    bucket = makespan / width
    load = [[0.0] * width for _ in range(n_workers)]
    for interval in trace:
        first = int(interval.start / bucket)
        last = min(int(interval.end / bucket), width - 1)
        for b in range(first, last + 1):
            b_start = b * bucket
            b_end = b_start + bucket
            overlap = min(interval.end, b_end) - max(interval.start, b_start)
            if overlap > 0:
                load[interval.worker][b] += overlap
    rows = []
    for w in range(n_workers):
        cells = []
        for b in range(width):
            fraction = load[w][b] / bucket
            cells.append("#" if fraction > 0.66 else "-" if fraction > 0.1 else " ")
        rows.append(f"w{w:02d} |{''.join(cells)}|")
    return "\n".join(rows)
