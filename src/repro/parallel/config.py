"""Configuration of the simulated PC cluster.

Defaults model the papers' testbed: 16 computing nodes joined by switched
100 Mbps Ethernet (1 Gbps uplink to the master).  Times are expressed in
*work units*: one unit is the cost of inserting one species into a
one-leaf topology, so expanding a BBT node with ``k`` leaves costs about
``(2k - 1) * k`` units (``2k - 1`` graft positions, each an ``O(k)``
insertion).  Latencies are calibrated so that a message costs roughly as
much as expanding a mid-size node -- the regime in which the papers'
load-balancing design decisions (global pool, cyclic dispatch, donation)
actually matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ClusterConfig", "grid_config"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated master/slave cluster.

    Attributes
    ----------
    n_workers:
        Number of computing processors (the papers use 16; the master
        also computes, matching "MP is also used to do the same work").
    ub_broadcast_latency:
        Work units before a new global upper bound reaches the other
        workers.
    transfer_latency:
        Work units to move one BBT node between a local pool and the
        global pool (request + payload on the 100 Mbps link).
    expansion_unit_cost:
        Scale factor on the ``(2k - 1) * k`` cost of one node expansion.
    prebranch_factor:
        The master pre-branches until the frontier reaches
        ``prebranch_factor * n_workers`` nodes (the papers use 2).
    donate_when_global_empty:
        Enable the papers' donation rule: after branching, a worker that
        sees an empty global pool sends its worst local node there.
    steal_from_loaded:
        Enable the papers' second balancing rule ("even through the
        global pools empty, it will poll branching data from the heavily
        loaded computing nodes"): an idle worker steals the least
        promising node of the most loaded worker, paying two transfer
        latencies (request + payload).
    """

    n_workers: int = 16
    ub_broadcast_latency: float = 50.0
    transfer_latency: float = 25.0
    expansion_unit_cost: float = 1.0
    prebranch_factor: int = 2
    donate_when_global_empty: bool = True
    steal_from_loaded: bool = True
    #: Record per-worker busy intervals (see :mod:`repro.parallel.trace`).
    record_trace: bool = False
    #: Per-worker relative speeds (1.0 = reference CPU).  ``None`` means a
    #: homogeneous cluster; a grid of donated machines is heterogeneous.
    worker_speeds: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.ub_broadcast_latency < 0 or self.transfer_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.expansion_unit_cost <= 0:
            raise ValueError("expansion cost must be positive")
        if self.prebranch_factor < 1:
            raise ValueError("prebranch factor must be at least 1")
        if self.worker_speeds is not None:
            if len(self.worker_speeds) != self.n_workers:
                raise ValueError(
                    f"{len(self.worker_speeds)} speeds for "
                    f"{self.n_workers} workers"
                )
            if any(s <= 0 for s in self.worker_speeds):
                raise ValueError("worker speeds must be positive")

    def expansion_cost(self, num_leaves: int, worker: Optional[int] = None) -> float:
        """Simulated cost of one node expansion.

        ``(2k - 1)`` graft positions, each an O(k) insertion, divided by
        the worker's relative speed; ``worker=None`` means the reference
        (master) machine.
        """
        base = self.expansion_unit_cost * (2 * num_leaves - 1) * num_leaves
        if worker is None or self.worker_speeds is None:
            return base
        return base / self.worker_speeds[worker]

    def speed_of(self, worker: int) -> float:
        """Relative speed of one worker (1.0 when homogeneous)."""
        if self.worker_speeds is None:
            return 1.0
        return self.worker_speeds[worker]


def grid_config(
    n_workers: int,
    *,
    cpu_speed: float = 0.9,
    speed_spread: float = 0.2,
    latency_factor: float = 8.0,
    seed: int = 0,
    **overrides,
) -> ClusterConfig:
    """A :class:`ClusterConfig` modelling the project's UniGrid testbed.

    The NSC report's grid experiments ran on donated machines joined over
    the Internet: CPUs slower than the dedicated cluster's and unequal to
    each other, with far higher message latencies.  ``cpu_speed`` is the
    mean relative speed, ``speed_spread`` its +/- range (deterministic
    per ``seed``), and ``latency_factor`` multiplies both latencies of
    the default cluster.  The report's finding — a grid matches the
    cluster only by bringing *more* nodes — falls out of these numbers
    (see ``benchmarks/bench_grid_vs_cluster.py``).
    """
    import numpy as np

    if not 0 < cpu_speed:
        raise ValueError("cpu_speed must be positive")
    if not 0 <= speed_spread < cpu_speed:
        raise ValueError("speed_spread must be smaller than cpu_speed")
    rng = np.random.default_rng(seed)
    speeds = tuple(
        float(s)
        for s in rng.uniform(
            cpu_speed - speed_spread, cpu_speed + speed_spread, size=n_workers
        )
    )
    defaults = ClusterConfig()
    settings = dict(
        n_workers=n_workers,
        ub_broadcast_latency=defaults.ub_broadcast_latency * latency_factor,
        transfer_latency=defaults.transfer_latency * latency_factor,
        worker_speeds=speeds,
    )
    settings.update(overrides)
    return ClusterConfig(**settings)
