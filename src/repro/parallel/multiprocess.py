"""Real multi-core execution of the parallel branch-and-bound.

The simulator in :mod:`repro.parallel.simulator` models the papers'
cluster; this module actually runs the same master/slave decomposition on
local cores with :mod:`multiprocessing`, serving as an end-to-end sanity
check that the decomposition logic is sound:

* the master (parent process) relabels the matrix, seeds the UPGMM upper
  bound and pre-branches the BBT to ``prebranch_factor * p`` nodes;
* the frontier is dispatched cyclically to ``p`` worker processes;
* workers run the sequential DFS on their share, publishing improved
  upper bounds through a shared ``multiprocessing.Value`` (the "global
  upper bound broadcast") that every worker polls between expansions;
* the master gathers per-worker optima and returns the global best.

Production hardening (vs. the original prototype):

* **Start-method portability** -- ``fork`` is used where available (it is
  the cheapest), falling back to ``spawn`` on platforms without it
  (Windows) or when the caller asks; every worker argument is picklable,
  so both start methods produce identical results.
* **Exact result transport** -- workers ship their best topology as a
  :meth:`~repro.bnb.topology.PartialTopology.to_payload` tuple whose
  floats survive pickling bit-exactly (the prototype round-tripped
  through a 12-digit Newick string, so the re-parsed tree's cost could
  disagree with the reported cost).  The master re-materialises the tree
  and verifies ``|tree.cost() - cost| < 1e-9`` on receipt.
* **Liveness supervision** -- the master polls the result queue with a
  timeout and watches worker exit codes, so a worker killed by the OOM
  killer or a signal raises a :class:`RuntimeError` naming the dead
  worker instead of blocking forever on ``Queue.get()``.  Worker-side
  exceptions travel back as formatted tracebacks.  All processes are
  terminated and joined in a ``finally`` block.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bnb.bounds import search_context
from repro.bnb.kernel import BranchKernel, expand_positions
from repro.bnb.relationship import insertion_is_consistent
from repro.bnb.topology import PartialTopology
from repro.bnb.sequential import BranchAndBoundSolver, SearchStats
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin
from repro.obs.progress import current_progress
from repro.parallel.executor import gather_one_per_worker
from repro.obs.recorder import (
    NullRecorder,
    as_recorder,
    current_trace_id,
    trace_context,
)
from repro.tree.ultrametric import UltrametricTree

__all__ = ["MultiprocessResult", "multiprocess_mut", "select_start_method"]

_EPS = 1e-9
#: Seconds between liveness checks while the master waits for results.
_POLL_TIMEOUT = 0.25
#: Consecutive empty polls tolerated after every pending worker exited
#: cleanly (exit code 0) without its result arriving, before the master
#: gives up.  Covers the short window in which a finished worker's queue
#: feeder thread has written the payload but the pipe is not yet readable.
_LOST_RESULT_GRACE = 20


def select_start_method(preferred: Optional[str] = None) -> str:
    """Pick a :mod:`multiprocessing` start method that exists here.

    ``fork`` is preferred where the platform offers it (cheapest, shares
    the parent's pages); otherwise ``spawn``.  Passing ``preferred``
    forces that method, raising :class:`ValueError` if the platform does
    not support it (e.g. ``fork`` on Windows).
    """
    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} is not available on this "
                f"platform; choose from {available}"
            )
        return preferred
    return "fork" if "fork" in available else "spawn"


@dataclass
class MultiprocessResult:
    """Outcome of a real multi-process run."""

    tree: UltrametricTree
    cost: float
    nodes_expanded: int
    nodes_pruned: int
    n_workers: int
    initial_upper_bound: float
    #: Resolved multiprocessing start method ("fork"/"spawn"), or
    #: "sequential" when the input was solved in-process.
    start_method: str = "fork"


def _worker_main(
    worker_id: int,
    payloads: List[tuple],
    half: List[List[float]],
    tails: List[float],
    values: List[List[float]],
    check_33: bool,
    enforce_all_33: bool,
    shared_ub,
    result_queue,
    poll_interval: int,
    trace_id: Optional[str] = None,
    use_kernel: bool = True,
) -> None:
    """DFS-complete a share of the frontier (runs in a child process).

    Every argument is picklable so the function works under both the
    ``fork`` and ``spawn`` start methods.  Results (or a formatted
    traceback on failure) are reported through ``result_queue`` as
    ``(kind, worker_id, cost_or_traceback, payload, counters)`` tuples.
    ``trace_id`` is the originating request's correlation id; the worker
    echoes it back inside ``counters`` so the master stamps each
    ``mp.worker`` span with an id that genuinely crossed the process
    boundary (not one re-read from master-side state).
    """
    expanded = 0
    pruned = 0
    try:
        topologies = [PartialTopology.from_payload(p, half) for p in payloads]
        kernel = BranchKernel(half) if use_kernel else None
        if kernel is not None and not kernel.supported:
            kernel = None  # oversized matrix: scalar fallback
        local_ub = shared_ub.value
        best: Optional[PartialTopology] = None
        n = len(values)
        stack = sorted(topologies, key=lambda t: -t.lower_bound)
        while stack:
            node = stack.pop()
            if expanded % poll_interval == 0:
                published = shared_ub.value
                if published < local_ub:
                    local_ub = published
            if node.lower_bound > local_ub - _EPS:
                pruned += 1
                continue
            expanded += 1
            s = node.next_species
            tail = tails[s + 1]
            survivors, cut = expand_positions(
                node, tail, local_ub - _EPS, kernel
            )
            pruned += cut
            if check_33:
                children = [
                    child for child in survivors
                    if insertion_is_consistent(
                        child, values, s, check_all_pairs=enforce_all_33
                    )
                ]
            else:
                children = survivors
            if node.num_leaves + 1 == n:
                for child in children:
                    if child.cost < local_ub - _EPS:
                        local_ub = child.cost
                        best = child
                        with shared_ub.get_lock():
                            if local_ub < shared_ub.value:
                                shared_ub.value = local_ub
            else:
                children.sort(key=lambda c: -c.lower_bound)
                stack.extend(children)

        counters = {
            "expanded": expanded, "pruned": pruned, "trace_id": trace_id,
        }
        if best is None:
            result_queue.put(("result", worker_id, None, None, counters))
        else:
            result_queue.put(
                ("result", worker_id, best.cost, best.to_payload(), counters)
            )
    except Exception:
        result_queue.put(
            (
                "error",
                worker_id,
                traceback.format_exc(),
                None,
                {"expanded": expanded, "pruned": pruned, "trace_id": trace_id},
            )
        )


def _gather_results(
    processes: Dict[int, "multiprocessing.process.BaseProcess"],
    result_queue,
    arrivals: Optional[Dict[int, float]] = None,
    clock=None,
) -> List[tuple]:
    """Collect one message per worker, supervising worker liveness.

    Thin wrapper over the reusable supervision primitive
    :func:`repro.parallel.executor.gather_one_per_worker` (the logic
    started life here and was extracted for the serving layer's process
    backend).  Raises a typed :class:`~repro.parallel.executor.
    WorkerCrashed` / :class:`~repro.parallel.executor.RemoteTaskError`
    (both ``RuntimeError`` subclasses) naming the worker when one dies
    without reporting or ships back an exception traceback.
    """
    return gather_one_per_worker(
        processes,
        result_queue,
        arrivals=arrivals,
        clock=clock,
        poll_timeout=_POLL_TIMEOUT,
        lost_result_grace=_LOST_RESULT_GRACE,
        what="branch-and-bound worker",
    )


def multiprocess_mut(
    matrix: DistanceMatrix,
    n_workers: int = 4,
    *,
    lower_bound: str = "minfront",
    relationship_33: bool = False,
    enforce_all_33: bool = False,
    prebranch_factor: int = 2,
    poll_interval: int = 64,
    use_kernel: bool = True,
    start_method: Optional[str] = None,
    recorder: Optional[NullRecorder] = None,
    trace_id: Optional[str] = None,
) -> MultiprocessResult:
    """Exact minimum ultrametric tree using real worker processes.

    Falls back to the sequential solver for tiny inputs or ``n_workers=1``.
    ``start_method`` forces a :mod:`multiprocessing` start method
    (``"fork"``/``"spawn"``/``"forkserver"``); by default the cheapest
    method the platform supports is used (see :func:`select_start_method`).
    With a ``recorder``, the run executes inside an ``mp.solve`` span,
    each worker process contributes an ``mp.worker`` span (master-side
    wall clock, process start to result arrival -- the same per-worker
    interval model as the simulator's trace) and its expand/prune
    counters.

    ``trace_id`` correlates the run with an originating request; it
    defaults to the ambient :func:`~repro.obs.recorder.current_trace_id`
    (set by the serving layer around each job), is shipped to every
    worker process, and comes back stamped on that worker's ``mp.worker``
    span -- end-to-end request-to-worker correlation.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    rec = as_recorder(recorder)
    method = select_start_method(start_method)
    if trace_id is None:
        trace_id = current_trace_id()
    with trace_context(trace_id), rec.span(
        "mp.solve", n=matrix.n, workers=n_workers, start_method=method
    ):
        return _multiprocess_impl(
            matrix,
            n_workers,
            lower_bound,
            relationship_33,
            enforce_all_33,
            prebranch_factor,
            poll_interval,
            method,
            rec,
            trace_id,
            use_kernel,
        )


def _multiprocess_impl(
    matrix: DistanceMatrix,
    n_workers: int,
    lower_bound: str,
    relationship_33: bool,
    enforce_all_33: bool,
    prebranch_factor: int,
    poll_interval: int,
    method: str,
    rec: NullRecorder,
    trace_id: Optional[str] = None,
    use_kernel: bool = True,
) -> MultiprocessResult:
    if matrix.n < 4 or n_workers == 1:
        seq = BranchAndBoundSolver(
            lower_bound=lower_bound,
            relationship_33=relationship_33,
            enforce_all_33=enforce_all_33,
            use_kernel=use_kernel,
            recorder=rec,
        ).solve(matrix)
        return MultiprocessResult(
            tree=seq.tree,
            cost=seq.cost,
            nodes_expanded=seq.stats.nodes_expanded,
            nodes_pruned=seq.stats.nodes_pruned,
            n_workers=1,
            initial_upper_bound=seq.stats.initial_upper_bound,
            start_method="sequential",
        )

    ordered, _ = apply_maxmin(matrix)
    labels = ordered.labels
    values = [list(map(float, row)) for row in ordered.values]
    half, tails = search_context(ordered, lower_bound)
    check_33 = relationship_33 or enforce_all_33
    kernel = BranchKernel(half) if use_kernel else None
    if kernel is not None and not kernel.supported:
        kernel = None  # oversized matrix: scalar fallback

    seed = upgmm(ordered)
    upper_bound = seed.cost()
    best_tree: UltrametricTree = seed
    best_cost = upper_bound

    # Master pre-branching (same as the simulator's master phase): a heap
    # keyed by lower bound replaces the prototype's full re-sort per
    # iteration; ties pop the most recently created child first.
    root = PartialTopology.initial(half)
    root.lower_bound = root.cost + tails[2]
    queue: List[Tuple[float, int, PartialTopology]] = [
        (root.lower_bound, 0, root)
    ]
    heap_seq = 0
    target = prebranch_factor * n_workers
    expanded = 0
    pruned = 0
    n = matrix.n
    while queue and len(queue) < target:
        _, _, node = heapq.heappop(queue)
        if node.lower_bound > upper_bound - _EPS:
            pruned += 1
            continue
        expanded += 1
        s = node.next_species
        tail = tails[s + 1]
        survivors, cut = expand_positions(
            node, tail, upper_bound - _EPS, kernel
        )
        pruned += cut
        for child in survivors:
            if check_33 and not insertion_is_consistent(
                child, values, s, check_all_pairs=enforce_all_33
            ):
                continue
            if child.is_complete:
                if child.cost < upper_bound - _EPS:
                    upper_bound = child.cost
                    best_cost = child.cost
                    best_tree = child.to_tree(labels)
            else:
                heap_seq -= 1
                heapq.heappush(queue, (child.lower_bound, heap_seq, child))

    # The parallel master reports progress at its natural heartbeat
    # points: after pre-branching (the frontier's bounds are the global
    # lower bound) and on each worker-result arrival (the shared upper
    # bound carries workers' live incumbent improvements).
    tracker = current_progress()
    master_stats = SearchStats()

    frontier = [entry[2] for entry in queue]
    if not frontier:
        if tracker is not None:
            master_stats.nodes_expanded = expanded
            master_stats.nodes_created = expanded + pruned
            tracker.final(best_cost, master_stats)
        return MultiprocessResult(
            tree=best_tree,
            cost=best_cost,
            nodes_expanded=expanded,
            nodes_pruned=pruned,
            n_workers=n_workers,
            initial_upper_bound=seed.cost(),
            start_method=method,
        )

    if tracker is not None:
        master_stats.nodes_expanded = expanded
        master_stats.nodes_created = expanded + pruned + len(frontier)
        tracker.tick(upper_bound, master_stats, frontier)

    frontier.sort(key=lambda t: t.lower_bound)
    shares: List[List[tuple]] = [[] for _ in range(n_workers)]
    for index, node in enumerate(frontier):
        shares[index % n_workers].append(node.to_payload())

    ctx = multiprocessing.get_context(method)
    shared_ub = ctx.Value("d", upper_bound)
    result_queue = ctx.Queue()
    processes: Dict[int, "multiprocessing.process.BaseProcess"] = {}
    starts: Dict[int, float] = {}
    arrivals: Dict[int, float] = {}
    try:
        for worker_id, share in enumerate(shares):
            if not share:
                continue
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    share,
                    half,
                    tails,
                    values,
                    check_33,
                    enforce_all_33,
                    shared_ub,
                    result_queue,
                    poll_interval,
                    trace_id,
                    use_kernel,
                ),
                daemon=True,
            )
            starts[worker_id] = rec.clock()
            proc.start()
            processes[worker_id] = proc

        for message in _gather_results(
            processes, result_queue, arrivals=arrivals, clock=rec.clock
        ):
            _, worker_id, cost, payload, counters = message
            expanded += counters["expanded"]
            pruned += counters["pruned"]
            if tracker is not None:
                master_stats.nodes_expanded = expanded
                master_stats.nodes_created = expanded + pruned
                tracker.tick(
                    min(best_cost, shared_ub.value), master_stats, ()
                )
            if rec.enabled:
                # Stamp the trace id that round-tripped through the
                # worker process, not the master-side ambient one.
                span_attrs = {"worker": worker_id}
                if counters.get("trace_id") is not None:
                    span_attrs["trace_id"] = counters["trace_id"]
                rec.add_span(
                    "mp.worker",
                    starts[worker_id],
                    arrivals.get(worker_id, rec.clock()),
                    **span_attrs,
                )
                rec.counter(
                    "mp.nodes_expanded", counters["expanded"], worker=worker_id
                )
                rec.counter(
                    "mp.nodes_pruned", counters["pruned"], worker=worker_id
                )
            if cost is not None and cost < best_cost - _EPS:
                tree = PartialTopology.from_payload(payload, half).to_tree(
                    labels
                )
                realised = tree.cost()
                if abs(realised - cost) > 1e-9:
                    raise RuntimeError(
                        f"worker {worker_id} reported cost {cost!r} but its "
                        f"tree realises {realised!r} (lossy transport?)"
                    )
                best_cost = cost
                best_tree = tree
    finally:
        for proc in processes.values():
            if proc.is_alive():
                proc.terminate()
        for proc in processes.values():
            proc.join(timeout=5.0)
        result_queue.close()

    if tracker is not None:
        master_stats.nodes_expanded = expanded
        master_stats.nodes_created = expanded + pruned
        tracker.final(best_cost, master_stats)
    return MultiprocessResult(
        tree=best_tree,
        cost=best_cost,
        nodes_expanded=expanded,
        nodes_pruned=pruned,
        n_workers=n_workers,
        initial_upper_bound=seed.cost(),
        start_method=method,
    )
