"""Real multi-core execution of the parallel branch-and-bound.

The simulator in :mod:`repro.parallel.simulator` models the papers'
cluster; this module actually runs the same master/slave decomposition on
local cores with :mod:`multiprocessing`, serving as an end-to-end sanity
check that the decomposition logic is sound:

* the master (parent process) relabels the matrix, seeds the UPGMM upper
  bound and pre-branches the BBT to ``prebranch_factor * p`` nodes;
* the frontier is dispatched cyclically to ``p`` worker processes;
* workers run the sequential DFS on their share, publishing improved
  upper bounds through a shared ``multiprocessing.Value`` (the "global
  upper bound broadcast") that every worker polls between expansions;
* the master gathers per-worker optima and returns the global best.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bnb.bounds import LOWER_BOUNDS, half_matrix
from repro.bnb.relationship import insertion_is_consistent
from repro.bnb.topology import PartialTopology
from repro.bnb.sequential import BranchAndBoundSolver
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.matrix.maxmin import apply_maxmin
from repro.tree.newick import parse_newick
from repro.tree.ultrametric import UltrametricTree

__all__ = ["MultiprocessResult", "multiprocess_mut"]

_EPS = 1e-9


@dataclass
class MultiprocessResult:
    """Outcome of a real multi-process run."""

    tree: UltrametricTree
    cost: float
    nodes_expanded: int
    nodes_pruned: int
    n_workers: int
    initial_upper_bound: float


def _worker_main(
    topologies: List[PartialTopology],
    tails: List[float],
    values: List[List[float]],
    labels: List[str],
    check_33: bool,
    enforce_all_33: bool,
    shared_ub,
    result_queue,
    poll_interval: int,
) -> None:
    """DFS-complete a share of the frontier (runs in a child process)."""
    local_ub = shared_ub.value
    best: Optional[PartialTopology] = None
    expanded = 0
    pruned = 0
    n = len(values)
    stack = sorted(topologies, key=lambda t: -t.lower_bound)
    while stack:
        node = stack.pop()
        if expanded % poll_interval == 0:
            published = shared_ub.value
            if published < local_ub:
                local_ub = published
        if node.lower_bound > local_ub - _EPS:
            pruned += 1
            continue
        expanded += 1
        s = node.next_species
        tail = tails[s + 1]
        children = []
        for position in range(len(node.parent)):
            child = node.child(position, tail)
            if child.lower_bound > local_ub - _EPS:
                pruned += 1
                continue
            if check_33 and not insertion_is_consistent(
                child, values, s, check_all_pairs=enforce_all_33
            ):
                continue
            children.append(child)
        if node.num_leaves + 1 == n:
            for child in children:
                if child.cost < local_ub - _EPS:
                    local_ub = child.cost
                    best = child
                    with shared_ub.get_lock():
                        if local_ub < shared_ub.value:
                            shared_ub.value = local_ub
        else:
            children.sort(key=lambda c: -c.lower_bound)
            stack.extend(children)
    from repro.tree.newick import to_newick

    payload: Tuple[Optional[float], Optional[str], Dict[str, int]]
    if best is None:
        payload = (None, None, {"expanded": expanded, "pruned": pruned})
    else:
        payload = (
            best.cost,
            to_newick(best.to_tree(labels), precision=12),
            {"expanded": expanded, "pruned": pruned},
        )
    result_queue.put(payload)


def multiprocess_mut(
    matrix: DistanceMatrix,
    n_workers: int = 4,
    *,
    lower_bound: str = "minfront",
    relationship_33: bool = False,
    enforce_all_33: bool = False,
    prebranch_factor: int = 2,
    poll_interval: int = 64,
) -> MultiprocessResult:
    """Exact minimum ultrametric tree using real worker processes.

    Falls back to the sequential solver for tiny inputs or ``n_workers=1``.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    if matrix.n < 4 or n_workers == 1:
        seq = BranchAndBoundSolver(
            lower_bound=lower_bound,
            relationship_33=relationship_33,
            enforce_all_33=enforce_all_33,
        ).solve(matrix)
        return MultiprocessResult(
            tree=seq.tree,
            cost=seq.cost,
            nodes_expanded=seq.stats.nodes_expanded,
            nodes_pruned=seq.stats.nodes_pruned,
            n_workers=1,
            initial_upper_bound=seq.stats.initial_upper_bound,
        )

    ordered, _ = apply_maxmin(matrix)
    labels = ordered.labels
    values = [list(map(float, row)) for row in ordered.values]
    half = half_matrix(ordered)
    tails = LOWER_BOUNDS[lower_bound](ordered)
    check_33 = relationship_33 or enforce_all_33

    seed = upgmm(ordered)
    upper_bound = seed.cost()
    best_tree: UltrametricTree = seed
    best_cost = upper_bound

    # Master pre-branching (same as the simulator's master phase).
    root = PartialTopology.initial(half)
    root.lower_bound = root.cost + tails[2]
    queue: List[PartialTopology] = [root]
    target = prebranch_factor * n_workers
    expanded = 0
    pruned = 0
    n = matrix.n
    while queue and len(queue) < target:
        queue.sort(key=lambda t: -t.lower_bound)
        node = queue.pop()
        if node.lower_bound > upper_bound - _EPS:
            pruned += 1
            continue
        expanded += 1
        s = node.next_species
        tail = tails[s + 1]
        for position in range(len(node.parent)):
            child = node.child(position, tail)
            if child.lower_bound > upper_bound - _EPS:
                pruned += 1
                continue
            if check_33 and not insertion_is_consistent(
                child, values, s, check_all_pairs=enforce_all_33
            ):
                continue
            if child.is_complete:
                if child.cost < upper_bound - _EPS:
                    upper_bound = child.cost
                    best_cost = child.cost
                    best_tree = child.to_tree(labels)
            else:
                queue.append(child)

    if not queue:
        return MultiprocessResult(
            tree=best_tree,
            cost=best_cost,
            nodes_expanded=expanded,
            nodes_pruned=pruned,
            n_workers=n_workers,
            initial_upper_bound=seed.cost(),
        )

    queue.sort(key=lambda t: t.lower_bound)
    shares: List[List[PartialTopology]] = [[] for _ in range(n_workers)]
    for index, node in enumerate(queue):
        shares[index % n_workers].append(node)

    ctx = multiprocessing.get_context("fork")
    shared_ub = ctx.Value("d", upper_bound)
    result_queue = ctx.Queue()
    processes = []
    live_workers = 0
    for share in shares:
        if not share:
            continue
        proc = ctx.Process(
            target=_worker_main,
            args=(
                share,
                tails,
                values,
                labels,
                check_33,
                enforce_all_33,
                shared_ub,
                result_queue,
                poll_interval,
            ),
        )
        proc.start()
        processes.append(proc)
        live_workers += 1

    for _ in range(live_workers):
        cost, newick, counters = result_queue.get()
        expanded += counters["expanded"]
        pruned += counters["pruned"]
        if cost is not None and cost < best_cost - _EPS:
            best_cost = cost
            best_tree = parse_newick(newick)
    for proc in processes:
        proc.join()

    return MultiprocessResult(
        tree=best_tree,
        cost=best_cost,
        nodes_expanded=expanded,
        nodes_pruned=pruned,
        n_workers=n_workers,
        initial_upper_bound=seed.cost(),
    )
