"""Scaling analysis of the parallel branch-and-bound.

Turns raw simulator runs into the quantities the HPCAsia evaluation
reasons about: speedup curves, parallel efficiency, and the Karp-Flatt
experimentally-determined serial fraction (which exposes load-imbalance
and communication overhead growth that raw speedup hides).  Karp-Flatt
is *negative* exactly when the run is super-linear -- a compact numeric
witness of the papers' anomaly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.matrix.distance_matrix import DistanceMatrix
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound, ParallelResult

__all__ = ["ScalingPoint", "speedup_curve", "karp_flatt", "amdahl_bound"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    workers: int
    makespan: float
    speedup: float
    efficiency: float
    nodes_expanded: int
    serial_fraction: Optional[float]  # Karp-Flatt; None at p = 1

    @property
    def superlinear(self) -> bool:
        return self.speedup > self.workers


def karp_flatt(speedup: float, workers: int) -> float:
    """The experimentally determined serial fraction.

    ``e = (1/S - 1/p) / (1 - 1/p)``.  Values near 0 mean near-perfect
    scaling; growth with ``p`` indicates overhead; negative values mean
    super-linear speedup.
    """
    if workers < 2:
        raise ValueError("Karp-Flatt needs at least two workers")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup - 1.0 / workers) / (1.0 - 1.0 / workers)


def amdahl_bound(serial_fraction: float, workers: int) -> float:
    """Amdahl's-law speedup ceiling for a given serial fraction."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if workers < 1:
        raise ValueError("workers must be positive")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def speedup_curve(
    matrix: DistanceMatrix,
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    base_config: Optional[ClusterConfig] = None,
    **solver_options,
) -> List[ScalingPoint]:
    """Run the simulator at each cluster size and build the scaling curve.

    ``base_config`` supplies every parameter except ``n_workers`` (and
    per-worker speeds, which are truncated/invalid across sizes and so
    must be ``None``).  The first entry of ``worker_counts`` is the
    speedup baseline; conventionally 1.
    """
    if not worker_counts:
        raise ValueError("need at least one worker count")
    template = base_config or ClusterConfig()
    if template.worker_speeds is not None:
        raise ValueError(
            "speedup_curve requires a homogeneous base configuration"
        )

    results: List[ParallelResult] = []
    for p in worker_counts:
        cfg = ClusterConfig(
            n_workers=p,
            ub_broadcast_latency=template.ub_broadcast_latency,
            transfer_latency=template.transfer_latency,
            expansion_unit_cost=template.expansion_unit_cost,
            prebranch_factor=template.prebranch_factor,
            donate_when_global_empty=template.donate_when_global_empty,
            steal_from_loaded=template.steal_from_loaded,
        )
        results.append(
            ParallelBranchAndBound(cfg, **solver_options).solve(matrix)
        )

    baseline = results[0].makespan
    points: List[ScalingPoint] = []
    for p, result in zip(worker_counts, results):
        speedup = baseline / result.makespan if result.makespan > 0 else 1.0
        points.append(
            ScalingPoint(
                workers=p,
                makespan=result.makespan,
                speedup=speedup,
                efficiency=speedup / p,
                nodes_expanded=result.total_nodes_expanded,
                serial_fraction=karp_flatt(speedup, p) if p >= 2 else None,
            )
        )
    return points
