"""The compact-set construction pipeline (the paper's core algorithm).

:class:`CompactSetTreeBuilder` wires the whole Section-3 procedure
together: hierarchy discovery, per-node matrix reduction, exact (or
parallel, or heuristic) solving of every reduced matrix, and bottom-up
merging.  The result records one :class:`SubproblemReport` per reduced
matrix so the experiments can show *where* the time went -- the paper's
headline claim is precisely that the largest reduced matrix is far
smaller than the input.

Independent subproblems can solve concurrently: sibling compact sets
share no species, so their reduced matrices are disjoint and the
``subproblem_workers`` thread pool fans the recursion out across them
(threads, not processes -- the branch kernel's numpy work releases the
GIL, and the multiprocess engine already covers process-level scaling).
"""

from __future__ import annotations

import contextvars
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bnb.sequential import BranchAndBoundSolver, SearchStats
from repro.core.merge import merge_group_tree
from repro.core.reduction import REDUCTIONS, reduce_matrix
from repro.graph.hierarchy import CompactSetHierarchy, HierarchyNode
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.recorder import NullRecorder, as_recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound
from repro.tree.ultrametric import UltrametricTree

__all__ = ["SubproblemReport", "CompactResult", "CompactSetTreeBuilder"]


@dataclass
class SubproblemReport:
    """One reduced matrix solved during the pipeline."""

    members: Tuple[int, ...]
    size: int
    cost: float
    elapsed_seconds: float
    solver: str
    nodes_expanded: int = 0
    simulated_makespan: float = 0.0
    #: Full search statistics when the subproblem ran the exact solver
    #: (``None`` for heuristic fallbacks and the simulated cluster).
    stats: Optional[SearchStats] = None


@dataclass
class CompactResult:
    """Outcome of a compact-set construction."""

    tree: UltrametricTree
    cost: float
    hierarchy: CompactSetHierarchy
    reports: List[SubproblemReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    reduction: str = "maximum"

    @property
    def max_subproblem_size(self) -> int:
        """Largest reduced matrix the pipeline had to solve."""
        return max((r.size for r in self.reports), default=1)

    @property
    def total_simulated_makespan(self) -> float:
        """Sum of simulated cluster makespans over all subproblems."""
        return sum(r.simulated_makespan for r in self.reports)

    @property
    def aggregate_search_stats(self) -> Optional[SearchStats]:
        """Every exact subproblem's :class:`SearchStats` merged, in report
        order, or ``None`` when no subproblem ran the exact solver."""
        merged: Optional[SearchStats] = None
        for report in self.reports:
            if report.stats is None:
                continue
            if merged is None:
                merged = SearchStats()
            merged.merge(report.stats)
        return merged


class CompactSetTreeBuilder:
    """Build a near-optimal ultrametric tree via compact-set decomposition.

    Parameters
    ----------
    reduction:
        ``"maximum"`` (the paper's choice; merged tree dominates the
        input matrix), ``"minimum"`` or ``"average"``.
    solver:
        ``"bnb"`` -- sequential Algorithm BBU per reduced matrix;
        ``"parallel"`` -- the simulated-cluster parallel BBU;
        ``"upgmm"`` -- heuristic only (fast lower-quality baseline).
    cluster:
        :class:`ClusterConfig` for the ``"parallel"`` solver.
    max_exact_size:
        Reduced matrices larger than this fall back to UPGMM instead of
        exact search (``None`` disables the fallback).  Pure-Python
        branch-and-bound is exponential, so benchmarks cap this.
    subproblem_workers:
        Number of threads used to solve independent sibling subproblems
        concurrently (default 1 = fully sequential recursion).  Sibling
        compact sets are disjoint, so any value produces the identical
        tree, cost and report list; only wall-clock changes.
    solver_options:
        Extra keyword arguments for the branch-and-bound solver
        (``lower_bound``, ``relationship_33``...).
    recorder:
        Optional :class:`repro.obs.Recorder`.  When supplied, the build
        emits one ``pipeline.node`` span per internal hierarchy node with
        nested ``pipeline.reduce`` / ``pipeline.solve`` /
        ``pipeline.merge`` spans (plus ``pipeline.discover`` for the
        hierarchy scan), and the underlying solver emits its search
        counters.  Defaults to the no-op recorder.  With
        ``subproblem_workers > 1`` the spans of concurrently solved
        subtrees are recorded from pool threads, so they parent to the
        worker thread's own stack rather than the submitting node's span
        (the :class:`~repro.obs.recorder.Recorder` is thread-safe and
        span nesting is per-thread by design).
    """

    def __init__(
        self,
        *,
        reduction: str = "maximum",
        solver: str = "bnb",
        cluster: Optional[ClusterConfig] = None,
        max_exact_size: Optional[int] = None,
        subproblem_workers: int = 1,
        recorder: Optional[NullRecorder] = None,
        **solver_options,
    ) -> None:
        if reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; choose from {sorted(REDUCTIONS)}"
            )
        if solver not in ("bnb", "parallel", "upgmm"):
            raise ValueError(f"unknown solver {solver!r}")
        if subproblem_workers < 1:
            raise ValueError(
                f"subproblem_workers must be >= 1, got {subproblem_workers}"
            )
        self.reduction = reduction
        self.solver = solver
        self.cluster = cluster or ClusterConfig()
        self.max_exact_size = max_exact_size
        self.subproblem_workers = subproblem_workers
        self.solver_options = solver_options
        self.recorder = as_recorder(recorder)
        # Solver objects are stateless across solves; construct once here
        # instead of once per subproblem (this also validates the solver
        # options up front rather than on the first reduced matrix).
        self._bnb_solver: Optional[BranchAndBoundSolver] = None
        self._parallel_solver: Optional[ParallelBranchAndBound] = None
        if solver == "bnb":
            self._bnb_solver = BranchAndBoundSolver(
                recorder=self.recorder, **solver_options
            )
        elif solver == "parallel":
            self._parallel_solver = ParallelBranchAndBound(
                self.cluster, recorder=self.recorder, **solver_options
            )
        # Placeholder labels only need to be unique; itertools.count is
        # atomic under the GIL, so concurrent subtree solves never mint
        # the same name.
        self._placeholder_ids = itertools.count()

    # ------------------------------------------------------------------
    def build(self, matrix: DistanceMatrix) -> CompactResult:
        """Run the full pipeline on ``matrix``."""
        rec = self.recorder
        if matrix.n == 0:
            raise ValueError("cannot build a tree over zero species")
        start = rec.clock()
        with rec.span(
            "pipeline.build",
            n=matrix.n,
            reduction=self.reduction,
            solver=self.solver,
        ) as build_span:
            with rec.span("pipeline.discover", n=matrix.n):
                hierarchy = CompactSetHierarchy.from_matrix(matrix)
            if matrix.n == 1:
                tree = UltrametricTree.leaf(matrix.labels[0])
                reports: List[SubproblemReport] = []
            else:
                self._placeholder_ids = itertools.count()
                tree, reports = self._solve_node(matrix, hierarchy.root)
        # When tracing, the result's elapsed time IS the build span's
        # duration; otherwise fall back to plain clock arithmetic.
        if build_span.end is not None:
            elapsed = build_span.end - build_span.start
        else:
            elapsed = rec.clock() - start
        result = CompactResult(
            tree=tree,
            cost=tree.cost(),
            hierarchy=hierarchy,
            reports=reports,
            elapsed_seconds=elapsed,
            reduction=self.reduction,
        )
        return result

    # ------------------------------------------------------------------
    def _solve_node(
        self,
        matrix: DistanceMatrix,
        node: HierarchyNode,
    ) -> Tuple[UltrametricTree, List[SubproblemReport]]:
        """Solve one hierarchy node; returns the subtree plus its reports.

        Reports come back in deterministic pre-order -- this node's own
        reduced matrix first, then each placeholder child's reports in
        label order -- regardless of how many worker threads solved the
        children, so ``CompactResult.reports`` never depends on thread
        scheduling.
        """
        if node.size == 1:
            (member,) = node.members
            return UltrametricTree.leaf(matrix.labels[member]), []
        if node.arity == 1:  # defensive; laminar construction avoids this
            return self._solve_node(matrix, node.children[0])

        rec = self.recorder
        with rec.span("pipeline.node", size=node.size, arity=node.arity):
            children = sorted(node.children, key=lambda c: min(c.members))
            groups = [sorted(child.members) for child in children]
            labels: List[str] = []
            placeholders: Dict[str, HierarchyNode] = {}
            for child in children:
                if child.size == 1:
                    (member,) = child.members
                    labels.append(matrix.labels[member])
                else:
                    name = f"__cs{next(self._placeholder_ids)}__"
                    labels.append(name)
                    placeholders[name] = child
            with rec.span("pipeline.reduce", size=len(groups)):
                reduced = reduce_matrix(
                    matrix, groups, labels, mode=self.reduction
                )

            group_tree, report = self._solve_matrix(
                reduced, tuple(sorted(node.members))
            )
            reports = [report]

            names = list(placeholders)
            if self.subproblem_workers > 1 and len(names) > 1:
                # Sibling compact sets are disjoint, so their subtrees
                # solve independently.  A fresh pool per node (rather
                # than one shared bounded pool) means a recursive
                # _solve_node call inside a worker can never deadlock
                # waiting on its own pool's slots.  Each submission runs
                # in its own copy of the ambient context (a Context can
                # only be entered by one thread at a time), which keeps
                # the trace id visible in pool threads.
                workers = min(self.subproblem_workers, len(names))
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(
                            contextvars.copy_context().run,
                            self._solve_node,
                            matrix,
                            placeholders[name],
                        )
                        for name in names
                    ]
                    solved = [future.result() for future in futures]
            else:
                solved = [
                    self._solve_node(matrix, placeholders[name])
                    for name in names
                ]

            subtrees: Dict[str, UltrametricTree] = {}
            for name, (subtree, sub_reports) in zip(names, solved):
                subtrees[name] = subtree
                reports.extend(sub_reports)
            with rec.span("pipeline.merge", size=node.size):
                return merge_group_tree(group_tree, subtrees), reports

    def _solve_matrix(
        self, reduced: DistanceMatrix, members: Tuple[int, ...]
    ) -> Tuple[UltrametricTree, SubproblemReport]:
        rec = self.recorder
        solver = self.solver
        if (
            self.max_exact_size is not None
            and reduced.n > self.max_exact_size
            and solver != "upgmm"
        ):
            solver = "upgmm"

        nodes_expanded = 0
        makespan = 0.0
        stats: Optional[SearchStats] = None
        t0 = rec.clock()
        with rec.span(
            "pipeline.solve", solver=solver, size=reduced.n
        ) as solve_span:
            if solver == "bnb":
                assert self._bnb_solver is not None
                result = self._bnb_solver.solve(reduced)
                tree, cost = result.tree, result.cost
                nodes_expanded = result.stats.nodes_expanded
                stats = result.stats
            elif solver == "parallel":
                assert self._parallel_solver is not None
                presult = self._parallel_solver.solve(reduced)
                tree, cost = presult.tree, presult.cost
                nodes_expanded = presult.total_nodes_expanded
                makespan = presult.makespan
            else:  # upgmm
                tree = upgmm(reduced)
                cost = tree.cost()
        # The report's elapsed time comes from the recorder: the solve
        # span's own duration when tracing, its clock otherwise, so every
        # SubproblemReport matches its span exactly.
        if solve_span.end is not None:
            elapsed = solve_span.end - solve_span.start
        else:
            elapsed = rec.clock() - t0

        report = SubproblemReport(
            members=members,
            size=reduced.n,
            cost=cost,
            elapsed_seconds=elapsed,
            solver=solver,
            nodes_expanded=nodes_expanded,
            simulated_makespan=makespan,
            stats=stats,
        )
        return tree, report
