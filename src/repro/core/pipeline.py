"""The compact-set construction pipeline (the paper's core algorithm).

:class:`CompactSetTreeBuilder` wires the whole Section-3 procedure
together: hierarchy discovery, per-node matrix reduction, exact (or
parallel, or heuristic) solving of every reduced matrix, and bottom-up
merging.  The result records one :class:`SubproblemReport` per reduced
matrix so the experiments can show *where* the time went -- the paper's
headline claim is precisely that the largest reduced matrix is far
smaller than the input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bnb.sequential import BranchAndBoundSolver
from repro.core.merge import merge_group_tree
from repro.core.reduction import REDUCTIONS, reduce_matrix
from repro.graph.hierarchy import CompactSetHierarchy, HierarchyNode
from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.recorder import NullRecorder, as_recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound
from repro.tree.ultrametric import UltrametricTree

__all__ = ["SubproblemReport", "CompactResult", "CompactSetTreeBuilder"]


@dataclass
class SubproblemReport:
    """One reduced matrix solved during the pipeline."""

    members: Tuple[int, ...]
    size: int
    cost: float
    elapsed_seconds: float
    solver: str
    nodes_expanded: int = 0
    simulated_makespan: float = 0.0


@dataclass
class CompactResult:
    """Outcome of a compact-set construction."""

    tree: UltrametricTree
    cost: float
    hierarchy: CompactSetHierarchy
    reports: List[SubproblemReport] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    reduction: str = "maximum"

    @property
    def max_subproblem_size(self) -> int:
        """Largest reduced matrix the pipeline had to solve."""
        return max((r.size for r in self.reports), default=1)

    @property
    def total_simulated_makespan(self) -> float:
        """Sum of simulated cluster makespans over all subproblems."""
        return sum(r.simulated_makespan for r in self.reports)


class CompactSetTreeBuilder:
    """Build a near-optimal ultrametric tree via compact-set decomposition.

    Parameters
    ----------
    reduction:
        ``"maximum"`` (the paper's choice; merged tree dominates the
        input matrix), ``"minimum"`` or ``"average"``.
    solver:
        ``"bnb"`` -- sequential Algorithm BBU per reduced matrix;
        ``"parallel"`` -- the simulated-cluster parallel BBU;
        ``"upgmm"`` -- heuristic only (fast lower-quality baseline).
    cluster:
        :class:`ClusterConfig` for the ``"parallel"`` solver.
    max_exact_size:
        Reduced matrices larger than this fall back to UPGMM instead of
        exact search (``None`` disables the fallback).  Pure-Python
        branch-and-bound is exponential, so benchmarks cap this.
    solver_options:
        Extra keyword arguments for the branch-and-bound solver
        (``lower_bound``, ``relationship_33``...).
    recorder:
        Optional :class:`repro.obs.Recorder`.  When supplied, the build
        emits one ``pipeline.node`` span per internal hierarchy node with
        nested ``pipeline.reduce`` / ``pipeline.solve`` /
        ``pipeline.merge`` spans (plus ``pipeline.discover`` for the
        hierarchy scan), and the underlying solver emits its search
        counters.  Defaults to the no-op recorder.
    """

    def __init__(
        self,
        *,
        reduction: str = "maximum",
        solver: str = "bnb",
        cluster: Optional[ClusterConfig] = None,
        max_exact_size: Optional[int] = None,
        recorder: Optional[NullRecorder] = None,
        **solver_options,
    ) -> None:
        if reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; choose from {sorted(REDUCTIONS)}"
            )
        if solver not in ("bnb", "parallel", "upgmm"):
            raise ValueError(f"unknown solver {solver!r}")
        self.reduction = reduction
        self.solver = solver
        self.cluster = cluster or ClusterConfig()
        self.max_exact_size = max_exact_size
        self.solver_options = solver_options
        self.recorder = as_recorder(recorder)
        # Solver objects are stateless across solves; construct once here
        # instead of once per subproblem (this also validates the solver
        # options up front rather than on the first reduced matrix).
        self._bnb_solver: Optional[BranchAndBoundSolver] = None
        self._parallel_solver: Optional[ParallelBranchAndBound] = None
        if solver == "bnb":
            self._bnb_solver = BranchAndBoundSolver(
                recorder=self.recorder, **solver_options
            )
        elif solver == "parallel":
            self._parallel_solver = ParallelBranchAndBound(
                self.cluster, recorder=self.recorder, **solver_options
            )

    # ------------------------------------------------------------------
    def build(self, matrix: DistanceMatrix) -> CompactResult:
        """Run the full pipeline on ``matrix``."""
        rec = self.recorder
        if matrix.n == 0:
            raise ValueError("cannot build a tree over zero species")
        start = rec.clock()
        with rec.span(
            "pipeline.build",
            n=matrix.n,
            reduction=self.reduction,
            solver=self.solver,
        ) as build_span:
            with rec.span("pipeline.discover", n=matrix.n):
                hierarchy = CompactSetHierarchy.from_matrix(matrix)
            reports: List[SubproblemReport] = []
            if matrix.n == 1:
                tree = UltrametricTree.leaf(matrix.labels[0])
            else:
                self._placeholder_counter = 0
                tree = self._solve_node(matrix, hierarchy.root, reports)
        # When tracing, the result's elapsed time IS the build span's
        # duration; otherwise fall back to plain clock arithmetic.
        if build_span.end is not None:
            elapsed = build_span.end - build_span.start
        else:
            elapsed = rec.clock() - start
        result = CompactResult(
            tree=tree,
            cost=tree.cost(),
            hierarchy=hierarchy,
            reports=reports,
            elapsed_seconds=elapsed,
            reduction=self.reduction,
        )
        return result

    # ------------------------------------------------------------------
    def _solve_node(
        self,
        matrix: DistanceMatrix,
        node: HierarchyNode,
        reports: List[SubproblemReport],
    ) -> UltrametricTree:
        if node.size == 1:
            (member,) = node.members
            return UltrametricTree.leaf(matrix.labels[member])
        if node.arity == 1:  # defensive; laminar construction avoids this
            return self._solve_node(matrix, node.children[0], reports)

        rec = self.recorder
        with rec.span("pipeline.node", size=node.size, arity=node.arity):
            children = sorted(node.children, key=lambda c: min(c.members))
            groups = [sorted(child.members) for child in children]
            labels: List[str] = []
            placeholders: Dict[str, HierarchyNode] = {}
            for child in children:
                if child.size == 1:
                    (member,) = child.members
                    labels.append(matrix.labels[member])
                else:
                    name = f"__cs{self._placeholder_counter}__"
                    self._placeholder_counter += 1
                    labels.append(name)
                    placeholders[name] = child
            with rec.span("pipeline.reduce", size=len(groups)):
                reduced = reduce_matrix(
                    matrix, groups, labels, mode=self.reduction
                )

            group_tree, report = self._solve_matrix(
                reduced, tuple(sorted(node.members))
            )
            reports.append(report)

            subtrees = {
                name: self._solve_node(matrix, child, reports)
                for name, child in placeholders.items()
            }
            with rec.span("pipeline.merge", size=node.size):
                return merge_group_tree(group_tree, subtrees)

    def _solve_matrix(
        self, reduced: DistanceMatrix, members: Tuple[int, ...]
    ) -> Tuple[UltrametricTree, SubproblemReport]:
        rec = self.recorder
        solver = self.solver
        if (
            self.max_exact_size is not None
            and reduced.n > self.max_exact_size
            and solver != "upgmm"
        ):
            solver = "upgmm"

        nodes_expanded = 0
        makespan = 0.0
        t0 = rec.clock()
        with rec.span(
            "pipeline.solve", solver=solver, size=reduced.n
        ) as solve_span:
            if solver == "bnb":
                assert self._bnb_solver is not None
                result = self._bnb_solver.solve(reduced)
                tree, cost = result.tree, result.cost
                nodes_expanded = result.stats.nodes_expanded
            elif solver == "parallel":
                assert self._parallel_solver is not None
                presult = self._parallel_solver.solve(reduced)
                tree, cost = presult.tree, presult.cost
                nodes_expanded = presult.total_nodes_expanded
                makespan = presult.makespan
            else:  # upgmm
                tree = upgmm(reduced)
                cost = tree.cost()
        # The report's elapsed time comes from the recorder: the solve
        # span's own duration when tracing, its clock otherwise, so every
        # SubproblemReport matches its span exactly.
        if solve_span.end is not None:
            elapsed = solve_span.end - solve_span.start
        else:
            elapsed = rec.clock() - t0

        report = SubproblemReport(
            members=members,
            size=reduced.n,
            cost=cost,
            elapsed_seconds=elapsed,
            solver=solver,
            nodes_expanded=nodes_expanded,
            simulated_makespan=makespan,
        )
        return tree, report
