"""End-to-end validation of a constructed tree.

The "user-friendly tool system" the project report promises should tell
a biologist whether the tree it hands back is trustworthy.
:func:`validate_tree` runs every check the theory provides and returns a
structured :class:`TreeReport`:

* structural validity (binary, monotone heights, zero-height leaves);
* feasibility (``d_T >= M``, the MUT constraint);
* optimality bracket (cost vs the UPGMM upper bound; optionally vs the
  exact optimum when the instance is small enough to afford it);
* faithfulness (3-3 contradictions, cophenetic correlation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.heuristics.upgma import upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.tree.checks import count_33_contradictions
from repro.tree.compare import cophenetic_correlation
from repro.tree.ultrametric import UltrametricTree
from repro.verify.oracles import (
    FeasibilityOracle,
    StructureOracle,
    VerificationContext,
    Violation,
)

__all__ = ["TreeReport", "validate_tree"]


@dataclass
class TreeReport:
    """Everything a user needs to judge a constructed tree."""

    n_species: int
    cost: float
    structurally_valid: bool
    feasible: bool
    upgmm_cost: float
    contradictions_33: int
    cophenetic: float
    optimal_cost: Optional[float] = None
    problems: List[str] = field(default_factory=list)
    #: The structured oracle findings behind ``problems`` (see
    #: :mod:`repro.verify.oracles`); empty when the tree is clean.
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No problems found."""
        return not self.problems

    @property
    def gap_vs_upgmm(self) -> float:
        """How far below the heuristic bound the tree landed (negative is
        better; 0 means no improvement over UPGMM)."""
        if self.upgmm_cost == 0:
            return 0.0
        return self.cost / self.upgmm_cost - 1.0

    @property
    def gap_vs_optimal(self) -> Optional[float]:
        """Relative distance from the exact optimum, when computed."""
        if self.optimal_cost is None or self.optimal_cost == 0:
            return None
        return self.cost / self.optimal_cost - 1.0

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"species            : {self.n_species}",
            f"tree cost          : {self.cost:.4f}",
            f"structurally valid : {self.structurally_valid}",
            f"feasible (d_T >= M): {self.feasible}",
            f"UPGMM bound        : {self.upgmm_cost:.4f} "
            f"(gap {100 * self.gap_vs_upgmm:+.2f}%)",
        ]
        if self.optimal_cost is not None:
            lines.append(
                f"exact optimum      : {self.optimal_cost:.4f} "
                f"(gap {100 * (self.gap_vs_optimal or 0):+.2f}%)"
            )
        lines.append(f"3-3 contradictions : {self.contradictions_33}")
        lines.append(f"cophenetic corr.   : {self.cophenetic:.4f}")
        lines.append("verdict            : " + ("OK" if self.ok else "; ".join(self.problems)))
        return "\n".join(lines)


def validate_tree(
    tree: UltrametricTree,
    matrix: DistanceMatrix,
    *,
    compare_optimal: bool = False,
    optimal_limit: int = 12,
) -> TreeReport:
    """Validate ``tree`` against ``matrix`` and summarise its quality.

    With ``compare_optimal`` and ``matrix.n <= optimal_limit`` the exact
    minimum is computed too (exponential -- hence the cap).

    The structural and feasibility checks are delegated to the
    verification oracles (:mod:`repro.verify.oracles`), so this report,
    the differential harness, the fuzz loop and the serving layer's
    ``verify: true`` all enforce the exact same invariants; the
    structured findings are kept on ``report.violations``.
    """
    if set(tree.leaf_labels) != set(matrix.labels):
        raise ValueError("tree leaves and matrix labels differ")

    problems: List[str] = []
    ctx = VerificationContext(tree=tree, matrix=matrix)
    structure_violations = StructureOracle()(ctx)
    valid = not structure_violations
    if not valid:
        problems.append("tree is not a valid ultrametric tree")
    feasibility_violations = FeasibilityOracle()(ctx)
    feasible = not feasibility_violations
    if not feasible:
        problems.append("tree violates d_T >= M")
    violations = structure_violations + feasibility_violations

    cost = tree.cost()
    upper = upgmm(matrix).cost()

    optimal_cost: Optional[float] = None
    if compare_optimal and matrix.n <= optimal_limit:
        from repro.bnb.sequential import exact_mut

        optimal_cost = exact_mut(matrix).cost
        if cost < optimal_cost - 1e-6:
            problems.append(
                "tree cost is below the exact optimum (infeasible or buggy)"
            )

    report = TreeReport(
        n_species=matrix.n,
        cost=cost,
        structurally_valid=valid,
        feasible=feasible,
        upgmm_cost=upper,
        contradictions_33=count_33_contradictions(tree, matrix),
        cophenetic=cophenetic_correlation(tree, matrix),
        optimal_cost=optimal_cost,
        problems=problems,
        violations=violations,
    )
    return report
