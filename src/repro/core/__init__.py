"""The paper's primary contribution: compact-set tree construction.

``decompose -> solve small matrices -> merge subtrees``:

1. find all compact sets of the distance matrix and arrange them as a
   laminar hierarchy (:mod:`repro.graph`);
2. for each internal hierarchy node, build the small *reduced* matrix
   over its child groups (:mod:`repro.core.reduction`; the paper studies
   the *maximum* reduction);
3. solve every reduced matrix exactly with (parallel) branch-and-bound
   (:mod:`repro.bnb`, :mod:`repro.parallel`);
4. graft the solved subtrees back together (:mod:`repro.core.merge`) --
   compactness guarantees the graft is a feasible ultrametric tree.
"""

from repro.core.reduction import reduce_matrix, REDUCTIONS
from repro.core.merge import merge_group_tree
from repro.core.pipeline import (
    CompactSetTreeBuilder,
    CompactResult,
    SubproblemReport,
)
from repro.core.api import construct_tree, construct_tree_cached, METHODS
from repro.core.validation import TreeReport, validate_tree
from repro.core.batch import BatchRunner, BatchReport, MethodAggregate

__all__ = [
    "reduce_matrix",
    "REDUCTIONS",
    "merge_group_tree",
    "CompactSetTreeBuilder",
    "CompactResult",
    "SubproblemReport",
    "construct_tree",
    "construct_tree_cached",
    "METHODS",
    "TreeReport",
    "validate_tree",
    "BatchRunner",
    "BatchReport",
    "MethodAggregate",
]
