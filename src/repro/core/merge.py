"""Merging solved subtrees back into one ultrametric tree.

The last step of the paper's pipeline: each leaf of a reduced-matrix tree
that stands for a whole compact set is replaced by that compact set's own
solved subtree.  Compactness makes this safe: the placeholder leaf's
parent sits at height at least ``Min(C, !C) / 2``, while the subtree root
sits at ``Max(C) / 2 < Min(C, !C) / 2`` -- so the grafted edge always has
positive weight and the result remains a valid ultrametric tree (and,
under the *maximum* reduction, still dominates the original matrix).
"""

from __future__ import annotations

from typing import Mapping

from repro.tree.ultrametric import UltrametricTree

__all__ = ["merge_group_tree"]


def merge_group_tree(
    group_tree: UltrametricTree,
    subtrees: Mapping[str, UltrametricTree],
) -> UltrametricTree:
    """Replace placeholder leaves of ``group_tree`` by solved subtrees.

    ``subtrees`` maps placeholder leaf labels to the trees that expand
    them; placeholders not present in the map are kept as-is (singleton
    groups already carry the species label).  Raises ``ValueError`` if a
    graft would need a negative edge, i.e. the subtree is taller than the
    placeholder's parent allows -- which cannot happen for genuine
    compact sets and therefore signals a caller bug.
    """
    merged = group_tree
    for label, subtree in subtrees.items():
        if not merged.has_leaf(label):
            raise KeyError(f"group tree has no placeholder leaf {label!r}")
        merged = merged.replace_leaf(label, subtree)
    return merged
