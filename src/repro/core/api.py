"""One-call public API: ``construct_tree(matrix, method=...)``.

The project report promises "an efficient and user-friendly parallel
system" for biologists; this module is the friendly part.  Every method
the repository implements is reachable by name:

=================  =========================================================
``"compact"``      compact-set decomposition + sequential branch-and-bound
``"compact-parallel"``  compact-set decomposition + simulated-cluster B&B
``"bnb"``          plain sequential Algorithm BBU (exact)
``"parallel-bnb"`` plain simulated-cluster Algorithm BBU (exact)
``"upgma"``        UPGMA heuristic
``"upgmm"``        UPGMM heuristic (feasible upper bound)
``"greedy"``       sequential-addition heuristic (feasible, cheaper)
``"nj"``           Neighbor-Joining (additive, non-ultrametric baseline)
=================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.bnb.sequential import BranchAndBoundSolver
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.nj import neighbor_joining
from repro.heuristics.greedy import greedy_insertion
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.recorder import NullRecorder, as_recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound

__all__ = ["ConstructionResult", "construct_tree", "METHODS"]

METHODS = (
    "compact",
    "compact-parallel",
    "bnb",
    "parallel-bnb",
    "upgma",
    "upgmm",
    "greedy",
    "nj",
)


@dataclass
class ConstructionResult:
    """Uniform wrapper over every construction method's output.

    ``tree`` is an :class:`~repro.tree.ultrametric.UltrametricTree` for
    all methods except ``"nj"``, which yields an
    :class:`~repro.heuristics.nj.AdditiveTree`.  ``details`` holds the
    method-specific result object (``BBUResult``, ``CompactResult``,
    ``ParallelResult`` or ``None``) for callers who want the statistics.
    """

    tree: Any
    cost: float
    method: str
    details: Any = None


def construct_tree(
    matrix: DistanceMatrix,
    method: str = "compact",
    *,
    cluster: Optional[ClusterConfig] = None,
    recorder: Optional[NullRecorder] = None,
    **options,
) -> ConstructionResult:
    """Construct an evolutionary tree for ``matrix`` with ``method``.

    ``options`` are forwarded to the underlying engine (e.g.
    ``lower_bound=...``, ``reduction=...``, ``max_exact_size=...``).
    ``recorder`` threads a :class:`repro.obs.Recorder` through whichever
    engine runs; heuristic methods execute inside a single
    ``heuristic.<method>`` span.
    """
    if method == "compact":
        builder = CompactSetTreeBuilder(
            solver="bnb", recorder=recorder, **options
        )
        result = builder.build(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "compact-parallel":
        builder = CompactSetTreeBuilder(
            solver="parallel", cluster=cluster, recorder=recorder, **options
        )
        result = builder.build(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "bnb":
        result = BranchAndBoundSolver(recorder=recorder, **options).solve(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "parallel-bnb":
        solver = ParallelBranchAndBound(cluster, recorder=recorder, **options)
        result = solver.solve(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    rec = as_recorder(recorder)
    if method == "upgma":
        with rec.span("heuristic.upgma", n=matrix.n):
            tree = upgma(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "upgmm":
        with rec.span("heuristic.upgmm", n=matrix.n):
            tree = upgmm(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "greedy":
        with rec.span("heuristic.greedy", n=matrix.n):
            tree = greedy_insertion(matrix, **options)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "nj":
        with rec.span("heuristic.nj", n=matrix.n):
            tree = neighbor_joining(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
