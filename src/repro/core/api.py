"""One-call public API: ``construct_tree(matrix, method=...)``.

The project report promises "an efficient and user-friendly parallel
system" for biologists; this module is the friendly part.  Every method
the repository implements is reachable by name:

=================  =========================================================
``"compact"``      compact-set decomposition + sequential branch-and-bound
``"compact-parallel"``  compact-set decomposition + simulated-cluster B&B
``"bnb"``          plain sequential Algorithm BBU (exact, batched kernel)
``"bnb-scalar"``   sequential BBU with the scalar branching reference
``"parallel-bnb"`` plain simulated-cluster Algorithm BBU (exact)
``"multiprocess"`` real multi-core Algorithm BBU (exact, worker processes)
``"upgma"``        UPGMA heuristic
``"upgmm"``        UPGMM heuristic (feasible upper bound)
``"greedy"``       sequential-addition heuristic (feasible, cheaper)
``"nj"``           Neighbor-Joining (additive, non-ultrametric baseline)
=================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.bnb.sequential import BranchAndBoundSolver
from repro.core.pipeline import CompactSetTreeBuilder
from repro.heuristics.nj import neighbor_joining
from repro.heuristics.greedy import greedy_insertion
from repro.heuristics.upgma import upgma, upgmm
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.metrics import MetricsRegistry, as_metrics
from repro.obs.recorder import NullRecorder, as_recorder
from repro.parallel.config import ClusterConfig
from repro.parallel.simulator import ParallelBranchAndBound

__all__ = [
    "ConstructionResult",
    "construct_tree",
    "construct_tree_cached",
    "METHODS",
]

METHODS = (
    "compact",
    "compact-parallel",
    "bnb",
    "bnb-scalar",
    "parallel-bnb",
    "multiprocess",
    "upgma",
    "upgmm",
    "greedy",
    "nj",
)


@dataclass
class ConstructionResult:
    """Uniform wrapper over every construction method's output.

    ``tree`` is an :class:`~repro.tree.ultrametric.UltrametricTree` for
    all methods except ``"nj"``, which yields an
    :class:`~repro.heuristics.nj.AdditiveTree`.  ``details`` holds the
    method-specific result object (``BBUResult``, ``CompactResult``,
    ``ParallelResult`` or ``None``) for callers who want the statistics.
    ``verification`` is populated only by ``construct_tree(...,
    verify=True)``: the list of :class:`repro.verify.oracles.Violation`
    records the result oracles found (empty means the result checked
    out; ``None`` means verification was not requested).
    """

    tree: Any
    cost: float
    method: str
    details: Any = None
    verification: Optional[list] = None

    @property
    def verified_ok(self) -> Optional[bool]:
        """True/False once verified; ``None`` when not verified."""
        if self.verification is None:
            return None
        return not self.verification


def construct_tree(
    matrix: DistanceMatrix,
    method: str = "compact",
    *,
    cluster: Optional[ClusterConfig] = None,
    recorder: Optional[NullRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    verify: bool = False,
    **options,
) -> ConstructionResult:
    """Construct an evolutionary tree for ``matrix`` with ``method``.

    ``options`` are forwarded to the underlying engine (e.g.
    ``lower_bound=...``, ``reduction=...``, ``max_exact_size=...``).
    ``recorder`` threads a :class:`repro.obs.Recorder` through whichever
    engine runs; heuristic methods execute inside a single
    ``heuristic.<method>`` span.

    With ``verify=True`` the result is checked by every verification
    oracle (:mod:`repro.verify.oracles`: structure, feasibility, cost
    consistency, Newick round trip, label preservation) before being
    returned; violations land in ``result.verification`` (and on the
    ``verify.violations`` metric) rather than raising, so callers decide
    the failure policy.  ``"nj"`` results are additive, not ultrametric,
    and skip verification.

    Every call -- whatever the method -- records its wall-clock latency
    into the ``solve.seconds`` histogram (labelled by method) on
    ``metrics``, defaulting to the process-wide
    :data:`repro.obs.metrics.REGISTRY`; that is how ``GET /metrics`` on
    a serving process sees per-method engine latency without any
    per-request wiring.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {METHODS}")
    registry = as_metrics(metrics)
    import time as _time

    t0 = _time.perf_counter()
    try:
        result = _dispatch(matrix, method, cluster, recorder, options)
    finally:
        registry.histogram(
            "solve.seconds",
            "Engine latency of construct_tree, per method.",
            labelnames=("method",),
        ).observe(_time.perf_counter() - t0, method=method)
    if verify and method != "nj":
        from repro.verify.oracles import run_oracles

        result.verification = run_oracles(
            result.tree,
            matrix,
            reported_cost=result.cost,
            method=method,
            recorder=recorder,
            metrics=registry,
        )
    return result


def _dispatch(
    matrix: DistanceMatrix,
    method: str,
    cluster: Optional[ClusterConfig],
    recorder: Optional[NullRecorder],
    options: dict,
) -> ConstructionResult:
    if method == "compact":
        builder = CompactSetTreeBuilder(
            solver="bnb", recorder=recorder, **options
        )
        result = builder.build(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "compact-parallel":
        builder = CompactSetTreeBuilder(
            solver="parallel", cluster=cluster, recorder=recorder, **options
        )
        result = builder.build(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "bnb":
        result = BranchAndBoundSolver(recorder=recorder, **options).solve(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "bnb-scalar":
        # The scalar branching loop kept as a live differential reference
        # for the batched kernel: identical search, per-child clones.
        result = BranchAndBoundSolver(
            recorder=recorder, use_kernel=False, **options
        ).solve(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "parallel-bnb":
        solver = ParallelBranchAndBound(cluster, recorder=recorder, **options)
        result = solver.solve(matrix)
        return ConstructionResult(result.tree, result.cost, method, result)
    if method == "multiprocess":
        from repro.parallel.multiprocess import multiprocess_mut

        n_workers = cluster.n_workers if cluster is not None else 4
        mp_result = multiprocess_mut(
            matrix, n_workers=n_workers, recorder=recorder, **options
        )
        return ConstructionResult(
            mp_result.tree, mp_result.cost, method, mp_result
        )
    rec = as_recorder(recorder)
    if method == "upgma":
        with rec.span("heuristic.upgma", n=matrix.n):
            tree = upgma(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "upgmm":
        with rec.span("heuristic.upgmm", n=matrix.n):
            tree = upgmm(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "greedy":
        with rec.span("heuristic.greedy", n=matrix.n):
            tree = greedy_insertion(matrix, **options)
        return ConstructionResult(tree, tree.cost(), method)
    if method == "nj":
        with rec.span("heuristic.nj", n=matrix.n):
            tree = neighbor_joining(matrix)
        return ConstructionResult(tree, tree.cost(), method)
    raise ValueError(
        f"unknown method {method!r}; choose from {METHODS}"
    )  # pragma: no cover - construct_tree validates first


def construct_tree_cached(
    matrix: DistanceMatrix,
    method: str = "compact",
    *,
    cache,
    cluster: Optional[ClusterConfig] = None,
    recorder: Optional[NullRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    verify: bool = False,
    **options,
) -> ConstructionResult:
    """:func:`construct_tree` behind a content-addressed result cache.

    ``cache`` is a :class:`repro.service.cache.ResultCache` (or anything
    with its ``get``/``put`` protocol).  The key covers the matrix
    content (:meth:`DistanceMatrix.digest`) and the canonical solver
    parameters, so equal inputs hit across processes and restarts.  A
    hit reconstructs the tree from the cached Newick string (its
    ``details`` is the cached payload dict, not the engine's result
    object) and emits a ``cache.hit`` counter on ``recorder``; a miss
    solves, stores the payload and emits ``cache.miss``.

    ``verify=True`` runs the verification oracles on the returned tree
    whether it came from the cache or a fresh solve -- a hit's
    reconstructed tree is checked too, so a corrupted cache entry cannot
    smuggle an unchecked result past the caller.  ``verify`` is *not*
    part of the cache key (the same convention the service scheduler
    uses): verification changes what is checked, not what is computed.

    ``"nj"`` bypasses the cache: additive NJ trees do not round-trip
    through the ultrametric Newick parser.
    """
    from repro.service.cache import cache_key
    from repro.tree.newick import parse_newick, to_newick

    if method == "nj":
        return construct_tree(
            matrix, method, cluster=cluster, recorder=recorder,
            metrics=metrics, verify=verify, **options
        )
    rec = as_recorder(recorder)
    registry = as_metrics(metrics)
    key_options = dict(options)
    if cluster is not None:
        key_options["workers"] = cluster.n_workers
    key = cache_key(matrix, method, key_options)
    payload = cache.get(key)
    if payload is not None:
        rec.counter("cache.hit", key=key[:12])
        registry.counter(
            "cache.hit", "Content-addressed result-cache hits."
        ).inc()
        result = ConstructionResult(
            tree=parse_newick(payload["newick"]),
            cost=payload["cost"],
            method=payload["method"],
            details=payload,
        )
        if verify:
            from repro.verify.oracles import run_oracles

            result.verification = run_oracles(
                result.tree,
                matrix,
                reported_cost=result.cost,
                method=result.method,
                recorder=recorder,
                metrics=registry,
            )
        return result
    rec.counter("cache.miss", key=key[:12])
    registry.counter(
        "cache.miss", "Content-addressed result-cache misses."
    ).inc()
    result = construct_tree(
        matrix, method, cluster=cluster, recorder=recorder,
        metrics=metrics, verify=verify, **options
    )
    cache.put(key, {
        "method": result.method,
        "n_species": matrix.n,
        "cost": float(result.cost),
        "newick": to_newick(result.tree),
    })
    return result
