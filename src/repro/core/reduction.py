"""Group-matrix reduction (PaCT Section 3.1, Figure 6).

Given a partition of the species into groups (the children of one
compact-set hierarchy node), build the small matrix whose element
``(A, B)`` summarises all distances between group ``A`` and group ``B``.
The paper defines three summaries and studies the first:

* ``maximum`` -- the largest cross distance.  The reduced matrix stays a
  metric, and the merged tree *dominates* the original matrix (feasible
  MUT candidate);
* ``minimum`` -- the smallest cross distance.  Cheapest merged tree, but
  feasibility is lost (the reduced matrix may not even be metric);
* ``average`` -- the mean cross distance; a compromise.

Worked example: for the paper's Figure 3 graph, the *maximum* matrix of
``C4 = {C3, 5}`` with ``C3 = {1, 2, 3}`` stores ``max(M[5, x]) = 6`` for
``x`` in ``C3`` -- exactly Figure 6.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["reduce_matrix", "REDUCTIONS"]


def _cross_block(matrix: DistanceMatrix, a: Sequence[int], b: Sequence[int]) -> np.ndarray:
    return matrix.values[np.ix_(list(a), list(b))]


REDUCTIONS: Dict[str, Callable[[np.ndarray], float]] = {
    "maximum": lambda block: float(block.max()),
    "minimum": lambda block: float(block.min()),
    "average": lambda block: float(block.mean()),
}


def reduce_matrix(
    matrix: DistanceMatrix,
    groups: Sequence[Sequence[int]],
    labels: Sequence[str],
    *,
    mode: str = "maximum",
) -> DistanceMatrix:
    """The reduced matrix over ``groups`` with one row per group.

    ``groups`` must be disjoint, non-empty index sets; ``labels`` names
    the rows of the result (singleton groups conventionally reuse the
    species label so the final tree reads naturally).
    """
    if mode not in REDUCTIONS:
        raise ValueError(f"unknown reduction {mode!r}; choose from {sorted(REDUCTIONS)}")
    if len(groups) != len(labels):
        raise ValueError("need exactly one label per group")
    seen: set = set()
    for group in groups:
        if not group:
            raise ValueError("groups must be non-empty")
        members = set(group)
        if members & seen:
            raise ValueError("groups must be disjoint")
        seen |= members
    summarise = REDUCTIONS[mode]
    m = len(groups)
    values = np.zeros((m, m))
    for i in range(m):
        for j in range(i + 1, m):
            block = _cross_block(matrix, groups[i], groups[j])
            values[i, j] = values[j, i] = summarise(block)
    return DistanceMatrix(values, list(labels), validate=False)
