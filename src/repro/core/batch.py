"""Batch experiment runner.

The papers never report single runs: the HPCAsia evaluation uses "20
instances [per species count] to reduce the factor influenced by
distance matrix", and the NSC report's tables quote the *median*,
*average* and *worst* times over 10 datasets precisely because B&B
effort is so instance-dependent.  :class:`BatchRunner` packages that
methodology: run one or more construction methods over a batch of
matrices and aggregate cost/time/effort statistics.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.api import construct_tree
from repro.matrix.distance_matrix import DistanceMatrix
from repro.obs.recorder import NullRecorder

__all__ = ["MethodAggregate", "BatchReport", "BatchRunner"]


@dataclass(frozen=True)
class MethodAggregate:
    """Median / mean / worst statistics for one method over a batch."""

    method: str
    runs: int
    median_seconds: float
    mean_seconds: float
    worst_seconds: float
    median_cost: float
    mean_cost: float
    worst_cost: float
    #: Total branch-and-bound nodes expanded over the batch (0 for pure
    #: heuristics; the papers' "effort" axis).
    total_nodes_expanded: int = 0

    def row(self) -> str:
        """One table row in the NSC-report style."""
        return (
            f"{self.method:<18} runs={self.runs:<3} "
            f"time median={self.median_seconds:.4f}s "
            f"mean={self.mean_seconds:.4f}s worst={self.worst_seconds:.4f}s | "
            f"cost median={self.median_cost:.2f} worst={self.worst_cost:.2f} | "
            f"nodes={self.total_nodes_expanded}"
        )


def _effort_of(details) -> int:
    """Branch-and-bound nodes expanded, for any method's result details."""
    if details is None:
        return 0
    stats = getattr(details, "stats", None)
    if stats is not None:  # BBUResult
        return stats.nodes_expanded
    reports = getattr(details, "reports", None)
    if reports is not None:  # CompactResult
        return sum(r.nodes_expanded for r in reports)
    return getattr(details, "total_nodes_expanded", 0)  # ParallelResult


@dataclass
class BatchReport:
    """Per-instance measurements plus per-method aggregates."""

    methods: List[str]
    #: seconds[method][i] / costs[method][i] for instance i.
    seconds: Dict[str, List[float]] = field(default_factory=dict)
    costs: Dict[str, List[float]] = field(default_factory=dict)
    #: nodes expanded per instance (0 for heuristic methods).
    effort: Dict[str, List[int]] = field(default_factory=dict)

    def aggregate(self, method: str) -> MethodAggregate:
        times = self.seconds[method]
        costs = self.costs[method]
        return MethodAggregate(
            method=method,
            runs=len(times),
            median_seconds=statistics.median(times),
            mean_seconds=statistics.fmean(times),
            worst_seconds=max(times),
            median_cost=statistics.median(costs),
            mean_cost=statistics.fmean(costs),
            worst_cost=max(costs),
            total_nodes_expanded=sum(self.effort.get(method, [])),
        )

    def aggregates(self) -> List[MethodAggregate]:
        return [self.aggregate(method) for method in self.methods]

    def table(self) -> str:
        """The full comparison table as text."""
        return "\n".join(agg.row() for agg in self.aggregates())

    def cost_ratio(self, method: str, baseline: str) -> List[float]:
        """Per-instance cost ratios ``method / baseline``.

        A zero-cost baseline (degenerate or singleton instance) yields
        ``inf`` -- or ``nan`` when the method's cost is also zero --
        instead of raising ``ZeroDivisionError``.
        """
        ratios = []
        for a, b in zip(self.costs[method], self.costs[baseline]):
            if b == 0:
                ratios.append(math.nan if a == 0 else math.inf)
            else:
                ratios.append(a / b)
        return ratios


class BatchRunner:
    """Run construction methods over a batch of matrices.

    ``method_options`` maps a method name to the keyword arguments its
    engine should receive (e.g. ``{"compact": {"max_exact_size": 16}}``).
    A custom ``clock`` is injectable for deterministic tests; the same
    clock drives the engines' internal timing (their recorder inherits
    it), so per-run and per-subproblem timings are mutually consistent.
    An optional ``recorder`` threads through to every engine: each run
    executes inside a ``batch.run`` span and per-method effort arrives as
    ``batch.nodes_expanded`` counters.
    """

    def __init__(
        self,
        methods: Sequence[str],
        *,
        method_options: Dict[str, dict] = None,
        clock: Callable[[], float] = time.perf_counter,
        recorder: Optional[NullRecorder] = None,
    ) -> None:
        if not methods:
            raise ValueError("need at least one method")
        self.methods = list(methods)
        self.method_options = dict(method_options or {})
        self.clock = clock
        # No recorder given: still route engine timing through our clock
        # via a null recorder, so an injected clock governs *all* timing.
        self.recorder = recorder if recorder is not None else NullRecorder(clock)

    def run(self, matrices: Sequence[DistanceMatrix]) -> BatchReport:
        """Execute every method on every matrix."""
        if not matrices:
            raise ValueError("need at least one matrix")
        rec = self.recorder
        report = BatchReport(methods=list(self.methods))
        for method in self.methods:
            report.seconds[method] = []
            report.costs[method] = []
            report.effort[method] = []
        for instance, matrix in enumerate(matrices):
            for method in self.methods:
                options = self.method_options.get(method, {})
                start = self.clock()
                with rec.span(
                    "batch.run", method=method, instance=instance, n=matrix.n
                ):
                    result = construct_tree(
                        matrix, method, recorder=rec, **options
                    )
                elapsed = self.clock() - start
                effort = _effort_of(result.details)
                if rec.enabled:
                    rec.counter(
                        "batch.nodes_expanded", effort, method=method
                    )
                report.seconds[method].append(elapsed)
                report.costs[method].append(result.cost)
                report.effort[method].append(effort)
        return report
