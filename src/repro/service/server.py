"""Stdlib HTTP front end: the ``repro-mut serve`` JSON API.

Built on :class:`http.server.ThreadingHTTPServer` -- no third-party web
framework, per the repository's no-new-dependencies rule.  Endpoints::

    POST /solve      submit a matrix; waits for the result by default
    GET  /jobs/<id>  poll a job submitted with {"wait": false}
    GET  /healthz    liveness + version (503 once draining)
    GET  /stats      scheduler, queue and cache statistics

``POST /solve`` accepts a JSON body with either ``"phylip"`` (the PHYLIP
square text) or ``"matrix"`` (a list of rows, or ``{"values": ...,
"labels": ...}``), plus optional ``"method"``, ``"options"``,
``"timeout"`` (job deadline, seconds), ``"wait"`` (default true) and
``"wait_seconds"`` (response-wait budget).  Errors come back as
``{"error": <code>, "detail": <message>}`` with the status of the typed
:class:`~repro.service.errors.ServiceError` they correspond to.
"""

from __future__ import annotations

import io
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError
from repro.matrix.io import read_phylip
from repro.service.errors import (
    BadRequest,
    JobNotFound,
    ServiceError,
)
from repro.service.jobs import JobState
from repro.service.scheduler import Scheduler

__all__ = ["ServiceServer", "serve"]

#: Default budget a synchronous ``POST /solve`` waits for its job.
DEFAULT_WAIT_SECONDS = 30.0
#: Cap on request body size: a 10k-species float matrix is ~1.6 GB of
#: JSON; nothing legitimate is near this.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Job states whose HTTP representation is not 200.
_STATE_STATUS = {
    JobState.FAILED: 500,
    JobState.TIMEOUT: 504,
    JobState.CANCELLED: 409,
}


def _version() -> str:
    from repro import __version__

    return __version__


def _matrix_from_request(body: dict) -> DistanceMatrix:
    """Build the input matrix from a ``POST /solve`` body."""
    phylip = body.get("phylip")
    raw = body.get("matrix")
    if (phylip is None) == (raw is None):
        raise BadRequest("provide exactly one of 'phylip' or 'matrix'")
    try:
        if phylip is not None:
            if not isinstance(phylip, str):
                raise BadRequest("'phylip' must be a string")
            return read_phylip(io.StringIO(phylip))
        labels = None
        if isinstance(raw, dict):
            labels = raw.get("labels")
            raw = raw.get("values")
        return DistanceMatrix(raw, labels)
    except MatrixValidationError as exc:
        raise BadRequest(f"invalid matrix: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"malformed matrix payload: {exc}") from exc


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the server instance hangs off ``self.server``."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.service.verbose:
            sys.stderr.write(
                f"[{self.address_string()}] {format % args}\n"
            )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: ServiceError) -> None:
        self._send_json(
            exc.http_status, {"error": exc.code, "detail": str(exc)}
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc.msg}") from exc
        if not isinstance(body, dict):
            raise BadRequest("body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path.rstrip("/") != "/solve":
                raise JobNotFound(self.path)
            self._solve()
        except ServiceError as exc:
            self._send_error_json(exc)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                closed = service.scheduler.closed
                self._send_json(
                    503 if closed else 200,
                    {
                        "status": "draining" if closed else "ok",
                        "version": _version(),
                        "uptime_seconds": time.time() - service.started_at,
                    },
                )
            elif path == "/stats":
                stats = service.scheduler.stats()
                stats["version"] = _version()
                stats["uptime_seconds"] = time.time() - service.started_at
                self._send_json(200, stats)
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                job = service.scheduler.job(job_id)
                if job is None:
                    raise JobNotFound(job_id)
                self._send_json(
                    _STATE_STATUS.get(job.state, 200), job.to_json()
                )
            else:
                raise JobNotFound(path)
        except ServiceError as exc:
            self._send_error_json(exc)

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        service = self.server.service
        body = self._read_body()
        matrix = _matrix_from_request(body)
        method = body.get("method", service.default_method)
        options = body.get("options") or {}
        if not isinstance(options, dict):
            raise BadRequest("'options' must be a JSON object")
        timeout = body.get("timeout")
        job = service.scheduler.submit(
            matrix, method, options,
            timeout=float(timeout) if timeout is not None else None,
        )
        wait = body.get("wait", True)
        if wait:
            budget = float(body.get("wait_seconds", service.wait_seconds))
            job.wait(budget)
        record = job.to_json()
        if job.done:
            self._send_json(_STATE_STATUS.get(job.state, 200), record)
        else:
            self._send_json(202, record)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default listen backlog of 5 resets connections under
    # concurrent bursts; the serving layer is built for exactly those.
    request_queue_size = 128
    service: "ServiceServer"


class ServiceServer:
    """Owns the HTTP listener and its :class:`Scheduler`.

    ``start()`` serves from a background thread (tests drive it this
    way); :func:`serve` runs the blocking signal-aware loop the CLI
    uses.  ``close(drain=True)`` stops admissions, drains the scheduler
    and releases the socket.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_method: str = "compact",
        wait_seconds: float = DEFAULT_WAIT_SECONDS,
        verbose: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.default_method = default_method
        self.wait_seconds = wait_seconds
        self.verbose = verbose
        self.started_at = time.time()
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = self
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` -- the real port even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Serve from a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-svc-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, *, drain: bool = True) -> bool:
        """Stop the listener, drain (or cancel) jobs, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        clean = self.scheduler.shutdown(drain=drain)
        if self._thread is not None:
            self._thread.join(5.0)
        return clean

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8533,
    workers: int = 4,
    queue_size: int = 64,
    cache_capacity: int = 256,
    cache_dir: Optional[str] = None,
    default_method: str = "compact",
    default_timeout: Optional[float] = None,
    trace_out: Optional[str] = None,
    verbose: bool = False,
    ready_line: bool = True,
) -> int:
    """Blocking server loop with SIGTERM/SIGINT graceful drain.

    On the first signal the server stops accepting, drains queued and
    running jobs, writes the trace file (when ``--trace-out`` was
    given), and exits 0.  The "listening on ..." line goes to stdout so
    wrappers (tests, CI smoke) can scrape the bound port.
    """
    from repro.obs.recorder import Recorder
    from repro.service.cache import ResultCache

    recorder = Recorder() if trace_out else None
    scheduler = Scheduler(
        workers=workers,
        queue_size=queue_size,
        cache=ResultCache(capacity=cache_capacity, directory=cache_dir),
        recorder=recorder,
        default_timeout=default_timeout,
    )
    server = ServiceServer(
        scheduler,
        host=host,
        port=port,
        default_method=default_method,
        verbose=verbose,
    )
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        print(
            f"received {signal.Signals(signum).name}; draining...",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.start()
        if ready_line:
            print(f"repro-mut serve listening on {server.url}", flush=True)
        stop.wait()
        clean = server.close(drain=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if recorder is not None and trace_out:
        recorder.write_jsonl(trace_out)
        print(
            f"wrote {len(recorder.events)} trace event(s) to {trace_out}",
            file=sys.stderr,
        )
    print("drained; bye", file=sys.stderr, flush=True)
    return 0 if clean else 1
