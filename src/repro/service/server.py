"""Stdlib HTTP front end: the ``repro-mut serve`` JSON API.

Built on :class:`http.server.ThreadingHTTPServer` -- no third-party web
framework, per the repository's no-new-dependencies rule.  Endpoints::

    POST /solve               submit a matrix; waits for the result by default
    POST /ingest              upload FASTA; QC -> distance -> repair -> job
    GET  /jobs/<id>           poll a job submitted with {"wait": false}
    GET  /jobs/<id>/progress  latest live solver snapshot for the job
    GET  /healthz             liveness + version (503 once draining)
    GET  /stats               scheduler, queue, cache and metrics statistics
    GET  /metrics             Prometheus text exposition of the live registry

``POST /solve`` accepts a JSON body with either ``"phylip"`` (the PHYLIP
square text) or ``"matrix"`` (a list of rows, or ``{"values": ...,
"labels": ...}``), plus optional ``"method"``, ``"options"``,
``"timeout"`` (job deadline, seconds), ``"wait"`` (default true),
``"wait_seconds"`` (response-wait budget) and ``"verify"`` (default
false: run the result oracles on the payload and attach their findings
as ``"verification"`` in the job record -- see ``docs/verification.md``).
Errors come back as
``{"error": <code>, "detail": <message>}`` with the status of the typed
:class:`~repro.service.errors.ServiceError` they correspond to.

``POST /ingest`` accepts either a JSON body (``{"fasta": <text>, ...}``)
or ``multipart/form-data`` with a ``fasta`` part, runs the staged
ingestion pipeline (:mod:`repro.ingest`) inline -- parse, QC, distance,
metric repair -- and schedules the repaired matrix as an ordinary job,
returning the job record with the full ingestion ``manifest`` attached.
Optional fields: ``distance`` (p / jc / edit), ``mode``
(strict / lenient), ``qc`` (gate overrides), plus the same ``method`` /
``options`` / ``timeout`` / ``wait`` / ``wait_seconds`` / ``verify``
fields ``/solve`` takes.  Oversized uploads are rejected with ``413
payload_too_large``; uploads that fail the pipeline come back as ``422
unprocessable_input`` with the structured rejection records and the
failure manifest in the body (see ``docs/ingestion.md``).

Trace correlation: every request gets a ``trace_id`` -- the inbound
``X-Trace-Id`` header when it looks sane, a fresh id otherwise -- which
is returned in the ``X-Trace-Id`` response header and the job record,
and stamped on every span/counter the job causes (down to ``mp.worker``
spans in worker processes; see ``docs/observability.md``).
"""

from __future__ import annotations

import io
import json
import re
import signal
import sys
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.matrix.distance_matrix import DistanceMatrix, MatrixValidationError
from repro.matrix.io import read_phylip
from repro.service.errors import (
    BadRequest,
    JobNotFound,
    PayloadTooLarge,
    ServiceError,
    UnprocessableInput,
)
from repro.service.jobs import JobState
from repro.service.scheduler import Scheduler, select_backend

__all__ = ["ServiceServer", "serve"]

#: Inbound ``X-Trace-Id`` values must match this to be honoured;
#: anything else (empty, huge, control characters) gets a fresh id.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def new_trace_id() -> str:
    """A fresh 16-hex-char request correlation id."""
    return uuid.uuid4().hex[:16]


def resolve_trace_id(header_value: Optional[str]) -> str:
    """Honour a sane inbound ``X-Trace-Id``; otherwise mint one."""
    if header_value and _TRACE_ID_RE.match(header_value):
        return header_value
    return new_trace_id()

#: Default budget a synchronous ``POST /solve`` waits for its job.
DEFAULT_WAIT_SECONDS = 30.0
#: Cap on request body size: a 10k-species float matrix is ~1.6 GB of
#: JSON; nothing legitimate is near this.
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Cap on ``POST /ingest`` uploads; a full mitochondrial alignment of a
#: few hundred taxa is ~5 MB of FASTA, so 8 MB is generous.
MAX_INGEST_BYTES = 8 * 1024 * 1024

#: Job states whose HTTP representation is not 200.
_STATE_STATUS = {
    JobState.FAILED: 500,
    JobState.TIMEOUT: 504,
    JobState.CANCELLED: 409,
}


def _version() -> str:
    from repro import __version__

    return __version__


def _matrix_from_request(body: dict) -> DistanceMatrix:
    """Build the input matrix from a ``POST /solve`` body."""
    phylip = body.get("phylip")
    raw = body.get("matrix")
    if (phylip is None) == (raw is None):
        raise BadRequest("provide exactly one of 'phylip' or 'matrix'")
    try:
        if phylip is not None:
            if not isinstance(phylip, str):
                raise BadRequest("'phylip' must be a string")
            return read_phylip(io.StringIO(phylip))
        labels = None
        if isinstance(raw, dict):
            labels = raw.get("labels")
            raw = raw.get("values")
        return DistanceMatrix(raw, labels)
    except MatrixValidationError as exc:
        raise BadRequest(f"invalid matrix: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"malformed matrix payload: {exc}") from exc


def _parse_multipart(raw: bytes, content_type: str) -> dict:
    """Minimal ``multipart/form-data`` parser for ``POST /ingest``.

    Hand-rolled because the stdlib's ``cgi`` module is removed in 3.13
    and ``email`` round-trips are heavyweight for one upload.  Returns
    ``{field-name: text}``; file parts decode as UTF-8 with replacement
    (the FASTA parser rejects garbage downstream).
    """
    match = re.search(r'boundary="?([^";,\s]+)"?', content_type)
    if not match:
        raise BadRequest("multipart body without a boundary parameter")
    boundary = b"--" + match.group(1).encode("utf-8")
    fields: dict = {}
    for part in raw.split(boundary):
        part = part.strip(b"\r\n")
        if not part or part == b"--":
            continue
        for separator in (b"\r\n\r\n", b"\n\n"):
            if separator in part:
                header_blob, value = part.split(separator, 1)
                break
        else:
            continue
        name = None
        for line in header_blob.decode("utf-8", "replace").splitlines():
            if line.lower().startswith("content-disposition"):
                found = re.search(r'name="([^"]+)"', line)
                if found:
                    name = found.group(1)
        if name:
            fields[name] = value.decode("utf-8", "replace")
    if not fields:
        raise BadRequest("multipart body contained no form fields")
    return fields


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; the server instance hangs off ``self.server``."""

    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.service.verbose:
            sys.stderr.write(
                f"[{self.address_string()}] {format % args}\n"
            )

    def _send_json(
        self, status: int, payload: dict, trace_id: Optional[str] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain"
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: ServiceError) -> None:
        payload = {"error": exc.code, "detail": str(exc)}
        extra = getattr(exc, "extra", None)
        if extra:
            payload.update(extra)
        self._send_json(exc.http_status, payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("request body required")
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc.msg}") from exc
        if not isinstance(body, dict):
            raise BadRequest("body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.rstrip("/")
            if path == "/solve":
                self._solve()
            elif path == "/ingest":
                self._ingest()
            else:
                raise JobNotFound(self.path)
        except ServiceError as exc:
            self._send_error_json(exc)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        try:
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                from repro.version import engine_fingerprint

                closed = service.scheduler.closed
                self._send_json(
                    503 if closed else 200,
                    {
                        "status": "draining" if closed else "ok",
                        "version": _version(),
                        "engine": engine_fingerprint(),
                        "uptime_seconds": time.time() - service.started_at,
                    },
                )
            elif path == "/stats":
                stats = service.scheduler.stats()
                stats["version"] = _version()
                stats["uptime_seconds"] = time.time() - service.started_at
                self._send_json(200, stats)
            elif path == "/metrics":
                self._send_text(
                    200,
                    service.scheduler.metrics.render_prometheus(),
                    content_type=(
                        "text/plain; version=0.0.4; charset=utf-8"
                    ),
                )
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                want_progress = job_id.endswith("/progress")
                if want_progress:
                    job_id = job_id[: -len("/progress")]
                job = service.scheduler.job(job_id)
                if job is None:
                    raise JobNotFound(job_id)
                # A queued job whose deadline passed is timed out *now*,
                # not whenever a worker gets around to dequeuing it.
                job.expire_if_queued()
                if want_progress:
                    # Always 200: progress is a telemetry read, and the
                    # record carries the authoritative ``state`` either
                    # way (a failed job's watcher sees "failed", not an
                    # error page).
                    self._send_json(
                        200, job.progress_json(), trace_id=job.trace_id
                    )
                    return
                self._send_json(
                    _STATE_STATUS.get(job.state, 200), job.to_json(),
                    trace_id=job.trace_id,
                )
            else:
                raise JobNotFound(path)
        except ServiceError as exc:
            self._send_error_json(exc)

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        service = self.server.service
        trace_id = resolve_trace_id(self.headers.get("X-Trace-Id"))
        body = self._read_body()
        matrix = _matrix_from_request(body)
        method = body.get("method", service.default_method)
        options = body.get("options") or {}
        if not isinstance(options, dict):
            raise BadRequest("'options' must be a JSON object")
        timeout = body.get("timeout")
        verify = body.get("verify", False)
        if not isinstance(verify, bool):
            raise BadRequest("'verify' must be a boolean")
        job = service.scheduler.submit(
            matrix, method, options,
            timeout=float(timeout) if timeout is not None else None,
            trace_id=trace_id,
            verify=verify,
        )
        wait = body.get("wait", True)
        if wait:
            budget = float(body.get("wait_seconds", service.wait_seconds))
            job.wait(budget)
        record = job.to_json()
        # A deduplicated submission shares the first caller's job -- and
        # therefore the first caller's trace id; echo the job's.
        if job.done:
            self._send_json(
                _STATE_STATUS.get(job.state, 200), record,
                trace_id=job.trace_id,
            )
        else:
            self._send_json(202, record, trace_id=job.trace_id)

    # ------------------------------------------------------------------
    def _ingest(self) -> None:
        """``POST /ingest``: FASTA upload -> pipeline -> scheduled job.

        The pipeline's parse/QC/distance/repair stages run inline on the
        request thread (they are milliseconds at upload sizes) inside
        the request's trace context, so ``ingest.stage`` spans carry the
        caller's ``X-Trace-Id``; only the solve itself goes through the
        scheduler's queue and workers.
        """
        from repro.ingest import QCConfig, run_pipeline
        from repro.obs.recorder import trace_context

        service = self.server.service
        trace_id = resolve_trace_id(self.headers.get("X-Trace-Id"))
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("request body required")
        if length > MAX_INGEST_BYTES:
            # Drain a bounded amount of the in-flight body first so the
            # still-sending client can read the 413 instead of dying on
            # a broken pipe; truly abusive lengths just get the socket
            # closed on them.
            if length <= 4 * MAX_INGEST_BYTES:
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            raise PayloadTooLarge(MAX_INGEST_BYTES, length)
        raw = self.rfile.read(length)
        content_type = self.headers.get("Content-Type") or ""
        if content_type.startswith("multipart/form-data"):
            fields = _parse_multipart(raw, content_type)
        else:
            try:
                fields = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise BadRequest(f"body is not valid JSON: {exc}") from exc
            if not isinstance(fields, dict):
                raise BadRequest("body must be a JSON object")

        fasta = fields.get("fasta")
        if not isinstance(fasta, str) or not fasta.strip():
            raise BadRequest(
                "provide the FASTA text in the 'fasta' field "
                "(JSON string or multipart part)"
            )
        mode = str(fields.get("mode", "strict"))
        if mode not in ("strict", "lenient"):
            raise BadRequest("'mode' must be 'strict' or 'lenient'")
        method = str(fields.get("method", service.default_method))

        # Multipart form fields arrive as strings; coerce the typed ones.
        def as_bool(value, name: str) -> bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                return value.lower() in ("1", "true", "yes")
            raise BadRequest(f"'{name}' must be a boolean")

        def as_object(value, name: str) -> dict:
            if value in (None, ""):
                return {}
            if isinstance(value, str):
                try:
                    value = json.loads(value)
                except json.JSONDecodeError as exc:
                    raise BadRequest(
                        f"'{name}' is not valid JSON: {exc.msg}"
                    ) from exc
            if not isinstance(value, dict):
                raise BadRequest(f"'{name}' must be a JSON object")
            return value

        verify = as_bool(fields.get("verify", False), "verify")
        options = as_object(fields.get("options"), "options")
        qc_fields = as_object(fields.get("qc"), "qc")
        try:
            max_length = qc_fields.get("max_length")
            qc = QCConfig(
                min_length=int(qc_fields.get("min_length", 1)),
                max_length=None if max_length is None else int(max_length),
                max_ambiguity=float(qc_fields.get("max_ambiguity", 0.1)),
            )
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid 'qc' config: {exc}") from exc
        timeout = fields.get("timeout")
        try:
            timeout = None if timeout in (None, "") else float(timeout)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"'timeout' must be a number: {exc}") from exc

        holder: dict = {}

        def submit(matrix) -> dict:
            job = service.scheduler.submit(
                matrix, method, options,
                timeout=timeout,
                trace_id=trace_id,
                verify=verify,
            )
            holder["job"] = job
            return {
                "scheduled": True,
                "job_id": job.id,
                "method": method,
                "n_species": matrix.n,
            }

        try:
            with trace_context(trace_id):
                outcome = run_pipeline(
                    fasta,
                    text=True,
                    distance=str(fields.get("distance", "p")),
                    tree_method=method,
                    mode=mode,
                    qc=qc,
                    recorder=service.scheduler.recorder,
                    metrics=service.scheduler.metrics,
                    submit=submit,
                )
        except ValueError as exc:  # e.g. unknown distance method
            raise BadRequest(str(exc)) from exc
        manifest = outcome.manifest
        if manifest.status == "failed" or "job" not in holder:
            first = manifest.rejections[0] if manifest.rejections else None
            raise UnprocessableInput(
                first.detail if first else "ingestion pipeline failed",
                extra={
                    "rejections": [
                        r.to_json() for r in manifest.rejections
                    ],
                    "manifest": manifest.to_json(),
                },
            )
        job = holder["job"]
        job.manifest = manifest.to_json()
        if as_bool(fields.get("wait", True), "wait"):
            try:
                budget = float(
                    fields.get("wait_seconds", service.wait_seconds)
                )
            except (TypeError, ValueError) as exc:
                raise BadRequest(
                    f"'wait_seconds' must be a number: {exc}"
                ) from exc
            job.wait(budget)
        record = job.to_json()
        if job.done:
            self._send_json(
                _STATE_STATUS.get(job.state, 200), record,
                trace_id=job.trace_id,
            )
        else:
            self._send_json(202, record, trace_id=job.trace_id)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default listen backlog of 5 resets connections under
    # concurrent bursts; the serving layer is built for exactly those.
    request_queue_size = 128
    service: "ServiceServer"


class ServiceServer:
    """Owns the HTTP listener and its :class:`Scheduler`.

    ``start()`` serves from a background thread (tests drive it this
    way); :func:`serve` runs the blocking signal-aware loop the CLI
    uses.  ``close(drain=True)`` stops admissions, drains the scheduler
    and releases the socket.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_method: str = "compact",
        wait_seconds: float = DEFAULT_WAIT_SECONDS,
        verbose: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.default_method = default_method
        self.wait_seconds = wait_seconds
        self.verbose = verbose
        self.started_at = time.time()
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = self
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)`` -- the real port even when 0 was asked."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Serve from a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-svc-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, *, drain: bool = True) -> bool:
        """Stop the listener, drain (or cancel) jobs, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        clean = self.scheduler.shutdown(drain=drain)
        if self._thread is not None:
            self._thread.join(5.0)
        return clean

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8533,
    workers: int = 4,
    queue_size: int = 64,
    cache_capacity: int = 256,
    cache_dir: Optional[str] = None,
    default_method: str = "compact",
    default_timeout: Optional[float] = None,
    backend: Optional[str] = None,
    start_method: Optional[str] = None,
    trace_out: Optional[str] = None,
    trace_max_mb: Optional[float] = None,
    trace_ring: int = 4096,
    verbose: bool = False,
    ready_line: bool = True,
) -> int:
    """Blocking server loop with SIGTERM/SIGINT graceful drain.

    ``backend`` selects the execution backend (``"thread"`` or
    ``"process"``); when omitted, :func:`select_backend` picks by the
    default method -- worker processes for the GIL-bound exact solvers,
    threads otherwise.  ``start_method`` forces a multiprocessing start
    method for the process backend.

    Metrics are always on: the scheduler records into the process-wide
    registry, served at ``GET /metrics`` (Prometheus text) and inside
    ``GET /stats`` (JSON) whether or not tracing is enabled.

    Tracing (``--trace-out``) streams: every closed span/counter is
    appended to the JSONL file as it happens (so a crash loses at most
    one torn final line), memory holds only the most recent
    ``trace_ring`` events, and ``--trace-max-mb`` rotates the file in
    place (previous generation kept as ``<name>.1``) -- the server can
    trace indefinitely in bounded memory and bounded disk.

    On the first signal the server stops accepting, drains queued and
    running jobs, closes the trace sink, and exits 0.  The "listening
    on ..." line goes to stdout so wrappers (tests, CI smoke) can scrape
    the bound port.
    """
    from repro.obs.streaming import StreamingRecorder
    from repro.service.cache import ResultCache

    recorder = None
    if trace_out:
        recorder = StreamingRecorder(
            trace_out,
            max_events=trace_ring,
            max_bytes=(
                int(trace_max_mb * 1024 * 1024) if trace_max_mb else None
            ),
        )
    if backend is None:
        backend = select_backend(default_method)
    scheduler = Scheduler(
        workers=workers,
        queue_size=queue_size,
        cache=ResultCache(capacity=cache_capacity, directory=cache_dir),
        recorder=recorder,
        default_timeout=default_timeout,
        backend=backend,
        start_method=start_method,
    )
    server = ServiceServer(
        scheduler,
        host=host,
        port=port,
        default_method=default_method,
        verbose=verbose,
    )
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        print(
            f"received {signal.Signals(signum).name}; draining...",
            file=sys.stderr,
            flush=True,
        )
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.start()
        if ready_line:
            print(f"repro-mut serve listening on {server.url}", flush=True)
        print(
            f"backend={backend} workers={workers} "
            f"default_method={default_method}",
            file=sys.stderr,
            flush=True,
        )
        stop.wait()
        clean = server.close(drain=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if recorder is not None:
        recorder.close()
        rotated = (
            f" ({recorder.rotations} rotation(s))" if recorder.rotations
            else ""
        )
        print(
            f"streamed {recorder.events_streamed} trace event(s) to "
            f"{trace_out}{rotated}",
            file=sys.stderr,
        )
    print("drained; bye", file=sys.stderr, flush=True)
    return 0 if clean else 1
