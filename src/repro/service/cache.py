"""Content-addressed result cache for tree-construction jobs.

The cache key is *what was asked*, not *who asked*: the sha256 digest of
the input matrix (:meth:`DistanceMatrix.digest` -- shape, labels and raw
values) combined with the canonical JSON of the solver parameters
(method name plus sorted engine options).  Two requests with the same
matrix and parameters therefore address the same entry, across threads,
processes and restarts.

Storage is two-level:

* an in-memory LRU front (``capacity`` entries, O(1) lookup), and
* an optional on-disk JSON store (one ``<key>.json`` file per entry,
  written atomically via rename), so a restarted server warms up from
  previous runs.

Values are JSON-serializable *payload* dicts (``newick``, ``cost``,
``method``, ...), not live tree objects -- exactly what the serving
layer returns to clients, which is what makes warm hits byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.matrix.distance_matrix import DistanceMatrix

__all__ = ["CACHE_KEY_VERSION", "canonical_params", "cache_key", "ResultCache"]

#: In-progress atomic-write files look like ``<key>.tmp.<pid>.<tid>``.
_TMP_NAME = re.compile(r"\.tmp\.(\d+)\.\d+$")

#: A tmp file older than this is stale even if a process with the
#: embedded pid is running (pids get recycled); younger ones are only
#: swept when that pid is gone.  Real writes last milliseconds.
_TMP_GRACE_SECONDS = 300.0

#: Bumped whenever the key derivation or payload layout changes, so a
#: stale on-disk store from an older scheme can never serve wrong data.
#: v2: payload Newick precision went 6 -> 12 decimals (the ``verify``
#: cost oracle checks the reported cost against the reconstruction).
CACHE_KEY_VERSION = 2


def canonical_params(method: str, options: Optional[Mapping] = None) -> str:
    """Deterministic JSON for the solver-parameter half of the cache key.

    Keys are sorted so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}``
    canonicalise identically; non-JSON values (e.g. a ``ClusterConfig``)
    fall back to ``repr``, which is stable for our frozen config types.
    """
    return json.dumps(
        {"method": method, "options": dict(options or {})},
        sort_keys=True,
        default=repr,
    )


def cache_key(
    matrix: DistanceMatrix,
    method: str = "compact",
    options: Optional[Mapping] = None,
) -> str:
    """The content address of one solve: matrix digest + canonical params."""
    h = hashlib.sha256()
    h.update(f"repro.cache.v{CACHE_KEY_VERSION}\x00".encode("ascii"))
    h.update(matrix.digest().encode("ascii"))
    h.update(b"\x00")
    h.update(canonical_params(method, options).encode("utf-8"))
    return h.hexdigest()


class ResultCache:
    """Thread-safe LRU + optional disk store of solve payloads.

    Parameters
    ----------
    capacity:
        Maximum in-memory entries; least-recently-*used* entries are
        evicted first.  Disk entries are never evicted by this class.
    directory:
        When given, every ``put`` also writes ``<key>.json`` here and
        ``get`` falls back to disk on a memory miss (promoting the entry
        back into memory).  The directory is created on first use.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_write_errors = 0
        self._tmp_swept = 0
        if self.directory is not None:
            self._tmp_swept = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Remove abandoned atomic-write droppings from the directory.

        A writer that dies between ``tmp.write_text`` and ``os.replace``
        leaks a ``<key>.tmp.<pid>.<tid>`` file; with N stateless
        replicas sharing one cache directory these accumulate forever
        unless someone sweeps.  A tmp file is stale when its writing
        process is gone, or when it is older than the grace period
        (writes last milliseconds; pids get recycled).  Racing a *live*
        writer is safe either way: its ``os.replace`` simply fails and
        the entry is rewritten on the next miss.
        """
        if not self.directory.is_dir():
            return 0
        swept = 0
        now = time.time()
        for tmp in self.directory.glob("*.tmp.*"):
            match = _TMP_NAME.search(tmp.name)
            if match is None:
                continue
            try:
                age = now - tmp.stat().st_mtime
                if age < _TMP_GRACE_SECONDS and _pid_alive(int(match.group(1))):
                    continue
                tmp.unlink()
                swept += 1
            except OSError:
                continue  # vanished concurrently, or not ours to remove
        return swept

    # ------------------------------------------------------------------
    key = staticmethod(cache_key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.get(key, count=False) is not None

    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def get(self, key: str, *, count: bool = True) -> Optional[dict]:
        """The payload stored under ``key``, or ``None``.

        ``count=False`` peeks without touching the hit/miss statistics
        (the LRU recency is still updated).
        """
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                if count:
                    self._hits += 1
                return payload
        payload = self._disk_get(key)
        if payload is not None:
            self._memory_put(key, payload, count_hit=count)
            return payload
        if count:
            with self._lock:
                self._misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        """Store ``payload`` (a JSON-serializable dict) under ``key``."""
        self._memory_put(key, payload, count_hit=False)
        if self.directory is not None:
            self._disk_put(key, payload)

    def clear(self) -> None:
        """Drop every in-memory entry (disk entries are left alone)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, object]:
        """Snapshot of the counters the ``/stats`` endpoint exposes."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "directory": str(self.directory) if self.directory else None,
                "disk_write_errors": self._disk_write_errors,
                "tmp_swept": self._tmp_swept,
            }

    # ------------------------------------------------------------------
    def _memory_put(self, key: str, payload: dict, *, count_hit: bool) -> None:
        with self._lock:
            if count_hit:
                self._hits += 1
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def _disk_get(self, key: str) -> Optional[dict]:
        if self.directory is None:
            return None
        path = self._path_for(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # Missing file is a plain miss; a torn/corrupt file (e.g. a
            # crash mid-write outside our atomic path) is treated as one
            # too rather than poisoning every future request.
            return None
        if record.get("version") != CACHE_KEY_VERSION:
            return None
        payload = record.get("payload")
        return payload if isinstance(payload, dict) else None

    def _disk_put(self, key: str, payload: dict) -> None:
        assert self.directory is not None
        path = self._path_for(key)
        record = {"version": CACHE_KEY_VERSION, "key": key, "payload": payload}
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError:
            # Disk persistence is best-effort: a full disk or a swept
            # tmp file must not fail the job (the entry is already in
            # memory), only cost a future warm start.
            with self._lock:
                self._disk_write_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass


def _pid_alive(pid: int) -> bool:
    """Whether a process with ``pid`` currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True
