"""A small stdlib client for the ``repro-mut serve`` JSON API.

Used by the tests, the throughput benchmark and the CI smoke step; kept
dependency-free (``urllib``) so it works anywhere the package does::

    client = ServiceClient("http://127.0.0.1:8533")
    record = client.solve(matrix)           # blocks for the result
    print(record["result"]["newick"])

Server-side typed errors are raised back as their client-side classes:
a saturated queue raises :class:`~repro.service.errors.QueueFull`, an
unknown job :class:`~repro.service.errors.JobNotFound`, and so on.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

from repro.matrix.distance_matrix import DistanceMatrix
from repro.service.errors import (
    BadRequest,
    JobNotFound,
    PayloadTooLarge,
    QueueFull,
    SchedulerClosed,
    ServiceError,
    UnprocessableInput,
)

__all__ = ["ServiceClient"]

def _raise_for_payload(status: int, payload: dict) -> None:
    code = payload.get("error")
    detail = str(payload.get("detail", f"HTTP {status}"))
    if code == QueueFull.code:
        raise QueueFull()
    if code == SchedulerClosed.code:
        raise SchedulerClosed()
    if code == JobNotFound.code:
        raise JobNotFound(detail)
    if code == BadRequest.code:
        raise BadRequest(detail)
    if code == PayloadTooLarge.code:
        error = PayloadTooLarge(0)
        error.args = (detail,)
        raise error
    if code == UnprocessableInput.code:
        extra = {
            k: v for k, v in payload.items()
            if k not in ("error", "detail")
        }
        raise UnprocessableInput(detail, extra=extra)
    error = ServiceError(f"{code or 'error'}: {detail}")
    error.http_status = status
    raise error


class ServiceClient:
    """Thin JSON-over-HTTP wrapper around one server's endpoints."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (json.JSONDecodeError, OSError):
                payload = {}
            # Job records (failed/timed-out jobs) and the draining
            # healthz body come back with non-200 statuses; those are
            # results, not errors.
            if isinstance(payload, dict) and (
                "state" in payload or "status" in payload
            ):
                return payload
            _raise_for_payload(exc.code, payload if isinstance(payload, dict) else {})
            raise  # pragma: no cover - _raise_for_payload always raises

    # ------------------------------------------------------------------
    def solve(
        self,
        matrix: Optional[DistanceMatrix] = None,
        *,
        phylip: Optional[str] = None,
        method: Optional[str] = None,
        options: Optional[dict] = None,
        wait: bool = True,
        wait_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        verify: bool = False,
    ) -> dict:
        """``POST /solve``; returns the job record (see ``Job.to_json``).

        Pass either a :class:`DistanceMatrix` or ``phylip=`` text.  With
        ``wait=False`` the record comes back immediately in ``pending``
        state; poll it with :meth:`job`.  ``trace_id`` is sent as the
        ``X-Trace-Id`` header; the server honours it (when sane) and
        stamps it on every event the request causes.  ``verify=True``
        asks the server to run the result oracles on the payload; their
        findings come back under ``record["verification"]``.
        """
        if (matrix is None) == (phylip is None):
            raise ValueError("provide exactly one of matrix or phylip")
        body: dict = {"wait": wait}
        if matrix is not None:
            body["matrix"] = {
                "values": [list(map(float, row)) for row in matrix.values],
                "labels": matrix.labels,
            }
        else:
            body["phylip"] = phylip
        if method is not None:
            body["method"] = method
        if options:
            body["options"] = options
        if wait_seconds is not None:
            body["wait_seconds"] = wait_seconds
        if timeout is not None:
            body["timeout"] = timeout
        if verify:
            body["verify"] = True
        headers = {"X-Trace-Id": trace_id} if trace_id else None
        return self._request("POST", "/solve", body, headers)

    def ingest(
        self,
        fasta: str,
        *,
        distance: str = "p",
        mode: str = "strict",
        method: Optional[str] = None,
        qc: Optional[dict] = None,
        options: Optional[dict] = None,
        wait: bool = True,
        wait_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
        verify: bool = False,
        multipart: bool = False,
    ) -> dict:
        """``POST /ingest``; returns the job record with its manifest.

        ``fasta`` is the raw FASTA text.  A QC-rejected upload raises
        :class:`~repro.service.errors.UnprocessableInput` whose
        ``extra`` dict carries the structured rejection records and the
        failure manifest; an oversized one raises
        :class:`~repro.service.errors.PayloadTooLarge`.  With
        ``multipart=True`` the upload is sent as
        ``multipart/form-data`` (exercising the file-upload path)
        instead of JSON.
        """
        body: dict = {"fasta": fasta, "distance": distance, "mode": mode,
                      "wait": wait}
        if method is not None:
            body["method"] = method
        if qc:
            body["qc"] = qc
        if options:
            body["options"] = options
        if wait_seconds is not None:
            body["wait_seconds"] = wait_seconds
        if timeout is not None:
            body["timeout"] = timeout
        if verify:
            body["verify"] = True
        headers = {"X-Trace-Id": trace_id} if trace_id else {}
        if not multipart:
            return self._request("POST", "/ingest", body, headers)

        boundary = "reproingest"
        parts = []
        for name, value in body.items():
            if isinstance(value, dict):
                value = json.dumps(value)
            elif isinstance(value, bool):
                value = "true" if value else "false"
            filename = '; filename="upload.fasta"' if name == "fasta" else ""
            parts.append(
                f"--{boundary}\r\n"
                f'Content-Disposition: form-data; name="{name}"{filename}'
                f"\r\n\r\n{value}\r\n"
            )
        parts.append(f"--{boundary}--\r\n")
        data = "".join(parts).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + "/ingest",
            data=data,
            method="POST",
            headers={
                "Content-Type": (
                    f"multipart/form-data; boundary={boundary}"
                ),
                **headers,
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read())
            except (json.JSONDecodeError, OSError):
                payload = {}
            if isinstance(payload, dict) and "state" in payload:
                return payload
            _raise_for_payload(
                exc.code, payload if isinstance(payload, dict) else {}
            )
            raise  # pragma: no cover - _raise_for_payload always raises

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def job_progress(self, job_id: str) -> dict:
        """``GET /jobs/<id>/progress`` -- the latest live solver snapshot.

        Returns ``{"id", "state", "trace_id", "progress"}`` where
        ``progress`` is ``None`` until the solver's first heartbeat.
        Cheap to poll at a high rate (no result payload in the body).
        """
        return self._request("GET", f"/jobs/{job_id}/progress")

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics`` -- the Prometheus text exposition, verbatim."""
        request = urllib.request.Request(
            self.base_url + "/metrics", method="GET"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            return resp.read().decode("utf-8")
