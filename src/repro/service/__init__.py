"""The serving layer: queue, cache and HTTP front end.

Turns the one-shot library/CLI pipeline into a long-lived service:

* :class:`ResultCache` -- content-addressed (matrix digest + canonical
  solver parameters) result store with an in-memory LRU front and an
  optional on-disk JSON mirror;
* :class:`Scheduler` -- bounded-queue worker pool with admission
  control (:class:`QueueFull`), in-flight deduplication, per-job
  timeout/cancellation and graceful drain;
* :class:`ServiceServer` / :func:`serve` -- the stdlib ``http.server``
  JSON API behind ``repro-mut serve``;
* :class:`ServiceClient` -- the matching stdlib client.

Architecture and API reference: ``docs/service.md``.
"""

from repro.service.cache import (
    CACHE_KEY_VERSION,
    ResultCache,
    cache_key,
    canonical_params,
)
from repro.service.client import ServiceClient
from repro.service.errors import (
    BadRequest,
    JobNotFound,
    JobTimeout,
    QueueFull,
    SchedulerClosed,
    ServiceError,
)
from repro.service.jobs import Job, JobState
from repro.service.scheduler import Scheduler, solve_payload
from repro.service.server import ServiceServer, serve

__all__ = [
    "CACHE_KEY_VERSION",
    "ResultCache",
    "cache_key",
    "canonical_params",
    "ServiceClient",
    "ServiceError",
    "QueueFull",
    "SchedulerClosed",
    "JobNotFound",
    "JobTimeout",
    "BadRequest",
    "Job",
    "JobState",
    "Scheduler",
    "solve_payload",
    "ServiceServer",
    "serve",
]
